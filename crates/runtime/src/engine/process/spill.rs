//! The worker-side spill-capable shuffle buffer.
//!
//! A map attempt's emissions accumulate in memory, pre-partitioned per
//! reducer, until their encoded size exceeds the configured budget; the
//! buffer is then **spilled** as one run file and cleared. At drain
//! time the runs are merged back per partition and streamed to the
//! sink, so an attempt whose output far exceeds RAM still completes
//! with the in-memory backends' exact results:
//!
//! * **raw path** (no combiner): runs preserve emission order, and the
//!   drain concatenates runs chronologically (in-memory tail last) —
//!   the final pair order is identical to a never-spilled run.
//! * **combining path**: each run is one sorted snapshot of the
//!   per-partition fold table (hash-folded, sorted by key at spill
//!   time); the drain performs a streaming k-way merge by key, folding
//!   equal keys in run order.
//!   Because combiners are associative reductions (see
//!   [`crate::combine`]), the merged value per key equals the
//!   never-spilled fold, and keys stream out in the same sorted order.
//!
//! Run files reuse the spool container format
//! ([`approxhadoop_dfs::FileStoreWriter`]) with one block per reduce
//! partition, and are read back through `mmap`, so a drain never loads
//! a whole run into memory.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use approxhadoop_dfs::{BlockId, FileStore, FileStoreWriter};
use approxhadoop_ipc::{Decoder, Wire};
use approxhadoop_obs::Counter;

use crate::combine::{CombineTable, Combiner};
use crate::types::{Key, Value};

/// What one attempt spilled, reported back to the parent for the
/// `approx_process_spill_*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SpillReport {
    /// Number of run files written.
    pub(crate) runs: u64,
    /// Total bytes of run payloads written.
    pub(crate) bytes: u64,
}

/// A lazily-decoded cursor over one run's partition segment.
struct Cursor<'a, K, V> {
    dec: Decoder<'a>,
    head: Option<(K, V)>,
}

impl<'a, K: Wire, V: Wire> Cursor<'a, K, V> {
    fn new(buf: &'a [u8]) -> Result<Self, String> {
        let mut c = Cursor {
            dec: Decoder::new(buf),
            head: None,
        };
        c.advance()?;
        Ok(c)
    }

    fn advance(&mut self) -> Result<(), String> {
        self.head = if self.dec.remaining() == 0 {
            None
        } else {
            let k = K::decode(&mut self.dec).map_err(|e| format!("spill run corrupt: {e}"))?;
            let v = V::decode(&mut self.dec).map_err(|e| format!("spill run corrupt: {e}"))?;
            Some((k, v))
        };
        Ok(())
    }

    fn take(&mut self) -> Result<Option<(K, V)>, String> {
        let head = self.head.take();
        if head.is_some() {
            self.advance()?;
        }
        Ok(head)
    }
}

/// Per-attempt shuffle buffer with a byte budget and disk spilling.
pub(crate) struct SpillShuffle<'c, K: Key + Wire, V: Value + Wire> {
    combiner: Option<&'c dyn Combiner<K, V>>,
    /// Strict in-memory budget: buffering `> budget` encoded bytes
    /// triggers a spill (a single oversized pair spills immediately).
    budget: usize,
    dir: PathBuf,
    dir_created: bool,
    mem_bytes: usize,
    raw: Vec<Vec<(K, V)>>,
    combined: Vec<CombineTable<K, V>>,
    runs: Vec<PathBuf>,
    report: SpillReport,
    /// Optional live `(runs, bytes)` counters bumped at actual spill
    /// time, so a scrape mid-attempt already reflects the disk traffic
    /// (the [`SpillReport`] only surfaces at drain).
    counters: Option<(Arc<Counter>, Arc<Counter>)>,
    scratch: Vec<u8>,
    cleaned: bool,
}

impl<'c, K: Key + Wire, V: Value + Wire> SpillShuffle<'c, K, V> {
    /// Creates a buffer for `partitions` reducers spilling into `dir`
    /// (created lazily on first spill).
    pub(crate) fn new(
        partitions: usize,
        combiner: Option<&'c dyn Combiner<K, V>>,
        budget: usize,
        dir: PathBuf,
    ) -> Self {
        SpillShuffle {
            combiner,
            budget,
            dir,
            dir_created: false,
            mem_bytes: 0,
            raw: (0..partitions).map(|_| Vec::new()).collect(),
            combined: (0..partitions).map(|_| CombineTable::new()).collect(),
            runs: Vec::new(),
            report: SpillReport::default(),
            counters: None,
            scratch: Vec::new(),
            cleaned: false,
        }
    }

    /// Attaches live `(runs, bytes)` counters incremented inside
    /// [`spill`](Self::spill) whenever a run file is actually written.
    pub(crate) fn with_counters(mut self, runs: Arc<Counter>, bytes: Arc<Counter>) -> Self {
        self.counters = Some((runs, bytes));
        self
    }

    /// Routes one emission into partition `p` (whose key hashes to
    /// `hash` under [`fx_hash`](crate::types::fx_hash)), spilling if the
    /// budget is exceeded. The cost charged is the pair's encoded size —
    /// on the combining path this is conservative (folding into an
    /// existing key grows memory far less), which only makes spills
    /// earlier, never later.
    pub(crate) fn emit(&mut self, p: usize, hash: u64, key: K, value: V) -> Result<(), String> {
        self.scratch.clear();
        key.encode(&mut self.scratch);
        value.encode(&mut self.scratch);
        self.mem_bytes += self.scratch.len();
        crate::combine::route_emission(
            self.combiner,
            &mut self.raw,
            &mut self.combined,
            p,
            hash,
            key,
            value,
        );
        if self.mem_bytes > self.budget {
            self.spill()?;
        }
        Ok(())
    }

    /// Writes everything buffered as one run file and clears the buffer.
    fn spill(&mut self) -> Result<(), String> {
        if self.mem_bytes == 0 {
            return Ok(());
        }
        if !self.dir_created {
            fs::create_dir_all(&self.dir).map_err(|e| format!("create spill dir: {e}"))?;
            self.dir_created = true;
        }
        let path = self.dir.join(format!("run-{:04}.spill", self.runs.len()));
        let mut w = FileStoreWriter::create(&path).map_err(|e| format!("spill: {e}"))?;
        let bytes_before = self.report.bytes;
        let mut payload = Vec::new();
        for p in 0..self.raw.len() {
            payload.clear();
            let mut count = 0u64;
            for (k, v) in self.raw[p].drain(..) {
                k.encode(&mut payload);
                v.encode(&mut payload);
                count += 1;
            }
            // The sort here keeps the run key-sorted — the invariant the
            // drain's k-way merge depends on.
            for (k, v) in self.combined[p].drain_sorted() {
                k.encode(&mut payload);
                v.encode(&mut payload);
                count += 1;
            }
            self.report.bytes += payload.len() as u64;
            w.append(BlockId(p as u64), count, &payload)
                .map_err(|e| format!("spill: {e}"))?;
        }
        w.finish().map_err(|e| format!("spill: {e}"))?;
        self.runs.push(path);
        self.report.runs += 1;
        if let Some((runs, bytes)) = &self.counters {
            runs.inc();
            bytes.add(self.report.bytes - bytes_before);
        }
        self.mem_bytes = 0;
        Ok(())
    }

    /// Streams the final merged output, partition by partition, into
    /// `sink`, then removes the run files. Pair order and values are
    /// identical to a never-spilled buffer (see module docs).
    pub(crate) fn drain(
        &mut self,
        mut sink: impl FnMut(usize, K, V) -> Result<(), String>,
    ) -> Result<SpillReport, String> {
        let stores: Vec<FileStore> = self
            .runs
            .iter()
            .map(|p| FileStore::open(p).map_err(|e| format!("spill: {e}")))
            .collect::<Result<_, String>>()?;
        let partitions = self.raw.len();
        let mut mem = Vec::new();
        for p in 0..partitions {
            // The in-memory remainder acts as the chronologically last
            // run, encoded through the same cursor machinery.
            mem.clear();
            for (k, v) in self.raw[p].drain(..) {
                k.encode(&mut mem);
                v.encode(&mut mem);
            }
            for (k, v) in self.combined[p].drain_sorted() {
                k.encode(&mut mem);
                v.encode(&mut mem);
            }
            let mut cursors: Vec<Cursor<'_, K, V>> = Vec::with_capacity(stores.len() + 1);
            for s in &stores {
                cursors.push(Cursor::new(s.slice(BlockId(p as u64)).unwrap_or(&[]))?);
            }
            cursors.push(Cursor::new(&mem)?);
            match self.combiner {
                None => {
                    for c in &mut cursors {
                        while let Some((k, v)) = c.take()? {
                            sink(p, k, v)?;
                        }
                    }
                }
                Some(combiner) => loop {
                    let min = cursors
                        .iter()
                        .filter_map(|c| c.head.as_ref().map(|(k, _)| k))
                        .min()
                        .cloned();
                    let Some(key) = min else { break };
                    let mut acc: Option<V> = None;
                    for c in &mut cursors {
                        while c.head.as_ref().is_some_and(|(k, _)| *k == key) {
                            let (_, v) = c.take()?.expect("head checked");
                            match &mut acc {
                                None => acc = Some(v),
                                Some(a) => combiner.combine(&key, a, v),
                            }
                        }
                    }
                    sink(p, key, acc.expect("at least one source held the key"))?;
                },
            }
        }
        drop(stores);
        self.cleanup();
        Ok(self.report)
    }

    fn cleanup(&mut self) {
        if self.cleaned {
            return;
        }
        for p in &self.runs {
            let _ = fs::remove_file(p);
        }
        if self.dir_created {
            let _ = fs::remove_dir(&self.dir);
        }
        self.cleaned = true;
    }
}

impl<K: Key + Wire, V: Value + Wire> Drop for SpillShuffle<'_, K, V> {
    fn drop(&mut self) {
        // Killed / panicked attempts never drain; don't leak run files.
        self.cleanup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::SumCombiner;

    impl<K: Key + Wire, V: Value + Wire> SpillShuffle<'_, K, V> {
        /// Test shorthand for [`emit`](Self::emit): hashes the key
        /// inline, as the map hot path does once per emission.
        fn emit_kv(&mut self, p: usize, key: K, value: V) -> Result<(), String> {
            let hash = crate::types::fx_hash(&key);
            self.emit(p, hash, key, value)
        }
    }

    fn test_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "approxhadoop-spill-test-{}-{name}",
            std::process::id()
        ))
    }

    fn collect(s: &mut SpillShuffle<'_, u32, u64>) -> Vec<(usize, u32, u64)> {
        let mut out = Vec::new();
        s.drain(|p, k, v| {
            out.push((p, k, v));
            Ok(())
        })
        .unwrap();
        out
    }

    /// Encoded size of one `(u32, u64)` pair.
    const PAIR: usize = 12;

    #[test]
    fn single_pair_larger_than_budget_spills_immediately() {
        let dir = test_dir("oversized");
        let mut s: SpillShuffle<'_, u32, u64> = SpillShuffle::new(2, None, PAIR - 1, dir.clone());
        s.emit_kv(0, 1, 100).unwrap();
        assert_eq!(s.report.runs, 1, "one pair over budget must spill at once");
        s.emit_kv(1, 2, 200).unwrap();
        let report = {
            let mut out = Vec::new();
            s.drain(|p, k, v| {
                out.push((p, k, v));
                Ok(())
            })
            .unwrap()
        };
        assert_eq!(report.runs, 2);
        assert!(!dir.exists(), "spill dir removed after drain");
    }

    #[test]
    fn budget_boundary_is_strict() {
        // Exactly filling the budget does NOT spill; one more byte does.
        let dir = test_dir("boundary");
        let mut s: SpillShuffle<'_, u32, u64> = SpillShuffle::new(2, None, 3 * PAIR, dir);
        s.emit_kv(0, 1, 1).unwrap();
        s.emit_kv(1, 2, 2).unwrap();
        s.emit_kv(0, 3, 3).unwrap();
        assert_eq!(s.report.runs, 0, "exactly at budget must not spill");
        s.emit_kv(1, 4, 4).unwrap();
        assert_eq!(s.report.runs, 1, "first byte past budget spills");
        assert_eq!(
            collect(&mut s),
            vec![(0, 1, 1), (0, 3, 3), (1, 2, 2), (1, 4, 4)]
        );
    }

    #[test]
    fn raw_drain_preserves_emission_order_across_spills() {
        let dir = test_dir("raworder");
        let mut spilled: SpillShuffle<'_, u32, u64> = SpillShuffle::new(2, None, 2 * PAIR, dir);
        let mut plain: SpillShuffle<'_, u32, u64> =
            SpillShuffle::new(2, None, usize::MAX, test_dir("rawplain"));
        for i in 0..40u64 {
            // Repeating keys, deliberately unsorted.
            let k = (40 - i) as u32 % 7;
            spilled.emit_kv((i % 2) as usize, k, i).unwrap();
            plain.emit_kv((i % 2) as usize, k, i).unwrap();
        }
        assert!(spilled.report.runs > 1);
        assert_eq!(collect(&mut spilled), collect(&mut plain));
    }

    #[test]
    fn combined_drain_matches_unspilled_fold() {
        let dir = test_dir("combined");
        let c = SumCombiner;
        let mut spilled: SpillShuffle<'_, u32, u64> = SpillShuffle::new(2, Some(&c), PAIR, dir);
        let mut plain: SpillShuffle<'_, u32, u64> =
            SpillShuffle::new(2, Some(&c), usize::MAX, test_dir("combplain"));
        for i in 0..60u64 {
            let k = (i * 7 % 11) as u32;
            spilled.emit_kv((k % 2) as usize, k, i).unwrap();
            plain.emit_kv((k % 2) as usize, k, i).unwrap();
        }
        assert!(spilled.report.runs > 5);
        let a = {
            let mut s = spilled;
            collect(&mut s)
        };
        let b = {
            let mut s = plain;
            collect(&mut s)
        };
        assert_eq!(a, b, "merged spill fold must equal the in-memory fold");
    }

    #[test]
    fn live_counters_tick_at_spill_time_and_match_the_report() {
        let obs = approxhadoop_obs::Obs::shared();
        let runs = obs
            .registry
            .counter("approx_process_spill_runs_total", &[("job", "t")]);
        let bytes = obs
            .registry
            .counter("approx_process_spill_bytes_total", &[("job", "t")]);
        let mut s: SpillShuffle<'_, u32, u64> =
            SpillShuffle::new(2, None, 2 * PAIR, test_dir("livecounters"))
                .with_counters(Arc::clone(&runs), Arc::clone(&bytes));
        for i in 0..10u64 {
            s.emit_kv((i % 2) as usize, i as u32, i).unwrap();
        }
        assert!(runs.get() > 0, "counters must tick before drain");
        assert!(bytes.get() > 0);
        let report = s.drain(|_, _, _| Ok(())).unwrap();
        assert_eq!(runs.get(), report.runs, "live runs == drained report");
        assert_eq!(bytes.get(), report.bytes, "live bytes == drained report");
    }

    /// Edge case: nothing ever spilled — the drain must serve the
    /// non-empty in-memory partitions alone, bit-identical to what the
    /// in-memory shuffle path would produce (sorted fold per partition
    /// on the combining path, emission order on the raw path).
    #[test]
    fn drain_with_zero_runs_serves_in_memory_partitions() {
        let c = SumCombiner;
        let mut s: SpillShuffle<'_, u32, u64> =
            SpillShuffle::new(2, Some(&c), usize::MAX, test_dir("zeroruns"));
        for (k, v) in [(9u32, 1u64), (3, 2), (9, 3), (4, 4)] {
            s.emit_kv((k % 2) as usize, k, v).unwrap();
        }
        assert_eq!(s.report.runs, 0, "budget never exceeded: no runs");
        assert_eq!(
            collect(&mut s),
            vec![(0, 4, 4), (1, 3, 2), (1, 9, 4)],
            "in-memory-only drain folds and sorts per partition"
        );

        let mut raw: SpillShuffle<'_, u32, u64> =
            SpillShuffle::new(1, None, usize::MAX, test_dir("zerorunsraw"));
        for (k, v) in [(9u32, 1u64), (3, 2), (9, 3)] {
            raw.emit_kv(0, k, v).unwrap();
        }
        assert_eq!(raw.report.runs, 0);
        assert_eq!(
            collect(&mut raw),
            vec![(0, 9, 1), (0, 3, 2), (0, 9, 3)],
            "raw in-memory-only drain preserves emission order"
        );
    }

    /// Edge case: runs whose key ranges do not overlap at all — the
    /// k-way merge must stitch them into one sorted stream and still
    /// match the never-spilled fold bit-for-bit.
    #[test]
    fn combined_merge_of_disjoint_key_ranges_matches_unspilled() {
        let c = SumCombiner;
        // Budget of 4 pairs per run; emit keys in disjoint phases so
        // each run covers its own key range (0..4, then 100..104, then
        // 50..54 — out of order across runs on purpose).
        let mut spilled: SpillShuffle<'_, u32, u64> =
            SpillShuffle::new(1, Some(&c), 4 * PAIR, test_dir("disjoint"));
        let mut plain: SpillShuffle<'_, u32, u64> =
            SpillShuffle::new(1, Some(&c), usize::MAX, test_dir("disjointplain"));
        for base in [0u32, 100, 50] {
            for i in 0..5u32 {
                let k = base + i;
                spilled.emit_kv(0, k, u64::from(k)).unwrap();
                plain.emit_kv(0, k, u64::from(k)).unwrap();
            }
        }
        assert!(
            spilled.report.runs >= 3,
            "each phase must land in its own run, got {}",
            spilled.report.runs
        );
        let merged = collect(&mut spilled);
        assert_eq!(merged, collect(&mut plain), "disjoint-range merge diverged");
        let keys: Vec<u32> = merged.iter().map(|(_, k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "merged stream must be globally key-sorted");
    }

    #[test]
    fn dropped_buffer_cleans_its_runs() {
        let dir = test_dir("dropcleanup");
        let mut s: SpillShuffle<'_, u32, u64> = SpillShuffle::new(1, None, 1, dir.clone());
        s.emit_kv(0, 1, 1).unwrap();
        assert!(dir.exists());
        drop(s);
        assert!(
            !dir.exists(),
            "Drop must remove spill files of killed attempts"
        );
    }
}
