//! The multi-process execution backend: map attempts run in separate
//! worker OS processes, talking to the scheduler over length-prefixed
//! pipe frames, with a spill-capable shuffle on the worker side.
//!
//! # Architecture
//!
//! ```text
//! parent (tracker thread)                 worker process (×N)
//! ┌──────────────────────┐   ToWorker    ┌─────────────────────┐
//! │ JobTracker           │ ───frames───▶ │ worker_main loop    │
//! │   └─ ProcessExecutor │   (stdin)     │   └─ JobRegistry    │
//! │        │             │               │        └─ mapper    │
//! │        │             │  FromWorker   │   SpillShuffle      │
//! │   reducer threads ◀──┼ ◀──frames──── │   (mem → runs →     │
//! └──────────────────────┘   (stdout)    │    merge on drain)  │
//!                                        └─────────────────────┘
//!              shared: input spool file (FileStore, mmap)
//! ```
//!
//! The parent snapshots the job's input into a spool file
//! ([`approxhadoop_dfs::FileStore`]); workers `mmap` it and decode only
//! the blocks they are assigned, so input bytes cross the process
//! boundary zero-copy through the page cache rather than through the
//! pipes. Each worker is one map slot on its own simulated server, so
//! locality, speculation, blacklisting and degrade-to-drop behave
//! exactly as on the scoped backend.
//!
//! Closures cannot be shipped to another process, so process-backend
//! jobs are *named*: the worker binary registers mappers in a
//! [`JobRegistry`] and the parent sends a [`WorkerSpec`] naming one of
//! them plus an opaque params blob.
//!
//! # Failure semantics
//!
//! A worker that crashes (abort, OOM-kill, `kill -9`) surfaces as pipe
//! EOF; the executor synthesizes a [`RuntimeError::WorkerLost`]
//! failure for every attempt it owed, which flows into the tracker's
//! bounded-retry / blacklist / degrade-to-drop machinery like any other
//! task failure — and degraded tasks still widen the job's confidence
//! intervals per Eq. 1–3 of the paper. The dead worker is respawned on
//! the next dispatch to its slot.

pub mod wire;

mod executor;
mod registry;
mod spill;

pub use registry::{worker_main, worker_obs, JobRegistry};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use approxhadoop_dfs::{BlockId, FileStoreWriter};
use approxhadoop_ipc::Wire;

use crate::control::{Coordinator, JobControl};
use crate::event::JobSession;
use crate::input::InputSource;
use crate::reducer::Reducer;
use crate::types::{Key, Value};
use crate::{Result, RuntimeError};

use super::clock::{Clock, SystemClock};
use super::executor::Topology;
use super::scheduler::JobTracker;
use super::shuffle;
use super::{JobConfig, JobResult};

use executor::{ProcObs, ProcessExecutor};
use wire::{ToWorker, WorkerJobSpec};

/// Which worker binary to launch and which registered job it should run.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Path of the worker executable (a binary calling [`worker_main`]).
    pub bin: PathBuf,
    /// Name of the job in the worker's [`JobRegistry`].
    pub job: String,
    /// Opaque parameters handed to the registered builder.
    pub params: Vec<u8>,
}

impl WorkerSpec {
    /// A spec for `job` in the worker binary at `bin`, with no params.
    pub fn new(bin: impl Into<PathBuf>, job: impl Into<String>) -> Self {
        WorkerSpec {
            bin: bin.into(),
            job: job.into(),
            params: Vec::new(),
        }
    }

    /// Attaches an opaque params blob for the worker-side job builder.
    #[must_use]
    pub fn with_params(mut self, params: Vec<u8>) -> Self {
        self.params = params;
        self
    }

    /// Resolves a worker binary installed next to the current
    /// executable — the layout `cargo` produces for sibling `[[bin]]`
    /// targets and the one deployments ship. Inside a test harness the
    /// executable lives one level down in `deps/`, so the parent
    /// directory is consulted too.
    pub fn sibling(bin_name: &str, job: impl Into<String>) -> Result<Self> {
        let exe = std::env::current_exe()
            .map_err(|e| RuntimeError::invalid(format!("cannot locate current executable: {e}")))?;
        let mut dirs: Vec<PathBuf> = Vec::new();
        if let Some(dir) = exe.parent() {
            dirs.push(dir.to_path_buf());
            if dir.file_name().is_some_and(|n| n == "deps") {
                if let Some(up) = dir.parent() {
                    dirs.push(up.to_path_buf());
                }
            }
        }
        for dir in &dirs {
            let candidate = dir.join(bin_name);
            if candidate.is_file() {
                return Ok(WorkerSpec::new(candidate, job));
            }
        }
        Err(RuntimeError::invalid(format!(
            "worker binary {bin_name:?} not found next to {}",
            exe.display()
        )))
    }
}

/// Runs a job on the process backend: `config.workers` worker processes
/// are spawned from `spec.bin`, each holding one map slot, and the job
/// named by `spec.job` runs inside them.
///
/// Mirrors [`run_job_with_session`](super::run_job_with_session) —
/// same coordinator/session semantics (cancellation, deadline, event
/// stream), same scheduler — with these differences:
///
/// * the mapper is named via `spec` instead of passed as a value (it
///   must be registered in the worker binary's [`JobRegistry`]);
/// * the input is snapshotted into a spool file read by the workers via
///   `mmap`, so `S::Item` must implement [`Wire`], as must the job's
///   key and value types;
/// * map output buffered beyond `config.shuffle_mem_bytes` spills
///   sorted runs to disk and is merged back while shipping, so
///   shuffles larger than memory complete (results are identical
///   either way).
pub fn run_job_process<S, R, FR>(
    input: &S,
    spec: &WorkerSpec,
    make_reducer: FR,
    config: JobConfig,
    coordinator: &mut dyn Coordinator,
    session: &JobSession,
) -> Result<JobResult<R::Output>>
where
    S: InputSource,
    S::Item: Wire,
    R: Reducer,
    R::Key: Key + Wire,
    R::Value: Value + Wire,
    FR: Fn(usize) -> R + Sync,
{
    config.validate()?;
    let label = session.job.to_string();
    run_process(
        input,
        spec,
        make_reducer,
        config,
        coordinator,
        session,
        &SystemClock,
        session.job.0 + 2,
        &label,
    )
}

/// Distinguishes concurrent jobs of one process in scratch-dir names.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Owns the job's scratch directory (input spool + worker spill runs)
/// and removes it on drop — after the workers are reaped, since the
/// guard is created before the executor.
struct ScratchGuard(PathBuf);

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Snapshots every split into a spool file the workers can `mmap`:
/// one block per map task, payload = back-to-back item encodings.
/// Builds the job spec's dataset table from the splits: one
/// `(dataset, split count)` entry per distinct dataset, in dataset
/// order. Single-input jobs (every split tagged dataset 0) get an
/// empty table so their spec bytes are unchanged from before
/// multi-input support.
fn dataset_table(splits: &[crate::input::SplitMeta]) -> Vec<(u32, u64)> {
    let mut table: Vec<(u32, u64)> = Vec::new();
    for s in splits {
        match table.iter_mut().find(|(d, _)| *d == s.dataset.0) {
            Some((_, n)) => *n += 1,
            None => table.push((s.dataset.0, 1)),
        }
    }
    table.sort_by_key(|&(d, _)| d);
    if table.len() == 1 && table[0].0 == 0 {
        Vec::new()
    } else {
        table
    }
}

fn write_spool<S>(input: &S, total: usize, path: &Path) -> Result<()>
where
    S: InputSource,
    S::Item: Wire,
{
    let mut writer = FileStoreWriter::create(path)?;
    let mut payload = Vec::new();
    for i in 0..total {
        payload.clear();
        let stream = input.stream_split(i, 1.0, 0)?;
        let expect = stream.total;
        let mut yielded = 0u64;
        for item in stream {
            item.encode(&mut payload);
            yielded += 1;
        }
        if yielded != expect {
            return Err(RuntimeError::invalid(format!(
                "split {i} advertises {expect} records but yielded {yielded}"
            )));
        }
        writer.append(BlockId(i as u64), expect, &payload)?;
    }
    writer.finish()?;
    Ok(())
}

/// The process-backend driver: spool the input, spawn reducers and the
/// worker fleet, drive the [`JobTracker`] against a `ProcessExecutor`,
/// then reap everything and finalise.
#[allow(clippy::too_many_arguments)] // internal driver: job + session + obs identity
fn run_process<S, R, FR>(
    input: &S,
    spec: &WorkerSpec,
    make_reducer: FR,
    config: JobConfig,
    coordinator: &mut dyn Coordinator,
    session: &JobSession,
    clock: &dyn Clock,
    obs_pid: u64,
    obs_label: &str,
) -> Result<JobResult<R::Output>>
where
    S: InputSource,
    S::Item: Wire,
    R: Reducer,
    R::Key: Key + Wire,
    R::Value: Value + Wire,
    FR: Fn(usize) -> R + Sync,
{
    let splits = input.splits();
    let total = splits.len();
    if total == 0 {
        return Err(RuntimeError::invalid("input has no splits"));
    }
    let start = Instant::now();

    // Scratch space for the spool and the workers' spill runs. The
    // guard is created before the executor so removal happens only
    // after every worker is reaped.
    let scratch = config
        .spill_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir)
        .join(format!(
            "approxhadoop-job-{}-{}-{}",
            std::process::id(),
            session.job.0,
            SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
    std::fs::create_dir_all(&scratch).map_err(|e| {
        RuntimeError::invalid(format!(
            "cannot create scratch dir {}: {e}",
            scratch.display()
        ))
    })?;
    let _scratch_guard = ScratchGuard(scratch.clone());
    let spool = scratch.join("input.spool");
    write_spool(input, total, &spool)?;

    let job_frame = ToWorker::Job(WorkerJobSpec {
        job: spec.job.clone(),
        params: spec.params.clone(),
        spool: spool.to_string_lossy().into_owned(),
        num_reducers: config.reduce_tasks as u32,
        shuffle_mem_bytes: config.shuffle_mem_bytes as u64,
        spill_dir: scratch.join("spill").to_string_lossy().into_owned(),
        // A non-empty label switches worker-side telemetry on: workers
        // run their own registry/tracer and piggyback deltas on the
        // frame stream.
        telemetry_label: config
            .obs
            .as_ref()
            .map(|_| obs_label.to_string())
            .unwrap_or_default(),
        datasets: dataset_table(&splits),
    })
    .to_bytes();

    let control = Arc::new(JobControl::new(config.reduce_tasks));
    let topology = Topology {
        capacity: vec![1; config.workers],
        placement: true,
    };
    let (reducer_txs, reducer_rxs) =
        shuffle::reducer_channels::<R::Key, R::Value>(config.reduce_tasks);
    let obs = config.obs.as_ref().map(|o| ProcObs::new(o, obs_label));

    let make_reducer = &make_reducer;
    let splits = &splits;
    let config = &config;
    let scope_result = crossbeam::thread::scope(|s| {
        // ---- reduce tasks ----
        let mut reducer_handles = Vec::new();
        for (r, rx) in reducer_rxs.into_iter().enumerate() {
            let control = Arc::clone(&control);
            reducer_handles.push(s.spawn(move |_| {
                shuffle::drain_reduce_events(make_reducer(r), rx, r, total, control)
            }));
        }
        let join_reducers =
            |handles: Vec<crossbeam::thread::ScopedJoinHandle<'_, Vec<R::Output>>>| {
                let mut outputs = Vec::new();
                let mut panicked = false;
                for h in handles {
                    match h.join() {
                        Ok(out) => outputs.extend(out),
                        Err(_) => panicked = true,
                    }
                }
                (outputs, panicked)
            };

        // ---- the worker fleet ----
        // A failed spawn drops the reducer senders held by `new`, so the
        // reducers drain out before the error propagates.
        let mut executor = match ProcessExecutor::<R::Key, R::Value>::new(
            &spec.bin,
            job_frame,
            config.workers,
            reducer_txs,
            obs,
            config.obs.clone(),
        ) {
            Ok(e) => e,
            Err(e) => {
                join_reducers(reducer_handles);
                return Err(e);
            }
        };

        // ---- the scheduler ----
        let mut tracker = JobTracker::new(
            config, splits, &control, session, clock, topology, start, obs_pid, obs_label,
        );
        tracker.run_loop(&mut executor, coordinator);

        // Shut down: reap the workers (Shutdown → SIGTERM → SIGKILL,
        // always waited) and release the reducer senders they fed.
        drop(executor);

        let (outputs, panicked) = join_reducers(reducer_handles);
        tracker
            .finish(panicked)
            .map(|metrics| JobResult { outputs, metrics })
    });

    match scope_result {
        Ok(job) => job,
        Err(_) => Err(RuntimeError::TaskPanicked {
            what: "task tracker".into(),
        }),
    }
}
