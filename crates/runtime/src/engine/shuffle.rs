//! Shuffle plumbing shared by every execution backend: per-reducer
//! channels, pre-partitioned batch shipping, drop notifications, and the
//! reduce-side drain loop.
//!
//! Both executors route map outputs through the same channel fabric, so
//! the shuffle contract — one deduplicated `MapOutput`/`MapDropped`
//! event per task per reducer — lives in exactly one place.

use std::collections::BTreeMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::control::JobControl;
use crate::reducer::{DedupState, MapOutputMeta, ReduceContext, ReduceEvent, Reducer};
use crate::types::{Key, TaskId, Value};

/// Creates one unbounded channel per reduce task.
#[allow(clippy::type_complexity)] // a (senders, receivers) pair, nothing deeper
pub(crate) fn reducer_channels<K: Key, V: Value>(
    reducers: usize,
) -> (
    Vec<Sender<ReduceEvent<K, V>>>,
    Vec<Receiver<ReduceEvent<K, V>>>,
) {
    let mut txs = Vec::with_capacity(reducers);
    let mut rxs = Vec::with_capacity(reducers);
    for _ in 0..reducers {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    (txs, rxs)
}

/// Tells every reducer that `task` will never deliver output (dropped,
/// killed, or degraded-to-drop) so barrier-less reducers can account for
/// the missing cluster per Eq. 1–3.
pub(crate) fn broadcast_drop<K: Key, V: Value>(txs: &[Sender<ReduceEvent<K, V>>], task: usize) {
    for tx in txs {
        let _ = tx.send(ReduceEvent::MapDropped { task: TaskId(task) });
    }
}

/// Ships one map attempt's outputs: each reducer receives exactly one
/// pre-partitioned batch (pre-combined and in key order when a combiner
/// ran). Returns the number of pairs shuffled.
pub(crate) fn ship_outputs<K: Key, V: Value>(
    reducer_txs: &[Sender<ReduceEvent<K, V>>],
    meta: MapOutputMeta,
    combined_path: bool,
    raw: &mut [Vec<(K, V)>],
    combined: &mut [BTreeMap<K, V>],
) -> u64 {
    let mut shuffled = 0u64;
    for (p, tx) in reducer_txs.iter().enumerate() {
        let pairs: Vec<(K, V)> = if combined_path {
            std::mem::take(&mut combined[p]).into_iter().collect()
        } else {
            std::mem::take(&mut raw[p])
        };
        shuffled += pairs.len() as u64;
        let _ = tx.send(ReduceEvent::MapOutput { meta, pairs });
    }
    shuffled
}

/// The reduce-task body: drains shuffle events until every sender is
/// gone, forwarding the first event per map task (speculative siblings
/// deliver duplicates) to the user reducer, then finishes it.
pub(crate) fn drain_reduce_events<R: Reducer>(
    mut reducer: R,
    rx: Receiver<ReduceEvent<R::Key, R::Value>>,
    partition: usize,
    total_maps: usize,
    control: Arc<JobControl>,
) -> Vec<R::Output> {
    let mut ctx = ReduceContext::new(partition, total_maps, control);
    let mut dedup = DedupState::new();
    for event in rx.iter() {
        match event {
            ReduceEvent::MapOutput { meta, pairs } => {
                if dedup.first(meta.task) {
                    ctx.note_map();
                    reducer.on_map_output(&meta, pairs, &mut ctx);
                }
            }
            ReduceEvent::MapDropped { task } => {
                if dedup.first(task) {
                    ctx.note_map();
                    reducer.on_map_dropped(task, &mut ctx);
                }
            }
        }
    }
    reducer.finish(&mut ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reducer::GroupedReducer;

    #[test]
    fn ship_outputs_takes_raw_or_combined_path() {
        let (txs, rxs) = reducer_channels::<u32, u64>(2);
        let meta = MapOutputMeta {
            task: TaskId(0),
            total_records: 3,
            sampled_records: 3,
            duration_secs: 0.0,
        };
        let mut raw = vec![vec![(1u32, 1u64), (1, 1)], vec![(2, 1)]];
        let mut combined = vec![BTreeMap::new(), BTreeMap::new()];
        combined[0].insert(1u32, 2u64);
        // Raw path ships every pair.
        let shuffled = ship_outputs(&txs, meta, false, &mut raw, &mut combined);
        assert_eq!(shuffled, 3);
        // Combined path ships the folded table (raw was already drained).
        let shuffled = ship_outputs(&txs, meta, true, &mut raw, &mut combined);
        assert_eq!(shuffled, 1);
        drop(txs);
        let batches: Vec<_> = rxs[0].iter().collect();
        assert_eq!(batches.len(), 2);
    }

    #[test]
    fn drain_dedups_sibling_outputs_and_drops() {
        let (txs, mut rxs) = reducer_channels::<u32, u64>(1);
        let meta = MapOutputMeta {
            task: TaskId(0),
            total_records: 1,
            sampled_records: 1,
            duration_secs: 0.0,
        };
        // Two sibling attempts deliver the same task; one other task drops
        // (twice — e.g. a killed sibling racing the drop broadcast).
        for _ in 0..2 {
            let _ = txs[0].send(ReduceEvent::MapOutput {
                meta,
                pairs: vec![(7u32, 1u64)],
            });
            broadcast_drop(&txs, 1);
        }
        drop(txs);
        let control = Arc::new(JobControl::new(1));
        let out = drain_reduce_events(
            GroupedReducer::new(|k: &u32, vs: &[u64]| Some((*k, vs.len()))),
            rxs.remove(0),
            0,
            2,
            control,
        );
        assert_eq!(out, vec![(7, 1)], "duplicate deliveries must be ignored");
    }
}
