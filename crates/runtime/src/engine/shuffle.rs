//! Shuffle plumbing shared by every execution backend: per-reducer
//! channels, pre-partitioned batch shipping, drop notifications, and the
//! reduce-side drain loop.
//!
//! Both executors route map outputs through the same channel fabric, so
//! the shuffle contract — one deduplicated `MapOutput`/`MapDropped`
//! event per task per reducer — lives in exactly one place.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::combine::CombineTable;
use crate::control::JobControl;
use crate::reducer::{DedupState, MapOutputMeta, ReduceContext, ReduceEvent, Reducer};
use crate::types::{Key, TaskId, Value};

/// Arena-reused per-reducer output buffers for map attempts.
///
/// A task-tracker thread keeps one `MapBuffers` alive across every
/// attempt it runs, so the hot path stops paying per-attempt allocation:
/// the combine tables keep their hash-table allocations across drains,
/// and raw pair vectors (whose backing store is moved out when a batch
/// ships) are pre-sized to the per-partition high-water mark of earlier
/// attempts on the same worker.
pub(crate) struct MapBuffers<K: Key, V: Value> {
    /// Raw path: one pair vector per reduce partition.
    pub(crate) raw: Vec<Vec<(K, V)>>,
    /// Combining path: one hash-fold table per reduce partition.
    pub(crate) combined: Vec<CombineTable<K, V>>,
    /// Largest raw batch shipped per partition so far.
    raw_hwm: Vec<usize>,
}

impl<K: Key, V: Value> MapBuffers<K, V> {
    /// Empty buffers; [`MapBuffers::reset`] sizes them per attempt.
    pub(crate) fn new() -> Self {
        MapBuffers {
            raw: Vec::new(),
            combined: Vec::new(),
            raw_hwm: Vec::new(),
        }
    }

    /// Prepares the buffers for one attempt over `reducers` partitions:
    /// discards leftovers from a killed or panicked predecessor (keeping
    /// allocations), and pre-sizes fresh raw vectors to the high-water
    /// mark so steady-state attempts never grow them incrementally.
    pub(crate) fn reset(&mut self, reducers: usize) {
        if self.raw.len() != reducers {
            self.raw = (0..reducers).map(|_| Vec::new()).collect();
            self.combined = (0..reducers).map(|_| CombineTable::new()).collect();
            self.raw_hwm = vec![0; reducers];
        }
        for (v, &hwm) in self.raw.iter_mut().zip(&self.raw_hwm) {
            v.clear();
            if v.capacity() == 0 && hwm > 0 {
                v.reserve(hwm);
            }
        }
        for table in &mut self.combined {
            table.clear();
        }
    }
}

/// Creates one unbounded channel per reduce task.
#[allow(clippy::type_complexity)] // a (senders, receivers) pair, nothing deeper
pub(crate) fn reducer_channels<K: Key, V: Value>(
    reducers: usize,
) -> (
    Vec<Sender<ReduceEvent<K, V>>>,
    Vec<Receiver<ReduceEvent<K, V>>>,
) {
    let mut txs = Vec::with_capacity(reducers);
    let mut rxs = Vec::with_capacity(reducers);
    for _ in 0..reducers {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    (txs, rxs)
}

/// Tells every reducer that `task` will never deliver output (dropped,
/// killed, or degraded-to-drop) so barrier-less reducers can account for
/// the missing cluster per Eq. 1–3.
pub(crate) fn broadcast_drop<K: Key, V: Value>(txs: &[Sender<ReduceEvent<K, V>>], task: usize) {
    for tx in txs {
        let _ = tx.send(ReduceEvent::MapDropped { task: TaskId(task) });
    }
}

/// Ships one map attempt's outputs: each reducer receives exactly one
/// pre-partitioned batch (pre-combined and in key order when a combiner
/// ran — the hash tables are sorted here, once per batch, so shipped
/// bytes stay identical to the old ordered-insert path). Returns the
/// number of pairs shuffled.
pub(crate) fn ship_outputs<K: Key, V: Value>(
    reducer_txs: &[Sender<ReduceEvent<K, V>>],
    meta: MapOutputMeta,
    combined_path: bool,
    bufs: &mut MapBuffers<K, V>,
) -> u64 {
    let mut shuffled = 0u64;
    for (p, tx) in reducer_txs.iter().enumerate() {
        let pairs: Vec<(K, V)> = if combined_path {
            bufs.combined[p].drain_sorted()
        } else {
            bufs.raw_hwm[p] = bufs.raw_hwm[p].max(bufs.raw[p].len());
            std::mem::take(&mut bufs.raw[p])
        };
        shuffled += pairs.len() as u64;
        let _ = tx.send(ReduceEvent::MapOutput { meta, pairs });
    }
    shuffled
}

/// The reduce-task body: drains shuffle events until every sender is
/// gone, forwarding the first event per map task (speculative siblings
/// deliver duplicates) to the user reducer, then finishes it.
pub(crate) fn drain_reduce_events<R: Reducer>(
    mut reducer: R,
    rx: Receiver<ReduceEvent<R::Key, R::Value>>,
    partition: usize,
    total_maps: usize,
    control: Arc<JobControl>,
) -> Vec<R::Output> {
    let mut ctx = ReduceContext::new(partition, total_maps, control);
    let mut dedup = DedupState::new();
    for event in rx.iter() {
        match event {
            ReduceEvent::MapOutput { meta, pairs } => {
                if dedup.first(meta.task) {
                    ctx.note_map();
                    reducer.on_map_output(&meta, pairs, &mut ctx);
                }
            }
            ReduceEvent::MapDropped { task } => {
                if dedup.first(task) {
                    ctx.note_map();
                    reducer.on_map_dropped(task, &mut ctx);
                }
            }
        }
    }
    reducer.finish(&mut ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reducer::GroupedReducer;

    #[test]
    fn ship_outputs_takes_raw_or_combined_path() {
        let (txs, rxs) = reducer_channels::<u32, u64>(2);
        let meta = MapOutputMeta {
            task: TaskId(0),
            dataset: Default::default(),
            total_records: 3,
            sampled_records: 3,
            duration_secs: 0.0,
        };
        let mut bufs: MapBuffers<u32, u64> = MapBuffers::new();
        bufs.reset(2);
        bufs.raw[0] = vec![(1u32, 1u64), (1, 1)];
        bufs.raw[1] = vec![(2, 1)];
        let c = crate::combine::SumCombiner;
        bufs.combined[0].fold(&c, crate::types::fx_hash(&1u32), 1u32, 2u64);
        // Raw path ships every pair.
        let shuffled = ship_outputs(&txs, meta, false, &mut bufs);
        assert_eq!(shuffled, 3);
        // Combined path ships the folded table (raw was already drained).
        let shuffled = ship_outputs(&txs, meta, true, &mut bufs);
        assert_eq!(shuffled, 1);
        drop(txs);
        let batches: Vec<_> = rxs[0].iter().collect();
        assert_eq!(batches.len(), 2);
    }

    #[test]
    fn combined_batches_ship_in_key_order() {
        let (txs, rxs) = reducer_channels::<String, u64>(1);
        let meta = MapOutputMeta {
            task: TaskId(0),
            dataset: Default::default(),
            total_records: 4,
            sampled_records: 4,
            duration_secs: 0.0,
        };
        let mut bufs: MapBuffers<String, u64> = MapBuffers::new();
        bufs.reset(1);
        let c = crate::combine::SumCombiner;
        for w in ["pear", "apple", "quince", "apple"] {
            bufs.combined[0].fold(&c, crate::types::fx_hash(w), w.to_string(), 1u64);
        }
        ship_outputs(&txs, meta, true, &mut bufs);
        drop(txs);
        let batch = match rxs[0].iter().next().unwrap() {
            ReduceEvent::MapOutput { pairs, .. } => pairs,
            _ => panic!("expected a MapOutput event"),
        };
        assert_eq!(
            batch,
            vec![
                ("apple".to_string(), 2),
                ("pear".to_string(), 1),
                ("quince".to_string(), 1),
            ],
            "hash-folded batches must still arrive sorted by key"
        );
    }

    #[test]
    fn map_buffers_reset_presizes_from_high_water_mark() {
        let (txs, _rxs) = reducer_channels::<u32, u64>(1);
        let meta = MapOutputMeta {
            task: TaskId(0),
            dataset: Default::default(),
            total_records: 64,
            sampled_records: 64,
            duration_secs: 0.0,
        };
        let mut bufs: MapBuffers<u32, u64> = MapBuffers::new();
        bufs.reset(1);
        bufs.raw[0].extend((0..64u32).map(|i| (i, 1u64)));
        ship_outputs(&txs, meta, false, &mut bufs);
        assert!(bufs.raw[0].capacity() == 0, "shipping moves the vector out");
        bufs.reset(1);
        assert!(
            bufs.raw[0].capacity() >= 64,
            "next attempt starts at the high-water mark, got {}",
            bufs.raw[0].capacity()
        );
        // Leftovers from an aborted attempt are discarded on reset.
        bufs.raw[0].push((9, 9));
        bufs.combined[0].fold(
            &crate::combine::SumCombiner,
            crate::types::fx_hash(&1u32),
            1u32,
            1u64,
        );
        bufs.reset(1);
        assert!(bufs.raw[0].is_empty() && bufs.combined[0].is_empty());
    }

    #[test]
    fn drain_dedups_sibling_outputs_and_drops() {
        let (txs, mut rxs) = reducer_channels::<u32, u64>(1);
        let meta = MapOutputMeta {
            task: TaskId(0),
            dataset: Default::default(),
            total_records: 1,
            sampled_records: 1,
            duration_secs: 0.0,
        };
        // Two sibling attempts deliver the same task; one other task drops
        // (twice — e.g. a killed sibling racing the drop broadcast).
        for _ in 0..2 {
            let _ = txs[0].send(ReduceEvent::MapOutput {
                meta,
                pairs: vec![(7u32, 1u64)],
            });
            broadcast_drop(&txs, 1);
        }
        drop(txs);
        let control = Arc::new(JobControl::new(1));
        let out = drain_reduce_events(
            GroupedReducer::new(|k: &u32, vs: &[u64]| Some((*k, vs.len()))),
            rxs.remove(0),
            0,
            2,
            control,
        );
        assert_eq!(out, vec![(7, 1)], "duplicate deliveries must be ignored");
    }
}
