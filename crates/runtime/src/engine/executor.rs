//! Execution backends: *how* map attempts run, with zero scheduling
//! authority.
//!
//! An [`Executor`] owns the worker side of a job — threads or pool
//! slots, the shuffle senders, the worker message channel — and exposes
//! exactly four verbs to the engine's `JobTracker`: dispatch
//! an attempt, receive outcomes, and broadcast drop notifications. All
//! decisions (what to run, where, when to kill) stay in the tracker.
//!
//! Two backends exist: [`ScopedExecutor`] runs attempts on job-private
//! task-tracker threads spread over simulated servers (data locality,
//! speculation and blacklisting apply), and [`PoolExecutor`] submits
//! attempts to a shared [`SlotPool`] (one virtual server; the pool
//! arbitrates slots across jobs).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::control::{Coordinator, JobControl};
use crate::event::JobSession;
use crate::input::InputSource;
use crate::mapper::Mapper;
use crate::pool::{SlotPool, TenantId};
use crate::reducer::{ReduceEvent, Reducer};
use crate::types::{Key, Value};
use crate::{Result, RuntimeError};

use super::attempt::{run_map_attempt, WorkItem, WorkerMsg};
use super::clock::Clock;
use super::scheduler::JobTracker;
use super::shuffle;
use super::{JobConfig, JobResult};

/// The slot layout a tracker schedules over.
pub(crate) struct Topology {
    /// Map slots per server (`capacity.len()` servers).
    pub(crate) capacity: Vec<usize>,
    /// Whether server identity is meaningful: placement-aware topologies
    /// get data locality, speculative duplicates, avoid-server retries
    /// and per-server blacklisting; a placement-free topology (the
    /// shared pool) is a single anonymous server.
    pub(crate) placement: bool,
}

impl Topology {
    /// Job-private servers with slots spread round-robin — the scoped
    /// backend's simulated cluster.
    pub(crate) fn scoped(config: &JobConfig) -> Self {
        let servers = config.servers.min(config.map_slots).max(1);
        let mut capacity = vec![0usize; servers];
        for w in 0..config.map_slots {
            capacity[w % servers] += 1;
        }
        Topology {
            capacity,
            placement: true,
        }
    }

    /// One virtual server holding the job's whole in-flight cap — the
    /// pool backend (the shared pool arbitrates real slots).
    pub(crate) fn pooled(config: &JobConfig) -> Self {
        Topology {
            capacity: vec![config.map_slots],
            placement: false,
        }
    }

    pub(crate) fn servers(&self) -> usize {
        self.capacity.len()
    }
}

/// Result of waiting on an executor for worker events.
pub enum RecvOutcome {
    /// One worker message arrived.
    Msg(WorkerMsg),
    /// Nothing arrived within the timeout.
    Timeout,
    /// Every worker-side sender is gone: no outcome can ever arrive.
    Closed,
}

/// A backend that runs attempts and reports outcomes — nothing more.
///
/// The engine's `JobTracker` owns every scheduling decision (what to run,
/// where, when to kill, when to retry); an `Executor` owns only the
/// worker side of a job — threads, pool slots or worker processes, the
/// shuffle senders, the message channel — and exposes exactly these
/// four verbs. Three backends implement it: scoped task-tracker
/// threads, the shared [`SlotPool`], and multi-process workers
/// ([`super::process`]).
///
/// The contract every implementation must honour:
///
/// * `dispatch` never blocks on attempt *execution* — it enqueues the
///   work and returns; `false` means the backend can no longer run
///   anything (the tracker fails the job).
/// * Every dispatched attempt is eventually terminated by exactly one
///   [`WorkerMsg`] delivered through `recv`/`try_recv`, even if the
///   worker running it dies (the process backend synthesizes a
///   [`RuntimeError::WorkerLost`] failure).
/// * `notify_drop` forwards a drop decision to every reduce task so the
///   multi-stage estimators can widen their confidence intervals
///   (Eq. 1–3 of the paper) — backends must deliver it exactly once per
///   dropped task.
///
/// All methods are called from the tracker thread only; implementations
/// need not be re-entrant.
///
/// [`SlotPool`]: crate::pool::SlotPool
pub trait Executor {
    /// Hands an attempt to `server`. Returns `false` if the backend
    /// rejected it (e.g. the shared pool shut down mid-job).
    fn dispatch(&mut self, server: usize, work: WorkItem) -> bool;
    /// Blocks up to `timeout` for one worker message.
    fn recv(&mut self, timeout: Duration) -> RecvOutcome;
    /// Drains one already-queued worker message, if any.
    fn try_recv(&mut self) -> Option<WorkerMsg>;
    /// Tells every reducer that `task` will never deliver output.
    fn notify_drop(&mut self, task: usize);
}

/// Backend over job-private task-tracker threads (one channel per
/// simulated server; workers round-robin across them).
struct ScopedExecutor<K: Key, V: Value> {
    task_txs: Vec<Sender<WorkItem>>,
    msg_rx: Receiver<WorkerMsg>,
    reducer_txs: Vec<Sender<ReduceEvent<K, V>>>,
}

impl<K: Key, V: Value> Executor for ScopedExecutor<K, V> {
    fn dispatch(&mut self, server: usize, work: WorkItem) -> bool {
        let _ = self.task_txs[server].send(work);
        true
    }

    fn recv(&mut self, timeout: Duration) -> RecvOutcome {
        match self.msg_rx.recv_timeout(timeout) {
            Ok(msg) => RecvOutcome::Msg(msg),
            Err(RecvTimeoutError::Timeout) => RecvOutcome::Timeout,
            Err(RecvTimeoutError::Disconnected) => RecvOutcome::Closed,
        }
    }

    fn try_recv(&mut self) -> Option<WorkerMsg> {
        self.msg_rx.try_recv().ok()
    }

    fn notify_drop(&mut self, task: usize) {
        shuffle::broadcast_drop(&self.reducer_txs, task);
    }
}

/// Backend over a shared [`SlotPool`]: each attempt is boxed and queued
/// under the job's tenant; the pool decides when it actually runs.
struct PoolExecutor<'p, S, M: Mapper> {
    input: Arc<S>,
    mapper: Arc<M>,
    pool: &'p SlotPool,
    tenant: TenantId,
    msg_tx: Sender<WorkerMsg>,
    msg_rx: Receiver<WorkerMsg>,
    reducer_txs: Vec<Sender<ReduceEvent<M::Key, M::Value>>>,
}

impl<S, M> Executor for PoolExecutor<'_, S, M>
where
    S: InputSource + 'static,
    M: Mapper<Item = S::Item> + 'static,
{
    fn dispatch(&mut self, _server: usize, work: WorkItem) -> bool {
        let input = Arc::clone(&self.input);
        let mapper = Arc::clone(&self.mapper);
        let attempt_txs = self.reducer_txs.clone();
        let msg_tx = self.msg_tx.clone();
        self.pool.submit(
            self.tenant,
            Box::new(move || {
                // Pool slots are shared across jobs with different
                // key/value types, so the buffers live per attempt here;
                // the scoped and process backends reuse theirs.
                let mut bufs = shuffle::MapBuffers::new();
                run_map_attempt(&*input, &*mapper, &work, &attempt_txs, &msg_tx, &mut bufs);
            }),
        )
    }

    fn recv(&mut self, timeout: Duration) -> RecvOutcome {
        match self.msg_rx.recv_timeout(timeout) {
            Ok(msg) => RecvOutcome::Msg(msg),
            Err(RecvTimeoutError::Timeout) => RecvOutcome::Timeout,
            // Unreachable in practice: this executor holds `msg_tx`.
            Err(RecvTimeoutError::Disconnected) => RecvOutcome::Closed,
        }
    }

    fn try_recv(&mut self) -> Option<WorkerMsg> {
        self.msg_rx.try_recv().ok()
    }

    fn notify_drop(&mut self, task: usize) {
        shuffle::broadcast_drop(&self.reducer_txs, task);
    }
}

/// Runs a job on job-private scoped threads: spawns reducers and task
/// trackers, drives the [`JobTracker`] against a [`ScopedExecutor`],
/// then joins everything and finalises.
#[allow(clippy::too_many_arguments)] // internal driver: job + session + obs identity
pub(crate) fn run_scoped<S, M, R, FR>(
    input: &S,
    mapper: &M,
    make_reducer: FR,
    config: JobConfig,
    coordinator: &mut dyn Coordinator,
    session: &JobSession,
    clock: &dyn Clock,
    obs_pid: u64,
    obs_label: &str,
) -> Result<JobResult<R::Output>>
where
    S: InputSource,
    M: Mapper<Item = S::Item>,
    R: Reducer<Key = M::Key, Value = M::Value>,
    FR: Fn(usize) -> R + Sync,
{
    let splits = input.splits();
    let total = splits.len();
    if total == 0 {
        return Err(RuntimeError::invalid("input has no splits"));
    }
    let start = Instant::now();
    let control = Arc::new(JobControl::new(config.reduce_tasks));
    let topology = Topology::scoped(&config);
    let servers = topology.servers();

    let mut task_txs: Vec<Sender<WorkItem>> = Vec::with_capacity(servers);
    let mut task_rxs = Vec::with_capacity(servers);
    for _ in 0..servers {
        let (tx, rx) = unbounded::<WorkItem>();
        task_txs.push(tx);
        task_rxs.push(rx);
    }
    let (msg_tx, msg_rx) = unbounded::<WorkerMsg>();
    let (reducer_txs, reducer_rxs) =
        shuffle::reducer_channels::<M::Key, M::Value>(config.reduce_tasks);

    let make_reducer = &make_reducer;
    let splits = &splits;
    let config = &config;
    let scope_result = crossbeam::thread::scope(|s| {
        // ---- reduce tasks ----
        let mut reducer_handles = Vec::new();
        for (r, rx) in reducer_rxs.into_iter().enumerate() {
            let control = Arc::clone(&control);
            reducer_handles.push(s.spawn(move |_| {
                shuffle::drain_reduce_events(make_reducer(r), rx, r, total, control)
            }));
        }

        // ---- task trackers (map slots, spread across servers) ----
        for w in 0..config.map_slots {
            let task_rx = task_rxs[w % servers].clone();
            let msg_tx = msg_tx.clone();
            let reducer_txs = reducer_txs.clone();
            s.spawn(move |_| {
                // One arena per task-tracker thread, reused across every
                // attempt it runs: combine tables keep their hash-table
                // allocations, raw pair vectors start pre-sized.
                let mut bufs = shuffle::MapBuffers::new();
                for work in task_rx.iter() {
                    run_map_attempt(input, mapper, &work, &reducer_txs, &msg_tx, &mut bufs);
                }
            });
        }
        drop(task_rxs);
        drop(msg_tx);

        // ---- the scheduler ----
        let mut executor = ScopedExecutor {
            task_txs,
            msg_rx,
            reducer_txs,
        };
        let mut tracker = JobTracker::new(
            config, splits, &control, session, clock, topology, start, obs_pid, obs_label,
        );
        tracker.run_loop(&mut executor, coordinator);

        // Shut down: close the dispatch channels (workers exit after
        // draining), then release our reducer senders so reducers can
        // finish once the last worker exits.
        drop(executor);

        let mut outputs = Vec::new();
        let mut panicked = false;
        for h in reducer_handles {
            match h.join() {
                Ok(out) => outputs.extend(out),
                Err(_) => panicked = true,
            }
        }
        tracker
            .finish(panicked)
            .map(|metrics| JobResult { outputs, metrics })
    });

    match scope_result {
        Ok(job) => job,
        Err(_) => Err(RuntimeError::TaskPanicked {
            what: "task tracker".into(),
        }),
    }
}

/// Runs a job against a shared [`SlotPool`]: spawns reducer threads,
/// drives the [`JobTracker`] against a [`PoolExecutor`] on the calling
/// thread, then joins everything and finalises.
#[allow(clippy::too_many_arguments)] // internal driver: job + pool + session
pub(crate) fn run_pooled<S, M, R, FR>(
    input: Arc<S>,
    mapper: Arc<M>,
    make_reducer: FR,
    config: JobConfig,
    coordinator: &mut dyn Coordinator,
    pool: &SlotPool,
    tenant: TenantId,
    session: &JobSession,
    clock: &dyn Clock,
) -> Result<JobResult<R::Output>>
where
    S: InputSource + 'static,
    M: Mapper<Item = S::Item> + 'static,
    R: Reducer<Key = M::Key, Value = M::Value> + Send + 'static,
    R::Output: Send + 'static,
    FR: Fn(usize) -> R,
{
    let splits = input.splits();
    let total = splits.len();
    if total == 0 {
        return Err(RuntimeError::invalid("input has no splits"));
    }
    let start = Instant::now();
    let control = Arc::new(JobControl::new(config.reduce_tasks));

    let (msg_tx, msg_rx) = unbounded::<WorkerMsg>();
    let (reducer_txs, reducer_rxs) =
        shuffle::reducer_channels::<M::Key, M::Value>(config.reduce_tasks);
    let mut reducer_handles = Vec::new();
    for (r, rx) in reducer_rxs.into_iter().enumerate() {
        let control = Arc::clone(&control);
        let reducer = make_reducer(r);
        reducer_handles.push(std::thread::spawn(move || {
            shuffle::drain_reduce_events(reducer, rx, r, total, control)
        }));
    }

    // ---- the scheduler (runs on the calling thread) ----
    let topology = Topology::pooled(&config);
    let label = session.job.to_string();
    let mut tracker = JobTracker::new(
        &config,
        &splits,
        &control,
        session,
        clock,
        topology,
        start,
        session.job.0 + 2,
        &label,
    );
    let mut executor = PoolExecutor {
        input,
        mapper,
        pool,
        tenant,
        msg_tx,
        msg_rx,
        reducer_txs,
    };
    tracker.run_loop(&mut executor, coordinator);

    // Shut down: every submitted attempt has reported (the tracker only
    // exits once no closure still holds a reducer sender), so dropping
    // our senders lets the reducers drain and finish.
    drop(executor);

    let mut outputs = Vec::new();
    let mut panicked = false;
    for h in reducer_handles {
        match h.join() {
            Ok(out) => outputs.extend(out),
            Err(_) => panicked = true,
        }
    }
    tracker
        .finish(panicked)
        .map(|metrics| JobResult { outputs, metrics })
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use super::super::clock::FakeClock;
    use super::super::testutil::{sum_reducer, word_blocks, word_mapper};
    use super::super::{run_job, run_job_on_pool, JobConfig};
    use super::run_pooled;
    use crate::control::FixedCoordinator;
    use crate::event::{JobEvent, JobId, JobSession};
    use crate::input::VecSource;
    use crate::mapper::FnMapper;
    use crate::pool::SlotPool;
    use crate::reducer::GroupedReducer;

    #[test]
    fn pool_word_count_matches_scoped_engine() {
        let config = JobConfig {
            map_slots: 3,
            reduce_tasks: 2,
            ..Default::default()
        };
        let scoped = run_job(
            &VecSource::new(word_blocks()),
            &word_mapper(),
            |_| sum_reducer(),
            config.clone(),
        )
        .unwrap();

        let pool = SlotPool::new(3);
        let tenant = pool.register_tenant(1.0);
        let total = word_blocks().len();
        let mut coordinator = FixedCoordinator::new(total, 1.0, 0.0, config.seed);
        let session = JobSession::new(JobId(1));
        let pooled = run_job_on_pool(
            Arc::new(VecSource::new(word_blocks())),
            Arc::new(word_mapper()),
            |_| sum_reducer(),
            config,
            &mut coordinator,
            &pool,
            tenant,
            &session,
        )
        .unwrap();

        let mut a = scoped.outputs;
        let mut b = pooled.outputs;
        a.sort();
        b.sort();
        assert_eq!(a, b, "pool and scoped backends must agree exactly");
        assert_eq!(scoped.metrics.executed_maps, pooled.metrics.executed_maps);
    }

    #[test]
    fn pool_jobs_share_slots_concurrently() {
        let pool = SlotPool::new(4);
        let mut handles = Vec::new();
        for j in 0..3u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let tenant = pool.register_tenant(1.0);
                let blocks: Vec<Vec<u32>> = (0..10).map(|_| (0..40).collect()).collect();
                let mut coordinator = FixedCoordinator::new(10, 1.0, 0.0, j);
                let session = JobSession::new(JobId(j + 1));
                let result = run_job_on_pool(
                    Arc::new(VecSource::new(blocks)),
                    Arc::new(FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u64)| {
                        emit((*v % 2) as u8, 1)
                    })),
                    |_| GroupedReducer::new(|_: &u8, vs: &[u64]| Some(vs.iter().sum::<u64>())),
                    JobConfig {
                        map_slots: 2,
                        seed: j,
                        ..Default::default()
                    },
                    &mut coordinator,
                    &pool,
                    tenant,
                    &session,
                )
                .unwrap();
                pool.unregister_tenant(tenant);
                let total: u64 = result.outputs.iter().sum();
                assert_eq!(total, 400, "job {j} lost records");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn pool_job_streams_wave_events() {
        let pool = SlotPool::new(2);
        let tenant = pool.register_tenant(1.0);
        let (tx, rx) = crossbeam::channel::unbounded();
        let session = JobSession::new(JobId(5)).with_events(tx);
        let blocks: Vec<Vec<u32>> = (0..12).map(|_| (0..5).collect()).collect();
        let mut coordinator = FixedCoordinator::new(12, 1.0, 0.0, 0);
        run_job_on_pool(
            Arc::new(VecSource::new(blocks)),
            Arc::new(FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u64)| {
                emit(0, *v as u64)
            })),
            |_| GroupedReducer::new(|_: &u8, vs: &[u64]| Some(vs.len())),
            JobConfig {
                map_slots: 2,
                ..Default::default()
            },
            &mut coordinator,
            &pool,
            tenant,
            &session,
        )
        .unwrap();
        drop(session);
        let waves: Vec<(usize, usize)> = rx
            .try_iter()
            .filter_map(|e| match e {
                JobEvent::Wave {
                    finished, total, ..
                } => Some((finished, total)),
                _ => None,
            })
            .collect();
        assert!(!waves.is_empty(), "at least one wave event streams out");
        for w in waves.windows(2) {
            assert!(
                w[0].0 <= w[1].0,
                "wave progress must be monotone: {waves:?}"
            );
        }
        let last = waves.last().unwrap();
        assert_eq!(
            *last,
            (12, 12),
            "the final wave flush reports full completion on every backend"
        );
    }

    /// Deadline handling without wall-clock sleeps: the mapper advances a
    /// fake clock past the deadline mid-job, and the tracker must degrade
    /// the remainder to drops and complete approximately.
    #[test]
    fn pool_job_deadline_completes_approximately() {
        let pool = SlotPool::new(1);
        let tenant = pool.register_tenant(1.0);
        let clock = Arc::new(FakeClock::new());
        let deadline = clock.base() + Duration::from_millis(100);
        let session = JobSession::new(JobId(6)).with_deadline(deadline);
        let blocks: Vec<Vec<u32>> = (0..50).map(|i| vec![i as u32]).collect();
        let seen = Arc::new(AtomicUsize::new(0));
        let mapper = {
            let clock = Arc::clone(&clock);
            let seen = Arc::clone(&seen);
            FnMapper::new(move |_: &u32, emit: &mut dyn FnMut(u8, u64)| {
                if seen.fetch_add(1, Ordering::SeqCst) == 9 {
                    clock.advance(Duration::from_millis(200));
                }
                emit(0, 1);
            })
        };
        let mut coordinator = FixedCoordinator::new(50, 1.0, 0.0, 0);
        let result = run_pooled(
            Arc::new(VecSource::new(blocks)),
            Arc::new(mapper),
            |_| GroupedReducer::new(|_: &u8, vs: &[u64]| Some(vs.len())),
            JobConfig {
                map_slots: 1,
                ..Default::default()
            },
            &mut coordinator,
            &pool,
            tenant,
            &session,
            &*clock,
        )
        .unwrap();
        assert!(result.metrics.deadline_hit, "deadline must be recorded");
        assert!(
            result.metrics.executed_maps < 50,
            "deadline must cut the job short: {}",
            result.metrics.executed_maps
        );
        assert!(result.metrics.dropped_maps > 0);
        assert_eq!(
            result.metrics.executed_maps + result.metrics.dropped_maps + result.metrics.killed_maps,
            50
        );
    }

    /// Reduce outputs partitioned across several reduce tasks cover every
    /// key exactly once.
    #[test]
    fn multiple_reducers_cover_all_keys() {
        let blocks: Vec<Vec<u32>> = (0..8)
            .map(|b| (0..100).map(|i| b * 100 + i).collect())
            .collect();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u32, u64)| emit(*v % 16, 1));
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|k: &u32, vs: &[u64]| Some((*k, vs.iter().sum::<u64>()))),
            JobConfig {
                map_slots: 2,
                reduce_tasks: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let mut keys: Vec<u32> = result.outputs.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..16).collect::<Vec<u32>>(), "all keys, each once");
        assert!(result.outputs.iter().all(|(_, n)| *n == 50));
    }
}
