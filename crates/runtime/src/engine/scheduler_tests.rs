//! Scheduler-level tests for the unified [`super::scheduler::JobTracker`]:
//! early termination, locality accounting, deterministic (fake-clock)
//! speculation and session cancellation. Kept out of `scheduler.rs` so
//! the state machine itself stays a single readable unit.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use super::super::clock::FakeClock;
use super::super::executor::run_scoped;
use super::super::{run_job, JobConfig};
use crate::control::FixedCoordinator;
use crate::event::{JobId, JobSession};
use crate::input::VecSource;
use crate::mapper::{FnMapper, MapTaskContext, Mapper};
use crate::reducer::{GroupedReducer, MapOutputMeta, ReduceContext, Reducer};
use crate::types::TaskId;

/// A reducer that requests early termination after the first map
/// output — the GEV-style "target achieved, kill the rest" path.
struct EarlyStopReducer {
    seen_outputs: usize,
    seen_drops: usize,
}

impl Reducer for EarlyStopReducer {
    type Key = u8;
    type Value = u32;
    type Output = (usize, usize);

    fn on_map_output(
        &mut self,
        _meta: &MapOutputMeta,
        _pairs: Vec<(u8, u32)>,
        ctx: &mut ReduceContext,
    ) {
        self.seen_outputs += 1;
        if self.seen_outputs >= 2 {
            ctx.request_drop_remaining();
        }
    }

    fn on_map_dropped(&mut self, _task: TaskId, _ctx: &mut ReduceContext) {
        self.seen_drops += 1;
    }

    fn finish(&mut self, _ctx: &mut ReduceContext) -> Vec<(usize, usize)> {
        vec![(self.seen_outputs, self.seen_drops)]
    }
}

#[test]
fn reducer_initiated_drop_terminates_job() {
    let blocks: Vec<Vec<u32>> = (0..50).map(|_| (0..200).collect()).collect();
    let input = VecSource::new(blocks);
    let mapper = FnMapper::new(|item: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *item));
    let config = JobConfig {
        map_slots: 2,
        ..Default::default()
    };
    let result = run_job(
        &input,
        &mapper,
        |_| EarlyStopReducer {
            seen_outputs: 0,
            seen_drops: 0,
        },
        config,
    )
    .unwrap();
    let (outputs, drops) = result.outputs[0];
    assert!(outputs >= 2, "at least the triggering maps completed");
    assert!(drops > 0, "remaining maps were dropped");
    assert_eq!(outputs + drops, 50);
    assert!(
        result.metrics.executed_maps < 50,
        "job must not run all maps: {}",
        result.metrics.executed_maps
    );
    assert_eq!(
        result.metrics.executed_maps + result.metrics.dropped_maps + result.metrics.killed_maps,
        50
    );
}

/// Early termination during the very first map output, with many
/// reducers: everything still shuts down cleanly.
#[test]
fn immediate_drop_request_with_many_reducers() {
    struct InstantStop;
    impl Reducer for InstantStop {
        type Key = u8;
        type Value = u32;
        type Output = usize;
        fn on_map_output(
            &mut self,
            _m: &MapOutputMeta,
            _p: Vec<(u8, u32)>,
            ctx: &mut ReduceContext,
        ) {
            ctx.request_drop_remaining();
        }
        fn finish(&mut self, ctx: &mut ReduceContext) -> Vec<usize> {
            vec![ctx.maps_seen()]
        }
    }
    let blocks: Vec<Vec<u32>> = (0..30).map(|i| vec![i as u32]).collect();
    let input = VecSource::new(blocks);
    let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u32)| emit(*v as u8, *v));
    let result = run_job(
        &input,
        &mapper,
        |_| InstantStop,
        JobConfig {
            map_slots: 3,
            reduce_tasks: 5,
            ..Default::default()
        },
    )
    .unwrap();
    // Every reducer eventually observes all 30 maps (as outputs or
    // drop notifications).
    assert_eq!(result.outputs, vec![30; 5]);
    assert!(result.metrics.executed_maps < 30);
}

#[test]
fn locality_preference_is_tracked() {
    // 12 blocks, each local to exactly one of 4 servers round-robin;
    // with 4 servers × 1 slot, every task can be scheduled locally.
    let blocks: Vec<Vec<u32>> = (0..12).map(|i| vec![i as u32]).collect();
    let locations: Vec<Vec<usize>> = (0..12).map(|i| vec![i % 4]).collect();
    let input = VecSource::new(blocks).with_locations(locations);
    let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *v));
    let config = JobConfig {
        map_slots: 4,
        servers: 4,
        ..Default::default()
    };
    let result = run_job(
        &input,
        &mapper,
        |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
        config,
    )
    .unwrap();
    assert_eq!(result.outputs, vec![12]);
    assert_eq!(result.metrics.executed_maps, 12);
    assert!(
        result.metrics.local_maps >= 9,
        "most maps should be local, got {}",
        result.metrics.local_maps
    );
}

/// A reopenable gate the straggling attempt blocks on.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
        }
    }
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }
    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// One task's first attempt advances the fake clock far past the
/// straggler threshold and then parks on a gate; the speculative
/// duplicate (attempt 1) opens the gate as it starts. No real
/// sleeps: "slowness" is a clock jump, so the test is deterministic
/// under any machine load.
struct StragglerMapper {
    clock: Arc<FakeClock>,
    gate: Arc<Gate>,
    slow_task: usize,
}

impl Mapper for StragglerMapper {
    type Item = u32;
    type Key = u8;
    type Value = u64;
    type TaskState = MapTaskContext;

    fn begin_task(&self, ctx: &MapTaskContext) -> MapTaskContext {
        *ctx
    }

    fn map(&self, st: &mut MapTaskContext, _item: u32, emit: &mut dyn FnMut(u8, u64)) {
        if st.task.0 == self.slow_task {
            if st.attempt == 0 {
                self.clock.advance(Duration::from_secs(10));
                self.gate.wait();
            } else {
                self.gate.open();
            }
        }
        emit(0, 1);
    }
}

#[test]
fn speculative_execution_completes_correctly() {
    let blocks: Vec<Vec<u32>> = (0..8).map(|_| (0..50).collect()).collect();
    let input = VecSource::new(blocks);
    let clock = Arc::new(FakeClock::new());
    let gate = Arc::new(Gate::new());
    let mapper = StragglerMapper {
        clock: Arc::clone(&clock),
        gate: Arc::clone(&gate),
        slow_task: 5,
    };
    let config = JobConfig {
        map_slots: 4,
        speculative: true,
        straggler_factor: 2.0,
        ..Default::default()
    };
    let mut coordinator = FixedCoordinator::new(8, 1.0, 0.0, config.seed);
    let session = JobSession::new(JobId(0));
    let result = run_scoped::<_, _, _, _>(
        &input,
        &mapper,
        |_| GroupedReducer::new(|_: &u8, vs: &[u64]| Some(vs.len())),
        config,
        &mut coordinator,
        &session,
        &*clock,
        1,
        "run_job",
    )
    .unwrap();
    assert_eq!(result.outputs, vec![400]);
    assert_eq!(result.metrics.executed_maps, 8);
    assert!(
        result.metrics.speculative_attempts >= 1,
        "the straggler must be duplicated"
    );
}

/// A mapper that cancels its own session after the first item of the
/// first task — the job must fail with `Cancelled` without running
/// the remaining maps, deterministically.
#[test]
fn cancellation_via_session_aborts_scoped_job() {
    let blocks: Vec<Vec<u32>> = (0..40).map(|_| (0..20).collect()).collect();
    let input = VecSource::new(blocks);
    let session = JobSession::new(JobId(9));
    let handle = session.cancel_handle();
    let cancelled_after = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&cancelled_after);
    let mapper = FnMapper::new(move |_: &u32, emit: &mut dyn FnMut(u8, u32)| {
        if counter.fetch_add(1, Ordering::SeqCst) == 0 {
            handle.cancel();
        }
        emit(0, 1);
    });
    let config = JobConfig {
        map_slots: 1,
        ..Default::default()
    };
    let mut coordinator = FixedCoordinator::new(40, 1.0, 0.0, config.seed);
    let result = run_scoped::<_, _, _, _>(
        &input,
        &mapper,
        |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
        config,
        &mut coordinator,
        &session,
        &super::super::clock::SystemClock,
        1,
        "run_job",
    );
    assert!(matches!(result, Err(crate::RuntimeError::Cancelled)));
}
