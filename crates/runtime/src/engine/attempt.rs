//! One map attempt: the unit of work a scheduler dispatches to an
//! executor, and the worker-side code that runs it.
//!
//! Attempts are deliberately generic-free on the control path: a
//! [`WorkItem`] describes *what* to run (task, attempt number, sampling
//! ratio, read seed, kill flag, fault plan) and a [`WorkerMsg`] reports
//! *how it went*, so the [`super::scheduler::JobTracker`] never touches
//! the job's key/value types.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Sender;

use crate::fault::{FaultDecision, FaultPlan};
use crate::input::{DatasetId, InputSource};
use crate::mapper::{MapTaskContext, Mapper};
use crate::metrics::MapStats;
use crate::reducer::{MapOutputMeta, ReduceEvent};
use crate::types::{Partitioner, TaskId};
use crate::RuntimeError;

use super::shuffle;

/// Records pulled from the input stream per timing slice: the lazy read
/// work (block decode, sample filtering) is attributed to `read_secs`
/// once per batch, so the clock is read twice per `READ_BATCH` records
/// instead of twice per record.
const READ_BATCH: usize = 256;

/// A dispatched map attempt — everything a backend needs to execute one
/// map task, with no reference to the job's key/value types.
///
/// The scheduler builds one `WorkItem` per [`Executor::dispatch`] call;
/// backends either run it in-process ([`crate::engine::run_job`], the
/// pool) or serialize its plain-data fields over a pipe to a worker
/// process (the `kill` flag cannot cross the process boundary — the
/// process backend forwards kill requests as explicit `Kill` frames).
///
/// [`Executor::dispatch`]: crate::engine::Executor::dispatch
pub struct WorkItem {
    /// The map task to run.
    pub task: TaskId,
    /// The dataset the task's split belongs to (`DatasetId(0)` for
    /// single-input jobs).
    pub dataset: DatasetId,
    /// Attempt number (`> 0` for retries and speculative duplicates).
    pub attempt: u32,
    /// Within-block input sampling ratio chosen at schedule time.
    pub sampling_ratio: f64,
    /// Per-task read seed — identical across attempts (see
    /// `read_seed`), so retries re-draw the exact same sample.
    pub seed: u64,
    /// Cooperative kill flag: the tracker raises it to abort the attempt
    /// mid-flight (task dropped, or a sibling finished first).
    pub kill: Arc<AtomicBool>,
    /// Deterministic fault-injection plan, if the job runs under one.
    pub fault: Option<Arc<FaultPlan>>,
    /// Whether map-side combining is enabled for this job.
    pub combining: bool,
    /// Span id allocated for this attempt by the parent's tracer (0
    /// when tracing is off). The process backend propagates it to the
    /// worker so remote spans can be parented under the attempt's span
    /// in the merged Chrome trace.
    pub span: u64,
}

/// A span completed inside a worker process, reported back with the
/// attempt's [`WorkerMsg::Completed`]. Timestamps are relative to the
/// attempt's start on the worker's clock; the parent re-bases them into
/// the task-attempt span's window, so worker/parent clock skew never
/// shows in the merged trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteSpan {
    /// Span name (e.g. `"read block"`).
    pub name: String,
    /// Span category (the process backend uses `"worker"`).
    pub category: String,
    /// Microseconds from the attempt's start to the span's start.
    pub rel_ts_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// What a worker reports back to the tracker about one attempt.
///
/// Exactly one `WorkerMsg` terminates every dispatched [`WorkItem`]; the
/// tracker's accounting (waves, retries, degrade-to-drop, Eq. 1–3
/// interval widening) is driven entirely by this stream.
pub enum WorkerMsg {
    /// The attempt ran to completion and shipped its outputs.
    Completed {
        /// Execution statistics for the attempt.
        stats: MapStats,
        /// Attempt number that completed.
        attempt: u32,
        /// Spans completed inside the worker process (empty on the
        /// in-process backends, which trace directly into the parent's
        /// tracer).
        spans: Vec<RemoteSpan>,
    },
    /// The attempt observed its kill flag and aborted without shipping.
    Killed {
        /// The killed task.
        task: TaskId,
        /// Attempt number that was killed.
        attempt: u32,
    },
    /// The attempt failed; the tracker decides between retry,
    /// degrade-to-drop and failing the job.
    Failed {
        /// The failed task.
        task: TaskId,
        /// Attempt number that failed.
        attempt: u32,
        /// Why the attempt failed.
        error: RuntimeError,
    },
}

/// The per-task read seed: identical across attempts so a retry (or a
/// speculative sibling) re-draws the exact same sample, keeping the
/// estimator independent of the fault history.
pub(crate) fn read_seed(job_seed: u64, task: usize) -> u64 {
    job_seed ^ (task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Executes one map attempt on a worker (task-tracker thread or pool
/// slot): honors the kill flag, injects configured faults, streams the
/// sampled split through the mapper (with optional map-side combining),
/// ships one pre-partitioned batch per reducer, and reports the outcome.
pub(crate) fn run_map_attempt<S, M>(
    input: &S,
    mapper: &M,
    work: &WorkItem,
    reducer_txs: &[Sender<ReduceEvent<M::Key, M::Value>>],
    msg_tx: &Sender<WorkerMsg>,
    bufs: &mut shuffle::MapBuffers<M::Key, M::Value>,
) where
    S: InputSource,
    M: Mapper<Item = S::Item>,
{
    if work.kill.load(Ordering::SeqCst) {
        let _ = msg_tx.send(WorkerMsg::Killed {
            task: work.task,
            attempt: work.attempt,
        });
        return;
    }
    let decision = work
        .fault
        .as_deref()
        .map(|f| f.decide(work.task.0, work.attempt))
        .unwrap_or(FaultDecision::None);
    if decision == FaultDecision::IoError {
        let _ = msg_tx.send(WorkerMsg::Failed {
            task: work.task,
            attempt: work.attempt,
            error: RuntimeError::InjectedFault {
                what: format!("input read of {} (attempt {})", work.task, work.attempt),
            },
        });
        return;
    }
    let t0 = Instant::now();
    // Clone-free read path: the source yields records lazily (precise
    // reads iterate blocks in place; sampled reads materialise only the
    // sample) instead of handing back a fully cloned vector.
    let mut stream = match input.stream_split(work.task.0, work.sampling_ratio, work.seed) {
        Ok(s) => s,
        Err(e) => {
            let _ = msg_tx.send(WorkerMsg::Failed {
                task: work.task,
                attempt: work.attempt,
                error: e,
            });
            return;
        }
    };
    // Stream construction is only the first slice of read time; the lazy
    // reads themselves are timed batch-by-batch in the loop below.
    let construct_secs = t0.elapsed().as_secs_f64();
    let total_records = stream.total;
    let sampled_records = stream.sampled;
    let num_reducers = reducer_txs.len();
    let combiner = if work.combining {
        mapper.combiner()
    } else {
        None
    };
    bufs.reset(num_reducers);
    let partitioner = Partitioner::new(num_reducers);
    // User map code may panic; contain it so the JobTracker can fail the
    // job cleanly instead of losing a worker thread (and hanging). The
    // arena buffers are safe to reuse after a panic: `reset` discards
    // any partial state at the start of the next attempt.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if decision == FaultDecision::MapPanic {
            panic!("injected map panic in {}", work.task);
        }
        // Raw path: one pre-sized Vec of pairs per reducer. Combining
        // path: one hash-fold table per reducer, sorted once per batch
        // at ship time (so batch order — and with it the whole job —
        // stays deterministic).
        let raw = &mut bufs.raw;
        let combined = &mut bufs.combined;
        let mut emitted = 0u64;
        let mut read_secs = construct_secs;
        let ctx = MapTaskContext {
            task: work.task,
            dataset: work.dataset,
            sampling_ratio: work.sampling_ratio,
            attempt: work.attempt,
        };
        let mut state = mapper.begin_task(&ctx);
        let mut killed = false;
        let mut batch: Vec<S::Item> = Vec::with_capacity(READ_BATCH);
        let mut exhausted = false;
        while !exhausted && !killed {
            let rt = Instant::now();
            while batch.len() < READ_BATCH {
                match stream.next() {
                    Some(item) => batch.push(item),
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
            read_secs += rt.elapsed().as_secs_f64();
            for item in batch.drain(..) {
                if work.kill.load(Ordering::Relaxed) {
                    killed = true;
                    break;
                }
                mapper.map(&mut state, item, &mut |k, v| {
                    emitted += 1;
                    // One hash per pair, shared by the partitioner and
                    // the combine-table probe.
                    let h = crate::types::fx_hash(&k);
                    let p = partitioner.partition_of_hash(h);
                    crate::combine::route_emission(combiner, raw, combined, p, h, k, v);
                });
            }
        }
        if !killed {
            mapper.end_task(state, &mut |k, v| {
                emitted += 1;
                let h = crate::types::fx_hash(&k);
                let p = partitioner.partition_of_hash(h);
                crate::combine::route_emission(combiner, raw, combined, p, h, k, v);
            });
        }
        (emitted, killed, read_secs)
    }));
    let (emitted, killed, read_secs) = match run {
        Ok(r) => r,
        Err(_) => {
            let _ = msg_tx.send(WorkerMsg::Failed {
                task: work.task,
                attempt: work.attempt,
                error: RuntimeError::TaskPanicked {
                    what: format!("user map code in {}", work.task),
                },
            });
            return;
        }
    };
    if killed {
        let _ = msg_tx.send(WorkerMsg::Killed {
            task: work.task,
            attempt: work.attempt,
        });
        return;
    }
    let duration_secs = t0.elapsed().as_secs_f64();
    let meta = MapOutputMeta {
        task: work.task,
        dataset: work.dataset,
        total_records,
        sampled_records,
        duration_secs,
    };
    let shuffled = shuffle::ship_outputs(reducer_txs, meta, combiner.is_some(), bufs);
    let stats = MapStats {
        task: work.task,
        dataset: work.dataset,
        total_records,
        sampled_records,
        emitted,
        shuffled,
        duration_secs,
        read_secs,
    };
    let _ = msg_tx.send(WorkerMsg::Completed {
        stats,
        attempt: work.attempt,
        spans: Vec::new(),
    });
}

#[cfg(test)]
mod tests {
    use super::super::{run_job, JobConfig};
    use crate::input::{SampledItems, SplitMeta, VecSource};
    use crate::mapper::{FnMapper, Mapper};
    use crate::reducer::{GroupedReducer, MapOutputMeta, ReduceContext, Reducer};
    use crate::RuntimeError;

    #[test]
    fn read_seed_is_stable_per_task() {
        assert_eq!(super::read_seed(7, 3), super::read_seed(7, 3));
        assert_ne!(super::read_seed(7, 3), super::read_seed(7, 4));
        assert_ne!(super::read_seed(7, 3), super::read_seed(8, 3));
    }

    /// Input source whose third split fails to read.
    struct FailingSource;

    impl crate::input::InputSource for FailingSource {
        type Item = u32;

        fn splits(&self) -> Vec<SplitMeta> {
            (0..4)
                .map(|i| SplitMeta {
                    index: i,
                    dataset: Default::default(),
                    records: 1,
                    bytes: 0,
                    locations: vec![],
                })
                .collect()
        }

        fn read_split(
            &self,
            index: usize,
            _ratio: f64,
            _seed: u64,
        ) -> crate::Result<SampledItems<u32>> {
            if index == 2 {
                Err(approxhadoop_dfs::DfsError::BlockNotFound {
                    block: approxhadoop_dfs::BlockId(2),
                }
                .into())
            } else {
                Ok(SampledItems {
                    items: vec![1],
                    total: 1,
                    sampled: 1,
                })
            }
        }
    }

    #[test]
    fn input_failure_aborts_job() {
        let mapper = FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *i));
        let result = run_job(
            &FailingSource,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
            JobConfig::default(),
        );
        assert!(matches!(result, Err(RuntimeError::Input { .. })));
    }

    #[test]
    fn panicking_mapper_fails_job_cleanly() {
        let blocks: Vec<Vec<u32>> = (0..6).map(|i| vec![i as u32]).collect();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u32)| {
            assert!(*v != 3, "poisoned item");
            emit(0, *v);
        });
        let result = run_job(
            &input,
            &mapper,
            |_| GroupedReducer::new(|_: &u8, vs: &[u32]| Some(vs.len())),
            JobConfig::default(),
        );
        assert!(
            matches!(result, Err(RuntimeError::TaskPanicked { .. })),
            "panic must surface as a job error"
        );
    }

    /// A mapper that emits nothing at all still completes with correct
    /// metadata flowing to the reducers.
    #[test]
    fn silent_mapper_completes() {
        struct CountMaps(usize);
        impl Reducer for CountMaps {
            type Key = u8;
            type Value = u32;
            type Output = usize;
            fn on_map_output(
                &mut self,
                meta: &MapOutputMeta,
                pairs: Vec<(u8, u32)>,
                _ctx: &mut ReduceContext,
            ) {
                assert!(pairs.is_empty());
                assert_eq!(meta.total_records, 4);
                self.0 += 1;
            }
            fn finish(&mut self, _ctx: &mut ReduceContext) -> Vec<usize> {
                vec![self.0]
            }
        }
        let blocks: Vec<Vec<u32>> = (0..6).map(|_| vec![0; 4]).collect();
        let input = VecSource::new(blocks);
        let mapper = FnMapper::new(|_: &u32, _emit: &mut dyn FnMut(u8, u32)| {});
        let result = run_job(&input, &mapper, |_| CountMaps(0), JobConfig::default()).unwrap();
        assert_eq!(result.outputs, vec![6]);
    }

    /// A source whose stream is lazy and slow: each `next()` costs real
    /// time, none of it spent at stream construction — the shape that
    /// used to be invisible to `read_secs`.
    struct SlowStreamSource {
        items: u64,
        per_item: std::time::Duration,
    }

    impl crate::input::InputSource for SlowStreamSource {
        type Item = u64;

        fn splits(&self) -> Vec<SplitMeta> {
            vec![SplitMeta {
                index: 0,
                dataset: Default::default(),
                records: self.items,
                bytes: 0,
                locations: vec![],
            }]
        }

        fn read_split(&self, _i: usize, _r: f64, _s: u64) -> crate::Result<SampledItems<u64>> {
            unreachable!("the attempt path streams")
        }

        fn stream_split(
            &self,
            _index: usize,
            _ratio: f64,
            _seed: u64,
        ) -> crate::Result<crate::input::SplitStream<'_, u64>> {
            let per_item = self.per_item;
            let iter = (0..self.items).inspect(move |_| std::thread::sleep(per_item));
            Ok(crate::input::SplitStream::new(self.items, self.items, iter))
        }
    }

    /// Regression for the read-timing misattribution: `stream_split` is
    /// lazy, so timing only its construction booked essentially zero
    /// read time and inflated compute time by the same amount. The
    /// batched timer must attribute per-`next()` read work to
    /// `read_secs`.
    #[test]
    fn read_secs_covers_lazy_stream_reads() {
        use crossbeam::channel::unbounded;
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let per_item = std::time::Duration::from_millis(2);
        let items = 10u64;
        let input = SlowStreamSource { items, per_item };
        let mapper = FnMapper::new(|i: &u64, emit: &mut dyn FnMut(u8, u64)| emit(0, *i));
        let (reduce_tx, _reduce_rx) = unbounded();
        let (msg_tx, msg_rx) = unbounded();
        let work = super::WorkItem {
            task: crate::types::TaskId(0),
            dataset: Default::default(),
            attempt: 0,
            sampling_ratio: 1.0,
            seed: 0,
            kill: Arc::new(AtomicBool::new(false)),
            fault: None,
            combining: false,
            span: 0,
        };
        let mut bufs = super::shuffle::MapBuffers::new();
        super::run_map_attempt(&input, &mapper, &work, &[reduce_tx], &msg_tx, &mut bufs);

        let super::WorkerMsg::Completed { stats, .. } = msg_rx.recv().unwrap() else {
            panic!("attempt must complete");
        };
        // 10 items * 2 ms lives inside `next()`; allow generous slack for
        // coarse sleep granularity, but well above the ~0 the old
        // construction-only measurement would report.
        let floor = (items as f64) * per_item.as_secs_f64() * 0.75;
        assert!(
            stats.read_secs >= floor,
            "read_secs {} must cover lazy read work (floor {floor})",
            stats.read_secs
        );
        assert!(
            stats.read_secs <= stats.duration_secs,
            "read_secs {} cannot exceed attempt duration {}",
            stats.read_secs,
            stats.duration_secs
        );
    }

    /// Stateful end_task emission arrives even when items were sampled
    /// down to a single record.
    #[test]
    fn end_task_emission_with_heavy_sampling() {
        let blocks: Vec<Vec<u32>> = (0..5).map(|_| (0..100).collect()).collect();
        let input = VecSource::new(blocks);
        struct PerTaskCount;
        impl Mapper for PerTaskCount {
            type Item = u32;
            type Key = u8;
            type Value = u64;
            type TaskState = u64;
            fn begin_task(&self, _c: &crate::mapper::MapTaskContext) -> u64 {
                0
            }
            fn map(&self, s: &mut u64, _i: u32, _e: &mut dyn FnMut(u8, u64)) {
                *s += 1;
            }
            fn end_task(&self, s: u64, emit: &mut dyn FnMut(u8, u64)) {
                emit(0, s);
            }
        }
        let result = run_job(
            &input,
            &PerTaskCount,
            |_| GroupedReducer::new(|_: &u8, vs: &[u64]| Some((vs.len(), vs.iter().sum::<u64>()))),
            JobConfig {
                sampling_ratio: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        let (tasks, items) = result.outputs[0];
        assert_eq!(tasks, 5, "every task emits its count");
        assert_eq!(items, 5, "1% of 100 items per task");
    }
}
