//! The JobTracker: one backend-agnostic scheduler state machine.
//!
//! Every control-flow decision of a job — dispatch order and data
//! locality, speculative execution, retry/backoff/blacklisting,
//! degrade-to-drop and its error budget, early termination (reducer-,
//! policy-, or owner-initiated), mid-flight kills, wave accounting, and
//! event/telemetry emission — lives here, in exactly one function each.
//! The tracker is a pure synchronous loop: it never spawns threads and
//! never touches key/value types; executing attempts is delegated to an
//! [`super::executor::Executor`], which only runs [`WorkItem`]s and
//! reports [`WorkerMsg`]s back.
//!
//! This is also where the ROADMAP's target-error controller (Eq. 4–7)
//! plugs in: a [`Coordinator`] observes completed waves via
//! `on_map_complete`, steers per-task sampling through `directive`, and
//! stops the job through `want_drop_remaining` — the tracker itself
//! stays policy-free.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use approxhadoop_obs::FlightRecorder;
use approxhadoop_stats::sampling::random_order;

use crate::control::{Coordinator, JobControl, MapDirective};
use crate::event::{JobEvent, JobSession};
use crate::fault::{FaultPlan, FaultPolicy};
use crate::input::{DatasetId, SplitMeta};
use crate::instrument::{BoundTracker, EngineObs};
use crate::metrics::{DatasetMetrics, JobMetrics, MapStats, TaskOutcome, TaskOutcomeRecord};
use crate::types::TaskId;
use crate::{Result, RuntimeError};

use super::attempt::{read_seed, WorkItem, WorkerMsg};
use super::clock::Clock;
use super::executor::{Executor, RecvOutcome, Topology};
use super::JobConfig;

/// An attempt currently running on some executor slot.
struct RunningAttempt {
    started: Instant,
    kill: Arc<AtomicBool>,
    server: usize,
    /// Trace span id pre-allocated for the attempt (0 = tracing off).
    span: u64,
}

/// A failed task waiting out its backoff before redispatch.
struct RetryEntry {
    due: Instant,
    task: usize,
    attempt: u32,
    sampling_ratio: f64,
    /// The server whose attempt just failed — retries prefer any other.
    avoid_server: Option<usize>,
}

/// The unified scheduler state machine. Construct with [`JobTracker::new`],
/// drive with [`JobTracker::run_loop`], then consume with
/// [`JobTracker::finish`] after the wrapper has joined the reducers.
pub(crate) struct JobTracker<'a> {
    config: &'a JobConfig,
    splits: &'a [SplitMeta],
    control: &'a JobControl,
    session: &'a JobSession,
    clock: &'a dyn Clock,
    topology: Topology,
    start: Instant,
    total: usize,
    pending: VecDeque<usize>,
    metrics: JobMetrics,
    running: HashMap<(usize, u32), RunningAttempt>,
    busy: Vec<usize>,
    completed: HashSet<usize>,
    duplicated: HashSet<usize>,
    finished: usize,
    dropping: bool,
    fatal: Option<RuntimeError>,
    last_wave: usize,
    last_bound: Option<f64>,
    eobs: Option<EngineObs>,
    bound_tracker: BoundTracker,
    policy: FaultPolicy,
    fault: Option<Arc<FaultPlan>>,
    failures: HashMap<usize, u32>,
    task_ratio: HashMap<usize, f64>,
    retry_queue: Vec<RetryEntry>,
    server_failures: Vec<u32>,
    blacklisted: Vec<bool>,
    /// Bounded ring of recent scheduler decisions, dumped as a JSON
    /// flight-recorder file when the job fails (see
    /// [`JobConfig::flight_dir`]).
    flight: FlightRecorder,
}

impl<'a> JobTracker<'a> {
    #[allow(clippy::too_many_arguments)] // internal constructor: the full job context
    pub(crate) fn new(
        config: &'a JobConfig,
        splits: &'a [SplitMeta],
        control: &'a JobControl,
        session: &'a JobSession,
        clock: &'a dyn Clock,
        topology: Topology,
        start: Instant,
        obs_pid: u64,
        obs_label: &str,
    ) -> Self {
        let total = splits.len();
        let servers = topology.servers();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pending: VecDeque<usize> = random_order(&mut rng, total).into_iter().collect();
        // Per-dataset cluster populations `N_d`: one entry per dataset id
        // appearing in the split table (single-input jobs get exactly one
        // entry, dataset 0). Tracked so multi-input estimators can widen
        // the right dataset's interval for drops.
        let mut datasets: Vec<DatasetMetrics> = Vec::new();
        for s in splits {
            let d = s.dataset.0 as usize;
            while datasets.len() <= d {
                datasets.push(DatasetMetrics {
                    dataset: DatasetId(datasets.len() as u32),
                    total_maps: 0,
                    executed_maps: 0,
                    dropped_maps: 0,
                });
            }
            datasets[d].total_maps += 1;
        }
        let eobs = config
            .obs
            .as_ref()
            .map(|o| EngineObs::new(Arc::clone(o), obs_pid, obs_label));
        let fault = config
            .fault_plan
            .as_ref()
            .filter(|p| p.injects_map_faults())
            .cloned()
            .map(Arc::new);
        JobTracker {
            config,
            splits,
            control,
            session,
            clock,
            start,
            total,
            pending,
            metrics: JobMetrics {
                total_maps: total,
                datasets,
                ..Default::default()
            },
            running: HashMap::new(),
            busy: vec![0; servers],
            completed: HashSet::new(),
            duplicated: HashSet::new(),
            finished: 0,
            dropping: false,
            fatal: None,
            last_wave: 0,
            last_bound: None,
            eobs,
            bound_tracker: BoundTracker::new(start, config.reduce_tasks),
            policy: config.fault_policy.clone(),
            fault,
            failures: HashMap::new(),
            task_ratio: HashMap::new(),
            retry_queue: Vec::new(),
            server_failures: vec![0; servers],
            blacklisted: vec![false; servers],
            flight: FlightRecorder::default(),
            topology,
        }
    }

    /// Drives the job to completion (or to a latched fatal error). On
    /// return every task has reached a terminal state and any leftover
    /// speculative siblings carry a raised kill flag.
    pub(crate) fn run_loop(&mut self, exec: &mut dyn Executor, coordinator: &mut dyn Coordinator) {
        while self.finished < self.total {
            self.check_owner_termination();
            self.check_early_termination(coordinator);
            self.apply_dropping(exec);
            self.redispatch_retries(exec);
            self.dispatch_pending(exec, coordinator);
            if self.finished >= self.total {
                break;
            }
            self.speculate(exec);
            if !self.pump_messages(exec, coordinator) {
                break;
            }
            self.publish_progress();
        }
        self.final_wave_flush();
        self.kill_running();
    }

    /// Finalises the job after the wrapper joined the reducers: stamps
    /// wall time, flushes telemetry, surfaces latched errors and reducer
    /// panics, and enforces the degrade budget.
    pub(crate) fn finish(mut self, reducer_panicked: bool) -> Result<JobMetrics> {
        self.metrics.wall_secs = self.start.elapsed().as_secs_f64();
        if self.fatal.is_none() {
            self.bound_tracker.poll(
                self.control,
                &mut self.metrics.bound_series,
                self.eobs.as_ref(),
            );
        }
        if let Some(e) = self.eobs.as_mut() {
            e.finish(&self.metrics);
        }
        if let Some(e) = self.fatal.take() {
            self.flight.record("fatal", e.to_string());
            self.dump_flight("job-failed");
            return Err(e);
        }
        if reducer_panicked {
            self.flight.record("fatal", "reduce task panicked");
            self.dump_flight("reducer-panicked");
            return Err(RuntimeError::TaskPanicked {
                what: "reduce task".into(),
            });
        }
        if let Err(e) = check_degrade_budget(&self.policy, &self.metrics, self.control) {
            self.flight.record("fatal", e.to_string());
            self.dump_flight("degrade-budget-exceeded");
            return Err(e);
        }
        if let Some(bound) = self.control.worst_bound_across_reducers(1) {
            if self.last_bound != Some(bound) {
                self.session.emit(JobEvent::Estimate {
                    job: self.session.job,
                    worst_relative_bound: bound,
                });
            }
        }
        Ok(self.metrics)
    }

    /// Owner-driven termination: cancellation aborts the job, a passed
    /// deadline degrades it to an approximate result.
    fn check_owner_termination(&mut self) {
        if self.session.cancelled() && self.fatal.is_none() {
            self.fatal = Some(RuntimeError::Cancelled);
            self.dropping = true;
        }
        if let Some(deadline) = self.session.deadline {
            if !self.dropping && self.clock.now() >= deadline {
                self.metrics.deadline_hit = true;
                self.dropping = true;
            }
        }
    }

    /// Reduce-initiated or policy-initiated early termination (the
    /// paper's "target achieved, kill the rest" path).
    fn check_early_termination(&mut self, coordinator: &mut dyn Coordinator) {
        if !self.dropping
            && (self.control.drop_requested() || coordinator.want_drop_remaining(self.control))
        {
            self.dropping = true;
        }
    }

    /// While dropping: drains queued retries and pending tasks as
    /// dropped clusters and raises the kill flag on everything running.
    fn apply_dropping(&mut self, exec: &mut dyn Executor) {
        if !self.dropping {
            return;
        }
        let retries: Vec<usize> = self.retry_queue.drain(..).map(|e| e.task).collect();
        for task in retries {
            self.drop_task(exec, task);
        }
        while let Some(t) = self.pending.pop_front() {
            self.drop_task(exec, t);
        }
        for ra in self.running.values() {
            ra.kill.store(true, Ordering::SeqCst);
        }
    }

    /// Accounts one task as a dropped cluster and notifies the reducers
    /// (unless a fatal error made the estimate moot).
    fn drop_task(&mut self, exec: &mut dyn Executor, task: usize) {
        self.finished += 1;
        self.metrics.dropped_maps += 1;
        self.dataset_dropped(task);
        self.flight.record("dropped", format!("task {task}"));
        self.record_outcome(TaskId(task), TaskOutcome::Dropped);
        if self.fatal.is_none() {
            exec.notify_drop(task);
        }
    }

    /// Redispatches failed tasks whose retry backoff elapsed, preferring
    /// a server other than the one that just failed and skipping
    /// blacklisted servers (unless every server is blacklisted).
    fn redispatch_retries(&mut self, exec: &mut dyn Executor) {
        while !self.dropping {
            let now = self.clock.now();
            let Some(pos) = self.retry_queue.iter().position(|e| e.due <= now) else {
                break;
            };
            let Some(server) = self.pick_retry_server(self.retry_queue[pos].avoid_server) else {
                break;
            };
            let entry = self.retry_queue.swap_remove(pos);
            self.launch(
                exec,
                entry.task,
                entry.attempt,
                entry.sampling_ratio,
                server,
            );
        }
    }

    fn pick_retry_server(&self, avoid: Option<usize>) -> Option<usize> {
        let all_black = self.blacklisted.iter().all(|&b| b);
        let usable = |sv: usize| {
            self.busy[sv] < self.topology.capacity[sv] && (all_black || !self.blacklisted[sv])
        };
        let servers = self.topology.servers();
        (0..servers)
            .find(|&sv| usable(sv) && Some(sv) != avoid)
            .or_else(|| (0..servers).find(|&sv| usable(sv)))
    }

    /// Dispatches pending tasks while slots are free. Directives are
    /// requested lazily so the policy can adapt between waves; with a
    /// placement-aware topology each free server prefers a task whose
    /// input block it hosts (HDFS data locality).
    fn dispatch_pending(&mut self, exec: &mut dyn Executor, coordinator: &mut dyn Coordinator) {
        while !self.dropping && !self.pending.is_empty() {
            let Some(server) = self.pick_server() else {
                break;
            };
            let (t, local) = self.pick_task(server);
            match coordinator.directive(TaskId(t), &self.splits[t]) {
                MapDirective::Drop => {
                    self.finished += 1;
                    self.metrics.dropped_maps += 1;
                    self.dataset_dropped(t);
                    if let Some(e) = self.eobs.as_ref() {
                        e.directive(false, 0.0);
                    }
                    self.record_outcome(TaskId(t), TaskOutcome::Dropped);
                    exec.notify_drop(t);
                }
                MapDirective::Run { sampling_ratio } => {
                    if let Some(e) = self.eobs.as_ref() {
                        e.directive(true, sampling_ratio);
                    }
                    if local {
                        self.metrics.local_maps += 1;
                    }
                    self.task_ratio.insert(t, sampling_ratio);
                    self.launch(exec, t, 0, sampling_ratio, server);
                }
            }
        }
    }

    fn pick_server(&self) -> Option<usize> {
        let all_black = self.blacklisted.iter().all(|&b| b);
        (0..self.topology.servers()).find(|&sv| {
            self.busy[sv] < self.topology.capacity[sv] && (all_black || !self.blacklisted[sv])
        })
    }

    /// Picks the next pending task for `server`; with placement the scan
    /// prefers a block hosted on that server and reports whether the
    /// choice was local.
    fn pick_task(&mut self, server: usize) -> (usize, bool) {
        if self.topology.placement {
            let local_pos = self
                .pending
                .iter()
                .position(|&t| self.splits[t].locations.contains(&server));
            let local = local_pos.is_some();
            let t = self
                .pending
                .remove(local_pos.unwrap_or(0))
                .expect("position from scan");
            (t, local)
        } else {
            (self.pending.pop_front().expect("checked non-empty"), false)
        }
    }

    /// Dispatches one attempt: registers it as running and hands the
    /// [`WorkItem`] to the executor. A rejected dispatch (the slot pool
    /// shut down mid-job) rolls the attempt back, accounts the task as
    /// killed and latches a fatal error.
    fn launch(
        &mut self,
        exec: &mut dyn Executor,
        task: usize,
        attempt: u32,
        sampling_ratio: f64,
        server: usize,
    ) {
        let kill = Arc::new(AtomicBool::new(false));
        self.busy[server] += 1;
        let span = self
            .eobs
            .as_ref()
            .map(|e| e.obs().tracer.new_span_id().0)
            .unwrap_or(0);
        self.running.insert(
            (task, attempt),
            RunningAttempt {
                started: self.clock.now(),
                kill: Arc::clone(&kill),
                server,
                span,
            },
        );
        self.flight.record(
            "launch",
            format!("task {task} attempt {attempt} server {server} ratio {sampling_ratio:.3}"),
        );
        let work = WorkItem {
            task: TaskId(task),
            dataset: self.splits[task].dataset,
            attempt,
            sampling_ratio,
            seed: read_seed(self.config.seed, task),
            kill,
            fault: self.fault.clone(),
            combining: self.config.combining,
            span,
        };
        if !exec.dispatch(server, work) {
            self.running.remove(&(task, attempt));
            self.busy[server] = self.busy[server].saturating_sub(1);
            self.finished += 1;
            self.metrics.killed_maps += 1;
            self.dataset_dropped(task);
            self.record_outcome(TaskId(task), TaskOutcome::Killed);
            if self.fatal.is_none() {
                self.fatal = Some(RuntimeError::invalid(
                    "slot pool rejected task (pool shut down or tenant unregistered)",
                ));
            }
            self.dropping = true;
        }
    }

    /// Speculative execution: once the queue is empty and a baseline of
    /// completed maps exists, duplicate any first attempt running longer
    /// than `straggler_factor ×` the mean map time, on the least-loaded
    /// non-blacklisted server. Placement-free topologies (the shared
    /// slot pool) never speculate — the pool is one shared cluster, not
    /// per-job virtual servers.
    fn speculate(&mut self, exec: &mut dyn Executor) {
        if !self.config.speculative
            || !self.topology.placement
            || self.dropping
            || !self.pending.is_empty()
            || self.metrics.map_stats.len() < 3
        {
            return;
        }
        let mean = self.metrics.mean_map_secs();
        let threshold = (self.config.straggler_factor * mean).max(0.05);
        let now = self.clock.now();
        let stragglers: Vec<usize> = self
            .running
            .iter()
            .filter(|((t, a), ra)| {
                *a == 0
                    && !self.duplicated.contains(t)
                    && now.saturating_duration_since(ra.started).as_secs_f64() > threshold
            })
            .map(|((t, _), _)| *t)
            .collect();
        for t in stragglers {
            self.duplicated.insert(t);
            self.metrics.speculative_attempts += 1;
            let servers = self.topology.servers();
            let server = (0..servers)
                .filter(|&sv| !self.blacklisted[sv])
                .min_by_key(|&sv| self.busy[sv])
                .or_else(|| (0..servers).min_by_key(|&sv| self.busy[sv]))
                .unwrap_or(0);
            self.launch(exec, t, 1, 1.0, server);
        }
    }

    /// Waits briefly for worker events and applies everything queued.
    /// Returns `false` when the executor's message channel closed — all
    /// workers died without reporting — which latches a fatal error.
    fn pump_messages(
        &mut self,
        exec: &mut dyn Executor,
        coordinator: &mut dyn Coordinator,
    ) -> bool {
        match exec.recv(Duration::from_millis(10)) {
            RecvOutcome::Msg(msg) => {
                self.handle_msg(exec, coordinator, msg);
                while let Some(extra) = exec.try_recv() {
                    self.handle_msg(exec, coordinator, extra);
                }
                true
            }
            RecvOutcome::Timeout => true,
            RecvOutcome::Closed => {
                if self.fatal.is_none() {
                    self.fatal = Some(RuntimeError::TaskPanicked {
                        what: "all task trackers exited early".into(),
                    });
                }
                false
            }
        }
    }

    fn handle_msg(
        &mut self,
        exec: &mut dyn Executor,
        coordinator: &mut dyn Coordinator,
        msg: WorkerMsg,
    ) {
        match msg {
            WorkerMsg::Completed {
                stats,
                attempt,
                spans,
            } => self.on_attempt_completed(coordinator, stats, attempt, spans),
            WorkerMsg::Killed { task, attempt } => self.on_attempt_killed(exec, task, attempt),
            WorkerMsg::Failed {
                task,
                attempt,
                error,
            } => self.on_attempt_failed(exec, task, attempt, error),
        }
    }

    /// First completion of a task wins: account it, feed the
    /// coordinator, and kill the losing sibling attempt (if any). Later
    /// sibling completions only release their slot.
    fn on_attempt_completed(
        &mut self,
        coordinator: &mut dyn Coordinator,
        stats: MapStats,
        attempt: u32,
        spans: Vec<crate::engine::RemoteSpan>,
    ) {
        let span = self
            .running
            .get(&(stats.task.0, attempt))
            .map(|ra| ra.span)
            .unwrap_or(0);
        self.release_slot(stats.task.0, attempt);
        if self.completed.insert(stats.task.0) {
            self.finished += 1;
            self.metrics.executed_maps += 1;
            if let Some(d) = self.dataset_entry(stats.task.0) {
                d.executed_maps += 1;
            }
            self.metrics.total_records += stats.total_records;
            self.metrics.sampled_records += stats.sampled_records;
            self.metrics.emitted_pairs += stats.emitted;
            self.metrics.shuffled_pairs += stats.shuffled;
            coordinator.on_map_complete(&stats);
            self.metrics.task_outcomes.push(TaskOutcomeRecord {
                task: stats.task,
                outcome: TaskOutcome::Completed,
            });
            self.flight.record(
                "completed",
                format!(
                    "task {} attempt {attempt} records {}/{}",
                    stats.task.0, stats.sampled_records, stats.total_records
                ),
            );
            if let Some(e) = self.eobs.as_mut() {
                e.task_completed(&stats, span, &spans);
                e.task_outcome(TaskOutcome::Completed);
            }
            let task = stats.task.0;
            self.metrics.map_stats.push(stats);
            for ((t, _a), ra) in self.running.iter() {
                if *t == task {
                    ra.kill.store(true, Ordering::SeqCst);
                }
            }
        }
    }

    /// A killed attempt finishes the task as a dropped cluster — unless
    /// the task already completed or a sibling attempt is still running.
    fn on_attempt_killed(&mut self, exec: &mut dyn Executor, task: TaskId, attempt: u32) {
        self.release_slot(task.0, attempt);
        self.flight
            .record("killed", format!("task {} attempt {attempt}", task.0));
        let sibling_running = self.running.keys().any(|(t, _)| *t == task.0);
        if !self.completed.contains(&task.0) && !sibling_running {
            self.finished += 1;
            self.metrics.killed_maps += 1;
            self.dataset_dropped(task.0);
            self.record_outcome(task, TaskOutcome::Killed);
            if self.fatal.is_none() {
                exec.notify_drop(task.0);
            }
        }
    }

    /// A failed attempt either queues a retry (within the policy's
    /// budget), degrades the task to a dropped cluster, or fails the
    /// whole job fast.
    fn on_attempt_failed(
        &mut self,
        exec: &mut dyn Executor,
        task: TaskId,
        attempt: u32,
        error: RuntimeError,
    ) {
        let mut failed_server = None;
        if let Some(ra) = self.running.remove(&(task.0, attempt)) {
            self.busy[ra.server] = self.busy[ra.server].saturating_sub(1);
            if self.topology.placement {
                failed_server = Some(ra.server);
                self.server_failures[ra.server] += 1;
                if self.policy.blacklist_after > 0
                    && !self.blacklisted[ra.server]
                    && self.server_failures[ra.server] >= self.policy.blacklist_after
                {
                    self.blacklisted[ra.server] = true;
                    self.flight
                        .record("blacklist", format!("server {}", ra.server));
                    if let Some(e) = self.eobs.as_ref() {
                        e.server_blacklisted();
                    }
                }
            }
        }
        self.flight.record(
            "failed",
            format!("task {} attempt {attempt}: {error}", task.0),
        );
        if matches!(error, RuntimeError::WorkerLost { .. }) {
            self.dump_flight("worker-crash");
        }
        self.metrics.failed_maps += 1;
        if let Some(e) = self.eobs.as_ref() {
            e.task_failed();
        }
        let sibling_running = self.running.keys().any(|(t, _)| *t == task.0);
        if self.completed.contains(&task.0) || sibling_running {
            return;
        }
        let fails = self.failures.entry(task.0).or_insert(0);
        *fails += 1;
        let fails = *fails;
        if !self.dropping && fails <= self.policy.max_task_retries {
            self.metrics.retried_maps += 1;
            self.flight.record(
                "retry",
                format!("task {} attempt {} queued", task.0, attempt + 1),
            );
            if let Some(e) = self.eobs.as_ref() {
                e.task_retry();
            }
            self.session.emit(JobEvent::TaskRetry {
                job: self.session.job,
                task,
                attempt: attempt + 1,
                reason: error.to_string(),
            });
            self.retry_queue.push(RetryEntry {
                due: self.clock.now() + self.policy.backoff_for(fails),
                task: task.0,
                attempt: attempt + 1,
                sampling_ratio: self.task_ratio.get(&task.0).copied().unwrap_or(1.0),
                avoid_server: failed_server,
            });
        } else if self.policy.degrade_to_drop {
            self.finished += 1;
            self.metrics.degraded_to_drop += 1;
            self.dataset_dropped(task.0);
            self.flight
                .record("degraded", format!("task {} dropped after retries", task.0));
            self.record_outcome(task, TaskOutcome::Failed);
            if let Some(e) = self.eobs.as_ref() {
                e.task_degraded();
            }
            exec.notify_drop(task.0);
        } else {
            self.finished += 1;
            self.record_outcome(task, TaskOutcome::Failed);
            if self.fatal.is_none() {
                self.fatal = Some(error);
            }
            self.dropping = true;
        }
    }

    /// Writes the flight-recorder ring as `flight-<job>-<reason>.json`
    /// into [`JobConfig::flight_dir`] (or `$APPROX_FLIGHT_DIR` when the
    /// config carries none). A best-effort post-mortem aid: with neither
    /// destination configured, or on I/O errors, it silently does
    /// nothing — a failing job must not fail harder because its crash
    /// dump could not be written.
    fn dump_flight(&self, reason: &str) {
        let Some(dir) = self
            .config
            .flight_dir
            .clone()
            .or_else(|| std::env::var_os("APPROX_FLIGHT_DIR").map(std::path::PathBuf::from))
        else {
            return;
        };
        let path = dir.join(format!("flight-{}-{reason}.json", self.session.job));
        let json = self.flight.dump_json(&self.session.job.to_string(), reason);
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(path, json);
    }

    fn release_slot(&mut self, task: usize, attempt: u32) {
        if let Some(ra) = self.running.remove(&(task, attempt)) {
            self.busy[ra.server] = self.busy[ra.server].saturating_sub(1);
        }
    }

    /// The per-dataset population entry for `task`'s dataset.
    fn dataset_entry(&mut self, task: usize) -> Option<&mut DatasetMetrics> {
        let d = self.splits.get(task)?.dataset.0 as usize;
        self.metrics.datasets.get_mut(d)
    }

    /// Accounts `task` as a non-completing cluster (dropped, killed or
    /// degraded) of its dataset.
    fn dataset_dropped(&mut self, task: usize) {
        if let Some(d) = self.dataset_entry(task) {
            d.dropped_maps += 1;
        }
    }

    fn record_outcome(&mut self, task: TaskId, outcome: TaskOutcome) {
        self.metrics
            .task_outcomes
            .push(TaskOutcomeRecord { task, outcome });
        if let Some(e) = self.eobs.as_ref() {
            e.task_outcome(outcome);
        }
    }

    /// Streams progress to the submitter and records telemetry: a Wave
    /// event when the finished count moved, an Estimate event when the
    /// worst bound changed, and a bound-series sample. Once a fatal
    /// error is latched the bound is meaningless (the estimate will be
    /// discarded), so publishing stops.
    fn publish_progress(&mut self) {
        let worst_bound = if self.fatal.is_none() {
            self.control.worst_bound_across_reducers(1)
        } else {
            None
        };
        if self.finished != self.last_wave {
            self.last_wave = self.finished;
            self.flight.record(
                "wave",
                format!(
                    "{}/{} finished, worst bound {:?}",
                    self.finished, self.total, worst_bound
                ),
            );
            self.session.emit(JobEvent::Wave {
                job: self.session.job,
                finished: self.finished,
                total: self.total,
                worst_bound,
            });
            if let Some(e) = self.eobs.as_mut() {
                e.wave_tick(self.finished, self.total, worst_bound);
            }
        }
        if let Some(bound) = worst_bound {
            if self.last_bound != Some(bound) {
                self.last_bound = Some(bound);
                self.session.emit(JobEvent::Estimate {
                    job: self.session.job,
                    worst_relative_bound: bound,
                });
            }
        }
        if self.fatal.is_none() {
            self.bound_tracker.poll(
                self.control,
                &mut self.metrics.bound_series,
                self.eobs.as_ref(),
            );
        }
    }

    /// Emits the final wave if the loop ended between progress ticks —
    /// e.g. the last batch of completions broke the loop before
    /// `publish_progress` ran. Historically only the pool path flushed
    /// this; the unified tracker does it for every backend.
    fn final_wave_flush(&mut self) {
        if self.finished == self.last_wave {
            return;
        }
        let worst_bound = if self.fatal.is_none() {
            self.control.worst_bound_across_reducers(1)
        } else {
            None
        };
        self.session.emit(JobEvent::Wave {
            job: self.session.job,
            finished: self.finished,
            total: self.total,
            worst_bound,
        });
        if let Some(e) = self.eobs.as_mut() {
            e.wave_tick(self.finished, self.total, worst_bound);
        }
        self.last_wave = self.finished;
    }

    /// Raises the kill flag on any attempt still running at loop exit
    /// (a losing speculative sibling may outlive the job).
    fn kill_running(&mut self) {
        for ra in self.running.values() {
            ra.kill.store(true, Ordering::SeqCst);
        }
    }
}

/// Enforces a degraded job's error budget: when tasks were degraded to
/// drops and the policy carries a `max_degraded_bound`, the final worst
/// relative bound across reducers must not exceed it. An unbounded
/// (∞/NaN) result also fails the check.
fn check_degrade_budget(
    policy: &FaultPolicy,
    metrics: &JobMetrics,
    control: &JobControl,
) -> Result<()> {
    let Some(limit) = policy.max_degraded_bound else {
        return Ok(());
    };
    if metrics.degraded_to_drop == 0 {
        return Ok(());
    }
    let Some(worst_bound) = control.worst_bound_across_reducers(1) else {
        return Ok(());
    };
    if worst_bound.is_nan() || worst_bound > limit {
        return Err(RuntimeError::DegradeBudgetExceeded {
            worst_bound,
            limit,
            degraded_maps: metrics.degraded_to_drop,
        });
    }
    Ok(())
}

#[cfg(test)]
#[path = "scheduler_tests.rs"]
mod tests;
