//! Error type for the MapReduce engine.

use std::fmt;

use approxhadoop_dfs::DfsError;

/// Errors produced while configuring or running a job.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The job configuration is invalid (zero slots, bad ratios, …).
    InvalidJob {
        /// Description of the problem.
        reason: String,
    },
    /// The input source failed to provide a split.
    Input {
        /// Underlying DFS error.
        source: DfsError,
    },
    /// A task-tracker or reducer thread panicked.
    TaskPanicked {
        /// Description of the task that died.
        what: String,
    },
    /// The job was cancelled by its owner before completion.
    Cancelled,
}

impl RuntimeError {
    /// Convenience constructor for [`RuntimeError::InvalidJob`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        RuntimeError::InvalidJob {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidJob { reason } => write!(f, "invalid job: {reason}"),
            RuntimeError::Input { source } => write!(f, "input error: {source}"),
            RuntimeError::TaskPanicked { what } => write!(f, "task panicked: {what}"),
            RuntimeError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Input { source } => Some(source),
            _ => None,
        }
    }
}

impl From<DfsError> for RuntimeError {
    fn from(source: DfsError) -> Self {
        RuntimeError::Input { source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RuntimeError::invalid("no slots");
        assert!(e.to_string().contains("no slots"));
        let e: RuntimeError = DfsError::FileNotFound { path: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains('x'));
    }
}
