//! Error type for the MapReduce engine.

use std::fmt;

use approxhadoop_dfs::DfsError;

/// Errors produced while configuring or running a job.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The job configuration is invalid (zero slots, bad ratios, …).
    InvalidJob {
        /// Description of the problem.
        reason: String,
    },
    /// The input source failed to provide a split.
    Input {
        /// Underlying DFS error.
        source: DfsError,
    },
    /// A task-tracker or reducer thread panicked.
    TaskPanicked {
        /// Description of the task that died.
        what: String,
    },
    /// The job was cancelled by its owner before completion.
    Cancelled,
    /// A fault injected by the job's [`FaultPlan`](crate::fault::FaultPlan).
    InjectedFault {
        /// Description of the injected fault.
        what: String,
    },
    /// A worker process died (crashed, was killed, or closed its pipe)
    /// while attempts were in flight on it. The process backend reports
    /// each orphaned attempt with this error so the tracker's retry /
    /// blacklist / degrade-to-drop machinery treats a lost worker like
    /// any other failed attempt.
    WorkerLost {
        /// Description of the lost worker and the attempt it owed.
        what: String,
    },
    /// An error forwarded verbatim from a worker process that does not
    /// map onto a structured variant; `display` is the worker-side
    /// error's `Display` output, reproduced exactly.
    Remote {
        /// The worker-side error rendering.
        display: String,
    },
    /// Tasks were degraded to drops after exhausting their retries, but
    /// the resulting worst relative error bound exceeds the job's
    /// budget ([`FaultPolicy::max_degraded_bound`](crate::fault::FaultPolicy::max_degraded_bound)).
    DegradeBudgetExceeded {
        /// Worst relative error bound across reducers after degrading.
        worst_bound: f64,
        /// The configured limit the bound had to stay under.
        limit: f64,
        /// Map tasks that were degraded to drops.
        degraded_maps: usize,
    },
}

impl RuntimeError {
    /// Convenience constructor for [`RuntimeError::InvalidJob`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        RuntimeError::InvalidJob {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidJob { reason } => write!(f, "invalid job: {reason}"),
            RuntimeError::Input { source } => write!(f, "input error: {source}"),
            RuntimeError::TaskPanicked { what } => write!(f, "task panicked: {what}"),
            RuntimeError::Cancelled => write!(f, "job cancelled"),
            RuntimeError::InjectedFault { what } => write!(f, "injected fault: {what}"),
            RuntimeError::WorkerLost { what } => write!(f, "worker lost: {what}"),
            RuntimeError::Remote { display } => write!(f, "{display}"),
            RuntimeError::DegradeBudgetExceeded {
                worst_bound,
                limit,
                degraded_maps,
            } => write!(
                f,
                "degraded job exceeds its error budget: worst relative bound {worst_bound:.4} > \
                 limit {limit:.4} after {degraded_maps} map task(s) degraded to drops"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Input { source } => Some(source),
            _ => None,
        }
    }
}

impl From<DfsError> for RuntimeError {
    fn from(source: DfsError) -> Self {
        RuntimeError::Input { source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RuntimeError::invalid("no slots");
        assert!(e.to_string().contains("no slots"));
        let e: RuntimeError = DfsError::FileNotFound { path: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains('x'));
    }
}
