//! The reduce-side user code interface: **incremental** (barrier-less)
//! reducers.
//!
//! Unlike stock Hadoop, reduce tasks here consume each map task's output
//! as soon as that map finishes (the paper's barrier-less extension).
//! A reducer therefore sees a stream of [`ReduceEvent`]s and produces its
//! final output in [`Reducer::finish`]. Classic `reduce(key, values)`
//! semantics are provided by [`GroupedReducer`].

use std::collections::HashSet;
use std::sync::Arc;

use crate::control::{BoundReport, JobControl};
use crate::input::DatasetId;
use crate::types::{FxHashMap, Key, TaskId, Value};

/// Metadata accompanying one map task's output: exactly the statistics
/// the multi-stage estimators need (`M_i`, `m_i`) plus timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapOutputMeta {
    /// The producing map task.
    pub task: TaskId,
    /// The dataset the map's split belongs to (`DatasetId(0)` for
    /// single-input jobs) — multi-input reducers key their per-dataset
    /// estimators off this.
    pub dataset: DatasetId,
    /// `M_i` — total records in the map's block.
    pub total_records: u64,
    /// `m_i` — records the map actually processed.
    pub sampled_records: u64,
    /// Map attempt duration in seconds.
    pub duration_secs: f64,
}

/// Events delivered to a reduce task.
#[derive(Debug, Clone)]
pub enum ReduceEvent<K, V> {
    /// A map completed; `pairs` is this reducer's partition of its output
    /// (possibly empty — the metadata still matters for the estimators).
    MapOutput {
        /// The map's statistics.
        meta: MapOutputMeta,
        /// The key/value pairs routed to this reducer.
        pairs: Vec<(K, V)>,
    },
    /// A map was dropped or killed and will never deliver output.
    MapDropped {
        /// The dropped task.
        task: TaskId,
    },
}

/// Context handed to reducer callbacks.
#[derive(Debug)]
pub struct ReduceContext {
    partition: usize,
    total_maps: usize,
    maps_seen: usize,
    control: Arc<JobControl>,
}

impl ReduceContext {
    /// Creates a context. Normally the engine constructs contexts; this
    /// is public so custom engines (e.g. the cluster simulator) and
    /// template tests can drive reducers directly.
    pub fn new(partition: usize, total_maps: usize, control: Arc<JobControl>) -> Self {
        ReduceContext {
            partition,
            total_maps,
            maps_seen: 0,
            control,
        }
    }

    /// Records that one more map (completed or dropped) has been
    /// observed. The engine calls this before each reducer callback.
    pub fn note_map(&mut self) {
        self.maps_seen += 1;
    }

    /// This reducer's partition index.
    pub fn partition(&self) -> usize {
        self.partition
    }

    /// Total map tasks in the job.
    pub fn total_maps(&self) -> usize {
        self.total_maps
    }

    /// Maps (completed + dropped) observed by this reducer so far.
    pub fn maps_seen(&self) -> usize {
        self.maps_seen
    }

    /// Asks the JobTracker to kill and/or drop all remaining maps — the
    /// paper's early-termination path once a target error bound is met.
    pub fn request_drop_remaining(&self) {
        self.control.request_drop_remaining();
    }

    /// Publishes this reducer's current worst relative error bound so the
    /// JobTracker can track bounds across the entire job.
    pub fn report_bound(&self, worst_relative_bound: f64) {
        self.control.report_bound(
            self.partition,
            BoundReport {
                maps_processed: self.maps_seen,
                worst_relative_bound,
            },
        );
    }
}

/// An incremental reduce task.
pub trait Reducer: Send {
    /// Intermediate key type.
    type Key: Key;
    /// Intermediate value type.
    type Value: Value;
    /// Final output record type.
    type Output: Send + 'static;

    /// Handles one completed map's partition of pairs.
    fn on_map_output(
        &mut self,
        meta: &MapOutputMeta,
        pairs: Vec<(Self::Key, Self::Value)>,
        ctx: &mut ReduceContext,
    );

    /// Handles a dropped map (no output will come). Default: no-op.
    fn on_map_dropped(&mut self, task: TaskId, ctx: &mut ReduceContext) {
        let _ = (task, ctx);
    }

    /// Produces the final output once every map has completed or been
    /// dropped.
    fn finish(&mut self, ctx: &mut ReduceContext) -> Vec<Self::Output>;
}

/// Classic Hadoop-style grouped reduce: buffers all values per key and
/// calls `f(key, values)` once per key at the end, in key order.
///
/// Grouping uses a hash table (fixed-key [`FxHashMap`]) so the
/// per-record cost of the reduce drain is a single O(1) probe; the keys
/// are sorted exactly once in [`Reducer::finish`], which keeps the
/// output key order — and therefore every backend's bytes — identical
/// to the earlier ordered-insert (`BTreeMap`) implementation.
pub struct GroupedReducer<K: Key, V, F> {
    groups: FxHashMap<K, Vec<V>>,
    f: F,
}

impl<K: Key, V: Value, O, F> GroupedReducer<K, V, F>
where
    F: FnMut(&K, &[V]) -> Option<O> + Send,
{
    /// Wraps `f` as a grouped reducer; returning `None` suppresses the
    /// key from the output.
    pub fn new(f: F) -> Self {
        GroupedReducer {
            groups: FxHashMap::default(),
            f,
        }
    }
}

impl<K: Key, V: Value, O: Send + 'static, F> Reducer for GroupedReducer<K, V, F>
where
    F: FnMut(&K, &[V]) -> Option<O> + Send,
{
    type Key = K;
    type Value = V;
    type Output = O;

    fn on_map_output(
        &mut self,
        _meta: &MapOutputMeta,
        pairs: Vec<(K, V)>,
        _ctx: &mut ReduceContext,
    ) {
        for (k, v) in pairs {
            self.groups.entry(k).or_default().push(v);
        }
    }

    fn finish(&mut self, _ctx: &mut ReduceContext) -> Vec<O> {
        let mut groups: Vec<(K, Vec<V>)> = self.groups.drain().collect();
        groups.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        groups
            .iter()
            .filter_map(|(k, vs)| (self.f)(k, vs))
            .collect()
    }
}

/// Deduplicating wrapper used by the engine: speculative execution can
/// deliver the same map task's output twice (once per attempt); only the
/// first delivery per task id is forwarded.
pub(crate) struct DedupState {
    seen: HashSet<TaskId>,
}

impl DedupState {
    pub(crate) fn new() -> Self {
        DedupState {
            seen: HashSet::new(),
        }
    }

    /// Returns `true` if this is the first event for `task`.
    pub(crate) fn first(&mut self, task: TaskId) -> bool {
        self.seen.insert(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(task: usize) -> MapOutputMeta {
        MapOutputMeta {
            task: TaskId(task),
            dataset: DatasetId::default(),
            total_records: 10,
            sampled_records: 10,
            duration_secs: 0.0,
        }
    }

    #[test]
    fn grouped_reducer_groups_and_orders() {
        let mut r =
            GroupedReducer::new(|k: &String, vs: &[u64]| Some((k.clone(), vs.iter().sum::<u64>())));
        let control = Arc::new(JobControl::new(1));
        let mut ctx = ReduceContext::new(0, 2, control);
        r.on_map_output(&meta(0), vec![("b".into(), 1), ("a".into(), 2)], &mut ctx);
        r.on_map_output(&meta(1), vec![("a".into(), 3)], &mut ctx);
        let out = r.finish(&mut ctx);
        assert_eq!(out, vec![("a".into(), 5), ("b".into(), 1)]);
    }

    #[test]
    fn grouped_reducer_can_filter_keys() {
        let mut r =
            GroupedReducer::new(|k: &u32, vs: &[u32]| (vs.len() > 1).then_some((*k, vs.len())));
        let control = Arc::new(JobControl::new(1));
        let mut ctx = ReduceContext::new(0, 1, control);
        r.on_map_output(&meta(0), vec![(1, 0), (1, 0), (2, 0)], &mut ctx);
        assert_eq!(r.finish(&mut ctx), vec![(1, 2)]);
    }

    #[test]
    fn context_reports_flow_to_control() {
        let control = Arc::new(JobControl::new(1));
        let mut ctx = ReduceContext::new(0, 4, Arc::clone(&control));
        ctx.note_map();
        ctx.note_map();
        ctx.report_bound(0.07);
        let reports = control.bound_reports();
        assert_eq!(reports[0].unwrap().maps_processed, 2);
        assert!((reports[0].unwrap().worst_relative_bound - 0.07).abs() < 1e-12);
        assert!(!control.drop_requested());
        ctx.request_drop_remaining();
        assert!(control.drop_requested());
    }

    #[test]
    fn dedup_state_filters_repeats() {
        let mut d = DedupState::new();
        assert!(d.first(TaskId(1)));
        assert!(!d.first(TaskId(1)));
        assert!(d.first(TaskId(2)));
    }
}
