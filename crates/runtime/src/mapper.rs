//! The map-side user code interface.
//!
//! A [`Mapper`] is invoked once per input record. Mappers may keep
//! per-task state (created by [`Mapper::begin_task`], flushed by
//! [`Mapper::end_task`]) — the approximation templates in
//! `approxhadoop-core` use this to aggregate per-key statistics within a
//! task before shuffling them.

use crate::combine::Combiner;
use crate::input::DatasetId;
use crate::types::{Key, TaskId, Value};

/// Context of one map task attempt, visible to the mapper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapTaskContext {
    /// The task being executed.
    pub task: TaskId,
    /// The dataset this task's split belongs to (`DatasetId(0)` for
    /// single-input jobs).
    pub dataset: DatasetId,
    /// The input sampling ratio the scheduler chose for this task.
    pub sampling_ratio: f64,
    /// Attempt number (`> 0` for speculative duplicates).
    pub attempt: u32,
}

/// User map code. One instance is shared by all task trackers, so the
/// mapper itself must be stateless (`&self`); per-task state lives in
/// `TaskState`.
pub trait Mapper: Send + Sync {
    /// Input record type.
    type Item: Send + 'static;
    /// Intermediate key type.
    type Key: Key;
    /// Intermediate value type.
    type Value: Value;
    /// Per-task mutable state.
    type TaskState: Send;

    /// Creates the state for one map task attempt.
    fn begin_task(&self, ctx: &MapTaskContext) -> Self::TaskState;

    /// Processes one record, emitting intermediate pairs.
    fn map(
        &self,
        state: &mut Self::TaskState,
        item: Self::Item,
        emit: &mut dyn FnMut(Self::Key, Self::Value),
    );

    /// Called at the end of the task; may emit final pairs (e.g. per-task
    /// aggregates).
    fn end_task(&self, state: Self::TaskState, emit: &mut dyn FnMut(Self::Key, Self::Value)) {
        let _ = (state, emit);
    }

    /// The map-side combiner for this mapper's emissions, if any.
    ///
    /// Returning `Some` opts the job into the combining fast path: the
    /// engine folds same-key pairs per reduce partition inside the map
    /// task, so each map ships at most one value per key per reducer.
    /// Only return `Some` when the reducer treats incoming values as
    /// partial aggregates (see [`crate::combine`]); the default is no
    /// combining.
    fn combiner(&self) -> Option<&dyn Combiner<Self::Key, Self::Value>> {
        None
    }
}

/// Map-side user code for multi-input jobs: like [`Mapper`], but each
/// record arrives with the [`DatasetId`] it was read from, so one map
/// function can treat, say, access-log tuples and page-metadata tuples
/// differently (the shape ApproxJoin's Bloom pre-filter needs).
///
/// Every plain [`Mapper`] is automatically a `MultiMapper` that ignores
/// the tag — all existing single-input workloads compile unchanged — and
/// any `MultiMapper` runs on the existing engine via [`TaggedMapper`],
/// which packages it as a `Mapper` over `(DatasetId, item)` records.
pub trait MultiMapper: Send + Sync {
    /// Input record type (untagged; the tag travels alongside).
    type Item: Send + 'static;
    /// Intermediate key type.
    type Key: Key;
    /// Intermediate value type.
    type Value: Value;
    /// Per-task mutable state.
    type TaskState: Send;

    /// Creates the state for one map task attempt. `ctx.dataset` names
    /// the dataset whose split this task reads — a task never mixes
    /// datasets, because each split belongs to exactly one.
    fn begin_task(&self, ctx: &MapTaskContext) -> Self::TaskState;

    /// Processes one record of dataset `dataset`.
    fn map(
        &self,
        state: &mut Self::TaskState,
        dataset: DatasetId,
        item: Self::Item,
        emit: &mut dyn FnMut(Self::Key, Self::Value),
    );

    /// Called at the end of the task; may emit final pairs.
    fn end_task(&self, state: Self::TaskState, emit: &mut dyn FnMut(Self::Key, Self::Value)) {
        let _ = (state, emit);
    }

    /// The map-side combiner, if any (see [`Mapper::combiner`]).
    fn combiner(&self) -> Option<&dyn Combiner<Self::Key, Self::Value>> {
        None
    }
}

impl<M: Mapper> MultiMapper for M {
    type Item = M::Item;
    type Key = M::Key;
    type Value = M::Value;
    type TaskState = M::TaskState;

    fn begin_task(&self, ctx: &MapTaskContext) -> Self::TaskState {
        Mapper::begin_task(self, ctx)
    }

    fn map(
        &self,
        state: &mut Self::TaskState,
        _dataset: DatasetId,
        item: Self::Item,
        emit: &mut dyn FnMut(Self::Key, Self::Value),
    ) {
        Mapper::map(self, state, item, emit)
    }

    fn end_task(&self, state: Self::TaskState, emit: &mut dyn FnMut(Self::Key, Self::Value)) {
        Mapper::end_task(self, state, emit)
    }

    fn combiner(&self) -> Option<&dyn Combiner<Self::Key, Self::Value>> {
        Mapper::combiner(self)
    }
}

/// Adapts a [`MultiMapper`] to the engine's [`Mapper`] interface over
/// tagged `(DatasetId, item)` records — the record type a
/// [`TaggedSource`](crate::input::TaggedSource) produces.
pub struct TaggedMapper<M> {
    inner: M,
}

impl<M> TaggedMapper<M> {
    /// Wraps `inner` for execution over a tagged input.
    pub fn new(inner: M) -> Self {
        TaggedMapper { inner }
    }

    /// The wrapped multi-mapper.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: MultiMapper> Mapper for TaggedMapper<M> {
    type Item = (DatasetId, M::Item);
    type Key = M::Key;
    type Value = M::Value;
    type TaskState = M::TaskState;

    fn begin_task(&self, ctx: &MapTaskContext) -> Self::TaskState {
        self.inner.begin_task(ctx)
    }

    fn map(
        &self,
        state: &mut Self::TaskState,
        (dataset, item): (DatasetId, M::Item),
        emit: &mut dyn FnMut(Self::Key, Self::Value),
    ) {
        self.inner.map(state, dataset, item, emit)
    }

    fn end_task(&self, state: Self::TaskState, emit: &mut dyn FnMut(Self::Key, Self::Value)) {
        self.inner.end_task(state, emit)
    }

    fn combiner(&self) -> Option<&dyn Combiner<Self::Key, Self::Value>> {
        self.inner.combiner()
    }
}

/// A stateless mapper from a closure `f(&item, emit)`.
pub struct FnMapper<I, K, V, F> {
    f: F,
    _marker: std::marker::PhantomData<fn(I) -> (K, V)>,
}

impl<I, K, V, F> FnMapper<I, K, V, F>
where
    F: Fn(&I, &mut dyn FnMut(K, V)) + Send + Sync,
{
    /// Wraps `f` as a [`Mapper`].
    pub fn new(f: F) -> Self {
        FnMapper {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<I, K, V, F> Mapper for FnMapper<I, K, V, F>
where
    I: Send + 'static,
    K: Key,
    V: Value,
    F: Fn(&I, &mut dyn FnMut(K, V)) + Send + Sync,
{
    type Item = I;
    type Key = K;
    type Value = V;
    type TaskState = ();

    fn begin_task(&self, _ctx: &MapTaskContext) -> Self::TaskState {}

    fn map(&self, _state: &mut (), item: I, emit: &mut dyn FnMut(K, V)) {
        (self.f)(&item, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ctx() -> MapTaskContext {
        MapTaskContext {
            task: TaskId(0),
            dataset: DatasetId::default(),
            sampling_ratio: 1.0,
            attempt: 0,
        }
    }

    #[test]
    fn fn_mapper_emits() {
        let m = FnMapper::new(|item: &u32, emit: &mut dyn FnMut(u32, u32)| {
            emit(*item % 2, *item);
        });
        let mut out = Vec::new();
        Mapper::begin_task(&m, &test_ctx());
        Mapper::map(&m, &mut (), 5, &mut |k, v| out.push((k, v)));
        Mapper::map(&m, &mut (), 6, &mut |k, v| out.push((k, v)));
        Mapper::end_task(&m, (), &mut |k, v| out.push((k, v)));
        assert_eq!(out, vec![(1, 5), (0, 6)]);
    }

    struct CountingMapper;

    impl Mapper for CountingMapper {
        type Item = u32;
        type Key = &'static str;
        type Value = u64;
        type TaskState = u64;

        fn begin_task(&self, _ctx: &MapTaskContext) -> u64 {
            0
        }

        fn map(&self, state: &mut u64, _item: u32, _emit: &mut dyn FnMut(&'static str, u64)) {
            *state += 1;
        }

        fn end_task(&self, state: u64, emit: &mut dyn FnMut(&'static str, u64)) {
            emit("count", state);
        }
    }

    #[test]
    fn stateful_mapper_flushes_at_end() {
        let m = CountingMapper;
        let mut out = Vec::new();
        let mut state = Mapper::begin_task(&m, &test_ctx());
        for i in 0..5 {
            Mapper::map(&m, &mut state, i, &mut |k, v| out.push((k, v)));
        }
        Mapper::end_task(&m, state, &mut |k, v| out.push((k, v)));
        assert_eq!(out, vec![("count", 5)]);
    }

    #[test]
    fn plain_mapper_is_a_multi_mapper() {
        // The blanket impl adapts any Mapper: the tag is ignored.
        let m = CountingMapper;
        let mut out = Vec::new();
        let mut state = MultiMapper::begin_task(&m, &test_ctx());
        MultiMapper::map(&m, &mut state, DatasetId(0), 1, &mut |k, v| {
            out.push((k, v))
        });
        MultiMapper::map(&m, &mut state, DatasetId(7), 2, &mut |k, v| {
            out.push((k, v))
        });
        MultiMapper::end_task(&m, state, &mut |k, v| out.push((k, v)));
        assert_eq!(out, vec![("count", 2)]);
    }

    struct TagCounter;

    impl MultiMapper for TagCounter {
        type Item = u32;
        type Key = u32;
        type Value = u64;
        type TaskState = ();

        fn begin_task(&self, _ctx: &MapTaskContext) {}

        fn map(
            &self,
            _state: &mut (),
            dataset: DatasetId,
            item: u32,
            emit: &mut dyn FnMut(u32, u64),
        ) {
            emit(dataset.0, u64::from(item));
        }
    }

    #[test]
    fn tagged_mapper_routes_by_dataset() {
        let m = TaggedMapper::new(TagCounter);
        let mut out = Vec::new();
        let mut state = ();
        Mapper::begin_task(&m, &test_ctx());
        Mapper::map(&m, &mut state, (DatasetId(0), 5), &mut |k, v| {
            out.push((k, v))
        });
        Mapper::map(&m, &mut state, (DatasetId(1), 9), &mut |k, v| {
            out.push((k, v))
        });
        assert_eq!(out, vec![(0, 5), (1, 9)]);
    }
}
