//! The map-side user code interface.
//!
//! A [`Mapper`] is invoked once per input record. Mappers may keep
//! per-task state (created by [`Mapper::begin_task`], flushed by
//! [`Mapper::end_task`]) — the approximation templates in
//! `approxhadoop-core` use this to aggregate per-key statistics within a
//! task before shuffling them.

use crate::combine::Combiner;
use crate::types::{Key, TaskId, Value};

/// Context of one map task attempt, visible to the mapper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapTaskContext {
    /// The task being executed.
    pub task: TaskId,
    /// The input sampling ratio the scheduler chose for this task.
    pub sampling_ratio: f64,
    /// Attempt number (`> 0` for speculative duplicates).
    pub attempt: u32,
}

/// User map code. One instance is shared by all task trackers, so the
/// mapper itself must be stateless (`&self`); per-task state lives in
/// `TaskState`.
pub trait Mapper: Send + Sync {
    /// Input record type.
    type Item: Send + 'static;
    /// Intermediate key type.
    type Key: Key;
    /// Intermediate value type.
    type Value: Value;
    /// Per-task mutable state.
    type TaskState: Send;

    /// Creates the state for one map task attempt.
    fn begin_task(&self, ctx: &MapTaskContext) -> Self::TaskState;

    /// Processes one record, emitting intermediate pairs.
    fn map(
        &self,
        state: &mut Self::TaskState,
        item: Self::Item,
        emit: &mut dyn FnMut(Self::Key, Self::Value),
    );

    /// Called at the end of the task; may emit final pairs (e.g. per-task
    /// aggregates).
    fn end_task(&self, state: Self::TaskState, emit: &mut dyn FnMut(Self::Key, Self::Value)) {
        let _ = (state, emit);
    }

    /// The map-side combiner for this mapper's emissions, if any.
    ///
    /// Returning `Some` opts the job into the combining fast path: the
    /// engine folds same-key pairs per reduce partition inside the map
    /// task, so each map ships at most one value per key per reducer.
    /// Only return `Some` when the reducer treats incoming values as
    /// partial aggregates (see [`crate::combine`]); the default is no
    /// combining.
    fn combiner(&self) -> Option<&dyn Combiner<Self::Key, Self::Value>> {
        None
    }
}

/// A stateless mapper from a closure `f(&item, emit)`.
pub struct FnMapper<I, K, V, F> {
    f: F,
    _marker: std::marker::PhantomData<fn(I) -> (K, V)>,
}

impl<I, K, V, F> FnMapper<I, K, V, F>
where
    F: Fn(&I, &mut dyn FnMut(K, V)) + Send + Sync,
{
    /// Wraps `f` as a [`Mapper`].
    pub fn new(f: F) -> Self {
        FnMapper {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<I, K, V, F> Mapper for FnMapper<I, K, V, F>
where
    I: Send + 'static,
    K: Key,
    V: Value,
    F: Fn(&I, &mut dyn FnMut(K, V)) + Send + Sync,
{
    type Item = I;
    type Key = K;
    type Value = V;
    type TaskState = ();

    fn begin_task(&self, _ctx: &MapTaskContext) -> Self::TaskState {}

    fn map(&self, _state: &mut (), item: I, emit: &mut dyn FnMut(K, V)) {
        (self.f)(&item, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ctx() -> MapTaskContext {
        MapTaskContext {
            task: TaskId(0),
            sampling_ratio: 1.0,
            attempt: 0,
        }
    }

    #[test]
    fn fn_mapper_emits() {
        let m = FnMapper::new(|item: &u32, emit: &mut dyn FnMut(u32, u32)| {
            emit(*item % 2, *item);
        });
        let mut out = Vec::new();
        m.begin_task(&test_ctx());
        m.map(&mut (), 5, &mut |k, v| out.push((k, v)));
        m.map(&mut (), 6, &mut |k, v| out.push((k, v)));
        m.end_task((), &mut |k, v| out.push((k, v)));
        assert_eq!(out, vec![(1, 5), (0, 6)]);
    }

    struct CountingMapper;

    impl Mapper for CountingMapper {
        type Item = u32;
        type Key = &'static str;
        type Value = u64;
        type TaskState = u64;

        fn begin_task(&self, _ctx: &MapTaskContext) -> u64 {
            0
        }

        fn map(&self, state: &mut u64, _item: u32, _emit: &mut dyn FnMut(&'static str, u64)) {
            *state += 1;
        }

        fn end_task(&self, state: u64, emit: &mut dyn FnMut(&'static str, u64)) {
            emit("count", state);
        }
    }

    #[test]
    fn stateful_mapper_flushes_at_end() {
        let m = CountingMapper;
        let mut out = Vec::new();
        let mut state = m.begin_task(&test_ctx());
        for i in 0..5 {
            m.map(&mut state, i, &mut |k, v| out.push((k, v)));
        }
        m.end_task(state, &mut |k, v| out.push((k, v)));
        assert_eq!(out, vec![("count", 5)]);
    }
}
