//! Text input over the DFS — the engine-side analogue of Hadoop's
//! `TextInputFormat`, with the sampling support of the paper's
//! `ApproxTextInputFormat` built in.

use approxhadoop_dfs::{DfsCluster, FileHandle};

use crate::input::{
    sample_systematic, sample_systematic_indices, InputSource, SampledItems, SplitMeta, SplitStream,
};
use crate::Result;

/// Reads a DFS text file, producing one record per line; each DFS block
/// is one split. Sampling (when the scheduler requests a ratio below
/// `1.0`) is systematic within the block, mirroring the paper's
/// `ApproxTextInputFormat` ("1 out of every k lines" from a random
/// offset).
#[derive(Debug, Clone)]
pub struct TextSource {
    dfs: DfsCluster,
    handle: FileHandle,
}

impl TextSource {
    /// Opens `path` on the DFS.
    pub fn open(dfs: &DfsCluster, path: &str) -> Result<Self> {
        let handle = dfs.open(path)?;
        Ok(TextSource {
            dfs: dfs.clone(),
            handle,
        })
    }

    /// The underlying file handle.
    pub fn handle(&self) -> &FileHandle {
        &self.handle
    }
}

impl InputSource for TextSource {
    type Item = String;

    fn splits(&self) -> Vec<SplitMeta> {
        self.handle
            .blocks
            .iter()
            .zip(&self.handle.locations)
            .map(|(b, locs)| SplitMeta {
                index: b.index as usize,
                records: b.records,
                bytes: b.bytes,
                locations: locs.iter().map(|n| n.0).collect(),
                dataset: Default::default(),
            })
            .collect()
    }

    fn read_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SampledItems<String>> {
        let meta = &self.handle.blocks[index];
        let lines = self.dfs.read_block_lines(meta.id)?;
        let items = sample_systematic(&lines, sampling_ratio, seed);
        Ok(SampledItems {
            total: lines.len() as u64,
            sampled: items.len() as u64,
            items,
        })
    }

    fn stream_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SplitStream<'_, String>> {
        let meta = &self.handle.blocks[index];
        let lines = self.dfs.read_block_lines(meta.id)?;
        let total = lines.len() as u64;
        Ok(
            match sample_systematic_indices(lines.len(), sampling_ratio, seed) {
                // Precise read: move the lines out instead of cloning them.
                None => SplitStream::new(total, total, lines.into_iter()),
                Some(idx) => {
                    let sampled = idx.len() as u64;
                    let mut keep = idx.into_iter().peekable();
                    let iter = lines.into_iter().enumerate().filter_map(move |(i, line)| {
                        if keep.peek() == Some(&i) {
                            keep.next();
                            Some(line)
                        } else {
                            None
                        }
                    });
                    SplitStream::new(total, sampled, iter)
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_dfs::DfsConfig;

    fn setup() -> (DfsCluster, TextSource) {
        let mut dfs = DfsCluster::new(DfsConfig {
            datanodes: 3,
            replication: 2,
            block_records: 50,
        });
        let lines: Vec<String> = (0..170).map(|i| format!("line {i}")).collect();
        dfs.write_lines("logs", &lines).unwrap();
        let src = TextSource::open(&dfs, "logs").unwrap();
        (dfs, src)
    }

    #[test]
    fn splits_mirror_blocks() {
        let (_dfs, src) = setup();
        let splits = src.splits();
        assert_eq!(splits.len(), 4);
        assert_eq!(splits[0].records, 50);
        assert_eq!(splits[3].records, 20);
        assert_eq!(splits[1].locations.len(), 2);
    }

    #[test]
    fn precise_read_returns_all_lines() {
        let (_dfs, src) = setup();
        let read = src.read_split(1, 1.0, 0).unwrap();
        assert_eq!(read.total, 50);
        assert_eq!(read.sampled, 50);
        assert_eq!(read.items[0], "line 50");
    }

    #[test]
    fn sampled_read_reports_counts() {
        let (_dfs, src) = setup();
        let read = src.read_split(0, 0.1, 3).unwrap();
        assert_eq!(read.total, 50);
        assert_eq!(read.sampled, 5);
    }

    #[test]
    fn stream_matches_read() {
        let (_dfs, src) = setup();
        for &(ratio, seed) in &[(1.0, 0u64), (0.1, 3)] {
            let read = src.read_split(0, ratio, seed).unwrap();
            let stream = src.stream_split(0, ratio, seed).unwrap();
            assert_eq!(stream.total, read.total);
            assert_eq!(stream.sampled, read.sampled);
            assert_eq!(stream.collect::<Vec<_>>(), read.items);
        }
    }

    #[test]
    fn missing_file_errors() {
        let dfs = DfsCluster::new(DfsConfig::default());
        assert!(TextSource::open(&dfs, "nope").is_err());
    }
}
