//! Input sources: splits, sampling-aware block readers.
//!
//! Each input split becomes one map task; the split is the *cluster* of
//! the two-stage sampling theory. `read_split` takes the sampling ratio
//! decided by the scheduler for this task and must report both the
//! block's total record count `M_i` and the number of records actually
//! returned `m_i`.

use approxhadoop_stats::sampling::SystematicSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Result;

/// Metadata describing one input split (block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMeta {
    /// Split index (= map task id).
    pub index: usize,
    /// Total records `M_i` in the split.
    pub records: u64,
    /// Size in bytes (for timing/energy models; `0` if unknown).
    pub bytes: u64,
    /// Indices of the servers holding a replica (for locality-aware
    /// scheduling; empty if unknown).
    pub locations: Vec<usize>,
}

/// The outcome of reading (and possibly sampling) a split.
#[derive(Debug, Clone)]
pub struct SampledItems<I> {
    /// The sampled items, in block order.
    pub items: Vec<I>,
    /// `M_i` — total records in the split.
    pub total: u64,
    /// `m_i` — records returned (equals `items.len()`).
    pub sampled: u64,
}

/// A streaming view of one (possibly sampled) split: the counts are
/// known up front, the records are yielded lazily so sources can avoid
/// materialising or cloning whole blocks on the hot path.
pub struct SplitStream<'a, I> {
    /// `M_i` — total records in the split.
    pub total: u64,
    /// `m_i` — records the iterator will yield.
    pub sampled: u64,
    iter: Box<dyn Iterator<Item = I> + Send + 'a>,
}

impl<'a, I> SplitStream<'a, I> {
    /// Wraps an iterator with its split counts. `sampled` must equal the
    /// number of items `iter` yields.
    pub fn new(total: u64, sampled: u64, iter: impl Iterator<Item = I> + Send + 'a) -> Self {
        SplitStream {
            total,
            sampled,
            iter: Box::new(iter),
        }
    }
}

impl<I: Send + 'static> SplitStream<'static, I> {
    /// Adapts an already-materialised [`SampledItems`] read.
    pub fn from_items(read: SampledItems<I>) -> Self {
        SplitStream::new(read.total, read.sampled, read.items.into_iter())
    }
}

impl<I> Iterator for SplitStream<'_, I> {
    type Item = I;

    fn next(&mut self) -> Option<I> {
        self.iter.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

impl<I> std::fmt::Debug for SplitStream<'_, I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplitStream")
            .field("total", &self.total)
            .field("sampled", &self.sampled)
            .finish_non_exhaustive()
    }
}

/// A source of input splits for a job.
///
/// Implementations must be shareable across task-tracker threads.
pub trait InputSource: Send + Sync {
    /// The record type produced.
    type Item: Send + 'static;

    /// Describes every split of the input. Called once at job start.
    fn splits(&self) -> Vec<SplitMeta>;

    /// Reads split `index`, sampling records at `sampling_ratio`
    /// (`1.0` = precise). `seed` makes the sample reproducible per task
    /// attempt. Implementations should use *systematic* sampling (every
    /// k-th record from a random offset), like the paper's
    /// `ApproxTextInputFormat`.
    fn read_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SampledItems<Self::Item>>;

    /// Streaming form of [`read_split`](InputSource::read_split): yields
    /// the same records in the same order without requiring callers to
    /// hold the whole sampled vector. The engine's hot path uses this;
    /// the default delegates to `read_split`, and sources override it to
    /// skip the extra clone/materialisation.
    fn stream_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SplitStream<'_, Self::Item>> {
        let read = self.read_split(index, sampling_ratio, seed)?;
        Ok(SplitStream::from_items(read))
    }
}

/// Computes the systematic-sample indices for a block of `total` records
/// at `ratio`: `None` means "keep every record" (`ratio >= 1.0`), so
/// precise reads never touch an index vector.
///
/// `ratio` must lie in `(0, 1]`; `0`, negatives and NaN are programming
/// errors (the `JobConfig`/CLI boundary validates user input), checked by
/// `debug_assert` here and by the sampler's own assertion in release.
pub fn sample_systematic_indices(total: usize, ratio: f64, seed: u64) -> Option<Vec<usize>> {
    debug_assert!(
        ratio > 0.0 && ratio <= 1.0,
        "sampling ratio must be in (0, 1], got {ratio}"
    );
    if ratio >= 1.0 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = SystematicSampler::from_ratio(ratio);
    Some(sampler.sample_indices(&mut rng, total))
}

/// Samples `items` systematically at `ratio`, returning the sampled
/// subset; keeps everything at `ratio >= 1.0`. Utility for implementing
/// [`InputSource::read_split`]. Same ratio contract as
/// [`sample_systematic_indices`].
pub fn sample_systematic<I: Clone>(items: &[I], ratio: f64, seed: u64) -> Vec<I> {
    match sample_systematic_indices(items.len(), ratio, seed) {
        None => items.to_vec(),
        Some(idx) => idx.into_iter().map(|i| items[i].clone()).collect(),
    }
}

/// In-memory input source: one `Vec` of items per split. The workhorse of
/// unit tests and small jobs.
#[derive(Debug, Clone)]
pub struct VecSource<I> {
    blocks: Vec<Vec<I>>,
    locations: Vec<Vec<usize>>,
}

impl<I: Clone + Send + Sync> VecSource<I> {
    /// Creates a source with one split per inner vector.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn new(blocks: Vec<Vec<I>>) -> Self {
        assert!(!blocks.is_empty(), "input must contain at least one block");
        let locations = vec![Vec::new(); blocks.len()];
        VecSource { blocks, locations }
    }

    /// Attaches replica locations (parallel to the blocks).
    ///
    /// # Panics
    ///
    /// Panics if `locations.len() != blocks.len()`.
    pub fn with_locations(mut self, locations: Vec<Vec<usize>>) -> Self {
        assert_eq!(locations.len(), self.blocks.len());
        self.locations = locations;
        self
    }

    /// Flattens a list of items into equal-size blocks of `per_block`.
    ///
    /// # Panics
    ///
    /// Panics if `per_block == 0` or `items` is empty.
    pub fn from_items(items: Vec<I>, per_block: usize) -> Self {
        assert!(per_block > 0, "per_block must be positive");
        assert!(!items.is_empty(), "input must contain at least one item");
        let blocks = items
            .chunks(per_block)
            .map(|c| c.to_vec())
            .collect::<Vec<_>>();
        VecSource::new(blocks)
    }
}

impl<I: Clone + Send + Sync + 'static> InputSource for VecSource<I> {
    type Item = I;

    fn splits(&self) -> Vec<SplitMeta> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| SplitMeta {
                index: i,
                records: b.len() as u64,
                bytes: 0,
                locations: self.locations[i].clone(),
            })
            .collect()
    }

    fn read_split(&self, index: usize, sampling_ratio: f64, seed: u64) -> Result<SampledItems<I>> {
        let block = &self.blocks[index];
        let items = sample_systematic(block, sampling_ratio, seed);
        Ok(SampledItems {
            total: block.len() as u64,
            sampled: items.len() as u64,
            items,
        })
    }

    fn stream_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SplitStream<'_, I>> {
        let block = &self.blocks[index];
        let total = block.len() as u64;
        Ok(
            match sample_systematic_indices(block.len(), sampling_ratio, seed) {
                // Precise read: iterate the block in place, no index vector,
                // no second materialisation.
                None => SplitStream::new(total, total, block.iter().cloned()),
                Some(idx) => {
                    let sampled = idx.len() as u64;
                    SplitStream::new(
                        total,
                        sampled,
                        idx.into_iter().map(move |i| block[i].clone()),
                    )
                }
            },
        )
    }
}

/// A generator-backed source: splits are produced on demand by a
/// function, so synthetic inputs can be arbitrarily large. The generator
/// must be deterministic per index (straggler duplicates re-read splits).
pub struct FnSource<I, F> {
    metas: Vec<SplitMeta>,
    generator: F,
    _marker: std::marker::PhantomData<fn() -> I>,
}

impl<I, F> FnSource<I, F>
where
    F: Fn(usize) -> Vec<I> + Send + Sync,
{
    /// Creates a source over the given split metadata; `generator(i)`
    /// materialises the records of split `i`.
    ///
    /// # Panics
    ///
    /// Panics if `metas` is empty.
    pub fn new(metas: Vec<SplitMeta>, generator: F) -> Self {
        assert!(!metas.is_empty(), "input must contain at least one split");
        FnSource {
            metas,
            generator,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<I, F> InputSource for FnSource<I, F>
where
    I: Clone + Send + Sync + 'static,
    F: Fn(usize) -> Vec<I> + Send + Sync,
{
    type Item = I;

    fn splits(&self) -> Vec<SplitMeta> {
        self.metas.clone()
    }

    fn read_split(&self, index: usize, sampling_ratio: f64, seed: u64) -> Result<SampledItems<I>> {
        let block = (self.generator)(index);
        let items = sample_systematic(&block, sampling_ratio, seed);
        Ok(SampledItems {
            total: block.len() as u64,
            sampled: items.len() as u64,
            items,
        })
    }

    fn stream_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SplitStream<'_, I>> {
        let block = (self.generator)(index);
        let total = block.len() as u64;
        Ok(
            match sample_systematic_indices(block.len(), sampling_ratio, seed) {
                // Precise read: move records out of the generated block
                // instead of sampling-by-clone.
                None => SplitStream::new(total, total, block.into_iter()),
                Some(idx) => {
                    let sampled = idx.len() as u64;
                    let mut keep = idx.into_iter().peekable();
                    let iter = block.into_iter().enumerate().filter_map(move |(i, item)| {
                        if keep.peek() == Some(&i) {
                            keep.next();
                            Some(item)
                        } else {
                            None
                        }
                    });
                    SplitStream::new(total, sampled, iter)
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_splits_and_reads() {
        let src = VecSource::new(vec![vec![1, 2, 3], vec![4, 5]]);
        let splits = src.splits();
        assert_eq!(splits.len(), 2);
        assert_eq!(splits[0].records, 3);
        assert_eq!(splits[1].records, 2);
        let read = src.read_split(0, 1.0, 0).unwrap();
        assert_eq!(read.items, vec![1, 2, 3]);
        assert_eq!(read.total, 3);
        assert_eq!(read.sampled, 3);
    }

    #[test]
    fn vec_source_sampling_counts() {
        let src = VecSource::new(vec![(0..1000).collect::<Vec<i32>>()]);
        let read = src.read_split(0, 0.1, 7).unwrap();
        assert_eq!(read.total, 1000);
        assert_eq!(read.sampled, 100);
        assert_eq!(read.items.len(), 100);
        // Systematic: consecutive sampled items are 10 apart.
        assert_eq!(read.items[1] - read.items[0], 10);
        // Reproducible for the same seed, shifted for another.
        let again = src.read_split(0, 0.1, 7).unwrap();
        assert_eq!(read.items, again.items);
    }

    #[test]
    fn from_items_chunks_correctly() {
        let src = VecSource::from_items((0..25).collect(), 10);
        let splits = src.splits();
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[2].records, 5);
    }

    #[test]
    fn fn_source_generates_on_demand() {
        let metas = (0..4)
            .map(|i| SplitMeta {
                index: i,
                records: 10,
                bytes: 100,
                locations: vec![],
            })
            .collect();
        let src = FnSource::new(metas, |i| (0..10).map(|j| i * 100 + j).collect::<Vec<_>>());
        let read = src.read_split(2, 1.0, 0).unwrap();
        assert_eq!(read.items[0], 200);
        assert_eq!(read.sampled, 10);
    }

    #[test]
    fn sample_systematic_full_ratio() {
        let items = vec![1, 2, 3];
        assert_eq!(sample_systematic(&items, 1.0, 0), items);
        assert_eq!(sample_systematic_indices(items.len(), 1.0, 0), None);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "sampling ratio must be in (0, 1]")]
    fn sample_systematic_rejects_zero_ratio() {
        // Regression: ratio 0 used to be silently clamped to 1e-9,
        // turning a typo into a near-empty sample with garbage bounds.
        sample_systematic(&[1, 2, 3], 0.0, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "sampling ratio must be in (0, 1]")]
    fn sample_systematic_rejects_nan_ratio() {
        sample_systematic(&[1, 2, 3], f64::NAN, 0);
    }

    #[test]
    fn stream_split_matches_read_split() {
        let src = VecSource::new(vec![(0..1000).collect::<Vec<i32>>()]);
        for &(ratio, seed) in &[(1.0, 0), (0.1, 7), (0.37, 13), (0.003, 99)] {
            let read = src.read_split(0, ratio, seed).unwrap();
            let stream = src.stream_split(0, ratio, seed).unwrap();
            assert_eq!(stream.total, read.total);
            assert_eq!(stream.sampled, read.sampled);
            let streamed: Vec<i32> = stream.collect();
            assert_eq!(streamed, read.items, "ratio {ratio} seed {seed}");
        }
    }

    #[test]
    fn fn_source_stream_matches_read() {
        let metas = (0..3)
            .map(|i| SplitMeta {
                index: i,
                records: 50,
                bytes: 0,
                locations: vec![],
            })
            .collect();
        let src = FnSource::new(metas, |i| (0..50).map(|j| i * 100 + j).collect::<Vec<_>>());
        for &(ratio, seed) in &[(1.0, 0), (0.2, 5), (0.5, 42)] {
            let read = src.read_split(1, ratio, seed).unwrap();
            let stream = src.stream_split(1, ratio, seed).unwrap();
            assert_eq!(stream.sampled, read.sampled);
            assert_eq!(stream.collect::<Vec<_>>(), read.items);
        }
    }

    #[test]
    #[should_panic]
    fn vec_source_rejects_empty() {
        VecSource::<i32>::new(vec![]);
    }
}
