//! Input sources: splits, sampling-aware block readers.
//!
//! Each input split becomes one map task; the split is the *cluster* of
//! the two-stage sampling theory. `read_split` takes the sampling ratio
//! decided by the scheduler for this task and must report both the
//! block's total record count `M_i` and the number of records actually
//! returned `m_i`.

use approxhadoop_stats::sampling::SystematicSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Result;

/// Metadata describing one input split (block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMeta {
    /// Split index (= map task id).
    pub index: usize,
    /// Total records `M_i` in the split.
    pub records: u64,
    /// Size in bytes (for timing/energy models; `0` if unknown).
    pub bytes: u64,
    /// Indices of the servers holding a replica (for locality-aware
    /// scheduling; empty if unknown).
    pub locations: Vec<usize>,
}

/// The outcome of reading (and possibly sampling) a split.
#[derive(Debug, Clone)]
pub struct SampledItems<I> {
    /// The sampled items, in block order.
    pub items: Vec<I>,
    /// `M_i` — total records in the split.
    pub total: u64,
    /// `m_i` — records returned (equals `items.len()`).
    pub sampled: u64,
}

/// A source of input splits for a job.
///
/// Implementations must be shareable across task-tracker threads.
pub trait InputSource: Send + Sync {
    /// The record type produced.
    type Item: Send;

    /// Describes every split of the input. Called once at job start.
    fn splits(&self) -> Vec<SplitMeta>;

    /// Reads split `index`, sampling records at `sampling_ratio`
    /// (`1.0` = precise). `seed` makes the sample reproducible per task
    /// attempt. Implementations should use *systematic* sampling (every
    /// k-th record from a random offset), like the paper's
    /// `ApproxTextInputFormat`.
    fn read_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SampledItems<Self::Item>>;
}

/// Samples `items` systematically at `ratio`, returning the sampled
/// subset; keeps everything at `ratio >= 1.0`. Utility for implementing
/// [`InputSource::read_split`].
pub fn sample_systematic<I: Clone>(items: &[I], ratio: f64, seed: u64) -> Vec<I> {
    if ratio >= 1.0 {
        return items.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = SystematicSampler::from_ratio(ratio.max(1e-9));
    sampler
        .sample_indices(&mut rng, items.len())
        .into_iter()
        .map(|i| items[i].clone())
        .collect()
}

/// In-memory input source: one `Vec` of items per split. The workhorse of
/// unit tests and small jobs.
#[derive(Debug, Clone)]
pub struct VecSource<I> {
    blocks: Vec<Vec<I>>,
    locations: Vec<Vec<usize>>,
}

impl<I: Clone + Send + Sync> VecSource<I> {
    /// Creates a source with one split per inner vector.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn new(blocks: Vec<Vec<I>>) -> Self {
        assert!(!blocks.is_empty(), "input must contain at least one block");
        let locations = vec![Vec::new(); blocks.len()];
        VecSource { blocks, locations }
    }

    /// Attaches replica locations (parallel to the blocks).
    ///
    /// # Panics
    ///
    /// Panics if `locations.len() != blocks.len()`.
    pub fn with_locations(mut self, locations: Vec<Vec<usize>>) -> Self {
        assert_eq!(locations.len(), self.blocks.len());
        self.locations = locations;
        self
    }

    /// Flattens a list of items into equal-size blocks of `per_block`.
    ///
    /// # Panics
    ///
    /// Panics if `per_block == 0` or `items` is empty.
    pub fn from_items(items: Vec<I>, per_block: usize) -> Self {
        assert!(per_block > 0, "per_block must be positive");
        assert!(!items.is_empty(), "input must contain at least one item");
        let blocks = items
            .chunks(per_block)
            .map(|c| c.to_vec())
            .collect::<Vec<_>>();
        VecSource::new(blocks)
    }
}

impl<I: Clone + Send + Sync + 'static> InputSource for VecSource<I> {
    type Item = I;

    fn splits(&self) -> Vec<SplitMeta> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| SplitMeta {
                index: i,
                records: b.len() as u64,
                bytes: 0,
                locations: self.locations[i].clone(),
            })
            .collect()
    }

    fn read_split(&self, index: usize, sampling_ratio: f64, seed: u64) -> Result<SampledItems<I>> {
        let block = &self.blocks[index];
        let items = sample_systematic(block, sampling_ratio, seed);
        Ok(SampledItems {
            total: block.len() as u64,
            sampled: items.len() as u64,
            items,
        })
    }
}

/// A generator-backed source: splits are produced on demand by a
/// function, so synthetic inputs can be arbitrarily large. The generator
/// must be deterministic per index (straggler duplicates re-read splits).
pub struct FnSource<I, F> {
    metas: Vec<SplitMeta>,
    generator: F,
    _marker: std::marker::PhantomData<fn() -> I>,
}

impl<I, F> FnSource<I, F>
where
    F: Fn(usize) -> Vec<I> + Send + Sync,
{
    /// Creates a source over the given split metadata; `generator(i)`
    /// materialises the records of split `i`.
    ///
    /// # Panics
    ///
    /// Panics if `metas` is empty.
    pub fn new(metas: Vec<SplitMeta>, generator: F) -> Self {
        assert!(!metas.is_empty(), "input must contain at least one split");
        FnSource {
            metas,
            generator,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<I, F> InputSource for FnSource<I, F>
where
    I: Clone + Send + Sync + 'static,
    F: Fn(usize) -> Vec<I> + Send + Sync,
{
    type Item = I;

    fn splits(&self) -> Vec<SplitMeta> {
        self.metas.clone()
    }

    fn read_split(&self, index: usize, sampling_ratio: f64, seed: u64) -> Result<SampledItems<I>> {
        let block = (self.generator)(index);
        let items = sample_systematic(&block, sampling_ratio, seed);
        Ok(SampledItems {
            total: block.len() as u64,
            sampled: items.len() as u64,
            items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_splits_and_reads() {
        let src = VecSource::new(vec![vec![1, 2, 3], vec![4, 5]]);
        let splits = src.splits();
        assert_eq!(splits.len(), 2);
        assert_eq!(splits[0].records, 3);
        assert_eq!(splits[1].records, 2);
        let read = src.read_split(0, 1.0, 0).unwrap();
        assert_eq!(read.items, vec![1, 2, 3]);
        assert_eq!(read.total, 3);
        assert_eq!(read.sampled, 3);
    }

    #[test]
    fn vec_source_sampling_counts() {
        let src = VecSource::new(vec![(0..1000).collect::<Vec<i32>>()]);
        let read = src.read_split(0, 0.1, 7).unwrap();
        assert_eq!(read.total, 1000);
        assert_eq!(read.sampled, 100);
        assert_eq!(read.items.len(), 100);
        // Systematic: consecutive sampled items are 10 apart.
        assert_eq!(read.items[1] - read.items[0], 10);
        // Reproducible for the same seed, shifted for another.
        let again = src.read_split(0, 0.1, 7).unwrap();
        assert_eq!(read.items, again.items);
    }

    #[test]
    fn from_items_chunks_correctly() {
        let src = VecSource::from_items((0..25).collect(), 10);
        let splits = src.splits();
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[2].records, 5);
    }

    #[test]
    fn fn_source_generates_on_demand() {
        let metas = (0..4)
            .map(|i| SplitMeta {
                index: i,
                records: 10,
                bytes: 100,
                locations: vec![],
            })
            .collect();
        let src = FnSource::new(metas, |i| (0..10).map(|j| i * 100 + j).collect::<Vec<_>>());
        let read = src.read_split(2, 1.0, 0).unwrap();
        assert_eq!(read.items[0], 200);
        assert_eq!(read.sampled, 10);
    }

    #[test]
    fn sample_systematic_full_ratio() {
        let items = vec![1, 2, 3];
        assert_eq!(sample_systematic(&items, 1.0, 0), items);
        assert_eq!(sample_systematic(&items, 2.0, 0), items);
    }

    #[test]
    #[should_panic]
    fn vec_source_rejects_empty() {
        VecSource::<i32>::new(vec![]);
    }
}
