//! Input sources: splits, sampling-aware block readers.
//!
//! Each input split becomes one map task; the split is the *cluster* of
//! the two-stage sampling theory. `read_split` takes the sampling ratio
//! decided by the scheduler for this task and must report both the
//! block's total record count `M_i` and the number of records actually
//! returned `m_i`.

use approxhadoop_ipc::{Decoder, Wire, WireError};
use approxhadoop_stats::sampling::SystematicSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Result, RuntimeError};

/// Identifies one dataset of a (possibly multi-input) job.
///
/// Single-input jobs — every job before tagged inputs existed — live
/// entirely in dataset `0`, which is what [`DatasetId::default`]
/// returns; the scheduler, wire protocol and estimators treat that case
/// exactly as before. Multi-input jobs (joins) tag every split, work
/// item and map output with the dataset it belongs to, so cluster
/// populations `N`/`n` and the Eq. 1–3 intervals stay correct *per
/// dataset*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize)]
pub struct DatasetId(pub u32);

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dataset-{}", self.0)
    }
}

impl Wire for DatasetId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(d: &mut Decoder<'_>) -> std::result::Result<Self, WireError> {
        Ok(DatasetId(u32::decode(d)?))
    }
}

/// Metadata describing one input split (block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMeta {
    /// Split index (= map task id).
    pub index: usize,
    /// The dataset this split belongs to (`DatasetId(0)` for
    /// single-input jobs).
    pub dataset: DatasetId,
    /// Total records `M_i` in the split.
    pub records: u64,
    /// Size in bytes (for timing/energy models; `0` if unknown).
    pub bytes: u64,
    /// Indices of the servers holding a replica (for locality-aware
    /// scheduling; empty if unknown).
    pub locations: Vec<usize>,
}

/// The outcome of reading (and possibly sampling) a split.
#[derive(Debug, Clone)]
pub struct SampledItems<I> {
    /// The sampled items, in block order.
    pub items: Vec<I>,
    /// `M_i` — total records in the split.
    pub total: u64,
    /// `m_i` — records returned (equals `items.len()`).
    pub sampled: u64,
}

/// A streaming view of one (possibly sampled) split: the counts are
/// known up front, the records are yielded lazily so sources can avoid
/// materialising or cloning whole blocks on the hot path.
pub struct SplitStream<'a, I> {
    /// `M_i` — total records in the split.
    pub total: u64,
    /// `m_i` — records the iterator will yield.
    pub sampled: u64,
    iter: Box<dyn Iterator<Item = I> + Send + 'a>,
}

impl<'a, I> SplitStream<'a, I> {
    /// Wraps an iterator with its split counts. `sampled` must equal the
    /// number of items `iter` yields.
    pub fn new(total: u64, sampled: u64, iter: impl Iterator<Item = I> + Send + 'a) -> Self {
        SplitStream {
            total,
            sampled,
            iter: Box::new(iter),
        }
    }
}

impl<I: Send + 'static> SplitStream<'static, I> {
    /// Adapts an already-materialised [`SampledItems`] read.
    pub fn from_items(read: SampledItems<I>) -> Self {
        SplitStream::new(read.total, read.sampled, read.items.into_iter())
    }
}

impl<I> Iterator for SplitStream<'_, I> {
    type Item = I;

    fn next(&mut self) -> Option<I> {
        self.iter.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

impl<I> std::fmt::Debug for SplitStream<'_, I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplitStream")
            .field("total", &self.total)
            .field("sampled", &self.sampled)
            .finish_non_exhaustive()
    }
}

/// A source of input splits for a job.
///
/// Implementations must be shareable across task-tracker threads.
pub trait InputSource: Send + Sync {
    /// The record type produced.
    type Item: Send + 'static;

    /// Describes every split of the input. Called once at job start.
    fn splits(&self) -> Vec<SplitMeta>;

    /// Reads split `index`, sampling records at `sampling_ratio`
    /// (`1.0` = precise). `seed` makes the sample reproducible per task
    /// attempt. Implementations should use *systematic* sampling (every
    /// k-th record from a random offset), like the paper's
    /// `ApproxTextInputFormat`.
    fn read_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SampledItems<Self::Item>>;

    /// Streaming form of [`read_split`](InputSource::read_split): yields
    /// the same records in the same order without requiring callers to
    /// hold the whole sampled vector. The engine's hot path uses this;
    /// the default delegates to `read_split`, and sources override it to
    /// skip the extra clone/materialisation.
    fn stream_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SplitStream<'_, Self::Item>> {
        let read = self.read_split(index, sampling_ratio, seed)?;
        Ok(SplitStream::from_items(read))
    }
}

/// Computes the systematic-sample indices for a block of `total` records
/// at `ratio`: `None` means "keep every record" (`ratio >= 1.0`), so
/// precise reads never touch an index vector.
///
/// `ratio` must lie in `(0, 1]`; `0`, negatives and NaN are programming
/// errors (the `JobConfig`/CLI boundary validates user input), checked by
/// `debug_assert` here and by the sampler's own assertion in release.
pub fn sample_systematic_indices(total: usize, ratio: f64, seed: u64) -> Option<Vec<usize>> {
    debug_assert!(
        ratio > 0.0 && ratio <= 1.0,
        "sampling ratio must be in (0, 1], got {ratio}"
    );
    if ratio >= 1.0 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = SystematicSampler::from_ratio(ratio);
    Some(sampler.sample_indices(&mut rng, total))
}

/// Samples `items` systematically at `ratio`, returning the sampled
/// subset; keeps everything at `ratio >= 1.0`. Utility for implementing
/// [`InputSource::read_split`]. Same ratio contract as
/// [`sample_systematic_indices`].
pub fn sample_systematic<I: Clone>(items: &[I], ratio: f64, seed: u64) -> Vec<I> {
    match sample_systematic_indices(items.len(), ratio, seed) {
        None => items.to_vec(),
        Some(idx) => idx.into_iter().map(|i| items[i].clone()).collect(),
    }
}

/// In-memory input source: one `Vec` of items per split. The workhorse of
/// unit tests and small jobs.
#[derive(Debug, Clone)]
pub struct VecSource<I> {
    blocks: Vec<Vec<I>>,
    locations: Vec<Vec<usize>>,
}

impl<I: Clone + Send + Sync> VecSource<I> {
    /// Creates a source with one split per inner vector.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty. Use [`VecSource::try_new`] where the
    /// blocks come from an untrusted boundary (a worker's dataset table,
    /// a decoded job spec) and a panic would abort the process mid-job.
    pub fn new(blocks: Vec<Vec<I>>) -> Self {
        Self::try_new(blocks).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`VecSource::new`]: rejects empty inputs with
    /// [`RuntimeError::InvalidJob`] instead of panicking.
    pub fn try_new(blocks: Vec<Vec<I>>) -> Result<Self> {
        if blocks.is_empty() {
            return Err(RuntimeError::InvalidJob {
                reason: "input must contain at least one block".into(),
            });
        }
        let locations = vec![Vec::new(); blocks.len()];
        Ok(VecSource { blocks, locations })
    }

    /// Attaches replica locations (parallel to the blocks).
    ///
    /// # Panics
    ///
    /// Panics if `locations.len() != blocks.len()`. See
    /// [`VecSource::try_with_locations`].
    pub fn with_locations(self, locations: Vec<Vec<usize>>) -> Self {
        self.try_with_locations(locations)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`VecSource::with_locations`].
    pub fn try_with_locations(mut self, locations: Vec<Vec<usize>>) -> Result<Self> {
        if locations.len() != self.blocks.len() {
            return Err(RuntimeError::InvalidJob {
                reason: format!(
                    "locations table has {} entries for {} blocks",
                    locations.len(),
                    self.blocks.len()
                ),
            });
        }
        self.locations = locations;
        Ok(self)
    }

    /// Flattens a list of items into equal-size blocks of `per_block`.
    ///
    /// # Panics
    ///
    /// Panics if `per_block == 0` or `items` is empty. See
    /// [`VecSource::try_from_items`].
    pub fn from_items(items: Vec<I>, per_block: usize) -> Self {
        Self::try_from_items(items, per_block).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`VecSource::from_items`].
    pub fn try_from_items(items: Vec<I>, per_block: usize) -> Result<Self> {
        if per_block == 0 {
            return Err(RuntimeError::InvalidJob {
                reason: "per_block must be positive".into(),
            });
        }
        if items.is_empty() {
            return Err(RuntimeError::InvalidJob {
                reason: "input must contain at least one item".into(),
            });
        }
        let blocks = items
            .chunks(per_block)
            .map(|c| c.to_vec())
            .collect::<Vec<_>>();
        VecSource::try_new(blocks)
    }
}

impl<I: Clone + Send + Sync + 'static> InputSource for VecSource<I> {
    type Item = I;

    fn splits(&self) -> Vec<SplitMeta> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| SplitMeta {
                index: i,
                dataset: DatasetId::default(),
                records: b.len() as u64,
                bytes: 0,
                locations: self.locations[i].clone(),
            })
            .collect()
    }

    fn read_split(&self, index: usize, sampling_ratio: f64, seed: u64) -> Result<SampledItems<I>> {
        let block = &self.blocks[index];
        let items = sample_systematic(block, sampling_ratio, seed);
        Ok(SampledItems {
            total: block.len() as u64,
            sampled: items.len() as u64,
            items,
        })
    }

    fn stream_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SplitStream<'_, I>> {
        let block = &self.blocks[index];
        let total = block.len() as u64;
        Ok(
            match sample_systematic_indices(block.len(), sampling_ratio, seed) {
                // Precise read: iterate the block in place, no index vector,
                // no second materialisation.
                None => SplitStream::new(total, total, block.iter().cloned()),
                Some(idx) => {
                    let sampled = idx.len() as u64;
                    SplitStream::new(
                        total,
                        sampled,
                        idx.into_iter().map(move |i| block[i].clone()),
                    )
                }
            },
        )
    }
}

/// A generator-backed source: splits are produced on demand by a
/// function, so synthetic inputs can be arbitrarily large. The generator
/// must be deterministic per index (straggler duplicates re-read splits).
pub struct FnSource<I, F> {
    metas: Vec<SplitMeta>,
    generator: F,
    _marker: std::marker::PhantomData<fn() -> I>,
}

impl<I, F> FnSource<I, F>
where
    F: Fn(usize) -> Vec<I> + Send + Sync,
{
    /// Creates a source over the given split metadata; `generator(i)`
    /// materialises the records of split `i`.
    ///
    /// # Panics
    ///
    /// Panics if `metas` is empty. See [`FnSource::try_new`].
    pub fn new(metas: Vec<SplitMeta>, generator: F) -> Self {
        Self::try_new(metas, generator).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FnSource::new`].
    pub fn try_new(metas: Vec<SplitMeta>, generator: F) -> Result<Self> {
        if metas.is_empty() {
            return Err(RuntimeError::InvalidJob {
                reason: "input must contain at least one split".into(),
            });
        }
        Ok(FnSource {
            metas,
            generator,
            _marker: std::marker::PhantomData,
        })
    }
}

impl<I, F> InputSource for FnSource<I, F>
where
    I: Clone + Send + Sync + 'static,
    F: Fn(usize) -> Vec<I> + Send + Sync,
{
    type Item = I;

    fn splits(&self) -> Vec<SplitMeta> {
        self.metas.clone()
    }

    fn read_split(&self, index: usize, sampling_ratio: f64, seed: u64) -> Result<SampledItems<I>> {
        let block = (self.generator)(index);
        let items = sample_systematic(&block, sampling_ratio, seed);
        Ok(SampledItems {
            total: block.len() as u64,
            sampled: items.len() as u64,
            items,
        })
    }

    fn stream_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SplitStream<'_, I>> {
        let block = (self.generator)(index);
        let total = block.len() as u64;
        Ok(
            match sample_systematic_indices(block.len(), sampling_ratio, seed) {
                // Precise read: move records out of the generated block
                // instead of sampling-by-clone.
                None => SplitStream::new(total, total, block.into_iter()),
                Some(idx) => {
                    let sampled = idx.len() as u64;
                    let mut keep = idx.into_iter().peekable();
                    let iter = block.into_iter().enumerate().filter_map(move |(i, item)| {
                        if keep.peek() == Some(&i) {
                            keep.next();
                            Some(item)
                        } else {
                            None
                        }
                    });
                    SplitStream::new(total, sampled, iter)
                }
            },
        )
    }
}

/// A boxed, object-safe input source — the element of a
/// [`TaggedSource`]'s dataset table.
pub type BoxedSource<I> = Box<dyn InputSource<Item = I> + 'static>;

/// Combines several [`InputSource`]s into one multi-dataset input whose
/// records are `(DatasetId, item)` pairs.
///
/// Splits of the member sources are flattened into a single global split
/// index space, in dataset order: dataset `0`'s splits first, then
/// dataset `1`'s, and so on. Each flattened [`SplitMeta`] carries its
/// [`DatasetId`], so the scheduler and estimators can keep per-dataset
/// cluster populations (`N_d`, `n_d`) without any extra plumbing — a
/// split remains exactly one cluster of exactly one dataset.
pub struct TaggedSource<I> {
    sources: Vec<BoxedSource<I>>,
    /// Global split index → (dataset, local split index).
    table: Vec<(DatasetId, usize)>,
    metas: Vec<SplitMeta>,
}

impl<I: Send + 'static> TaggedSource<I> {
    /// Builds the tagged union of `sources`; dataset `d` is
    /// `sources[d]`. Rejects an empty source list and member sources
    /// without splits ([`RuntimeError::InvalidJob`]), so a malformed
    /// dataset table surfaces as a job error rather than a panic.
    pub fn try_new(sources: Vec<BoxedSource<I>>) -> Result<Self> {
        if sources.is_empty() {
            return Err(RuntimeError::InvalidJob {
                reason: "multi-input job must have at least one dataset".into(),
            });
        }
        if sources.len() > u32::MAX as usize {
            return Err(RuntimeError::InvalidJob {
                reason: "too many datasets".into(),
            });
        }
        let mut table = Vec::new();
        let mut metas = Vec::new();
        for (d, src) in sources.iter().enumerate() {
            let dataset = DatasetId(d as u32);
            let local = src.splits();
            if local.is_empty() {
                return Err(RuntimeError::InvalidJob {
                    reason: format!("{dataset} has no splits"),
                });
            }
            for (li, m) in local.into_iter().enumerate() {
                table.push((dataset, li));
                metas.push(SplitMeta {
                    index: metas.len(),
                    dataset,
                    records: m.records,
                    bytes: m.bytes,
                    locations: m.locations,
                });
            }
        }
        Ok(TaggedSource {
            sources,
            table,
            metas,
        })
    }

    /// Infallible form of [`TaggedSource::try_new`] for trusted callers.
    ///
    /// # Panics
    ///
    /// Panics on an empty source list or an empty member source.
    pub fn new(sources: Vec<BoxedSource<I>>) -> Self {
        Self::try_new(sources).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of member datasets.
    pub fn dataset_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of splits contributed by dataset `d` (0 if out of range).
    pub fn splits_of(&self, d: DatasetId) -> usize {
        self.table.iter().filter(|(ds, _)| *ds == d).count()
    }
}

impl<I: Send + 'static> InputSource for TaggedSource<I> {
    type Item = (DatasetId, I);

    fn splits(&self) -> Vec<SplitMeta> {
        self.metas.clone()
    }

    fn read_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SampledItems<(DatasetId, I)>> {
        let (dataset, local) = self.table[index];
        let read = self.sources[dataset.0 as usize].read_split(local, sampling_ratio, seed)?;
        Ok(SampledItems {
            total: read.total,
            sampled: read.sampled,
            items: read.items.into_iter().map(|i| (dataset, i)).collect(),
        })
    }

    fn stream_split(
        &self,
        index: usize,
        sampling_ratio: f64,
        seed: u64,
    ) -> Result<SplitStream<'_, (DatasetId, I)>> {
        let (dataset, local) = self.table[index];
        let inner = self.sources[dataset.0 as usize].stream_split(local, sampling_ratio, seed)?;
        Ok(SplitStream::new(
            inner.total,
            inner.sampled,
            inner.map(move |i| (dataset, i)),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_splits_and_reads() {
        let src = VecSource::new(vec![vec![1, 2, 3], vec![4, 5]]);
        let splits = src.splits();
        assert_eq!(splits.len(), 2);
        assert_eq!(splits[0].records, 3);
        assert_eq!(splits[1].records, 2);
        let read = src.read_split(0, 1.0, 0).unwrap();
        assert_eq!(read.items, vec![1, 2, 3]);
        assert_eq!(read.total, 3);
        assert_eq!(read.sampled, 3);
    }

    #[test]
    fn vec_source_sampling_counts() {
        let src = VecSource::new(vec![(0..1000).collect::<Vec<i32>>()]);
        let read = src.read_split(0, 0.1, 7).unwrap();
        assert_eq!(read.total, 1000);
        assert_eq!(read.sampled, 100);
        assert_eq!(read.items.len(), 100);
        // Systematic: consecutive sampled items are 10 apart.
        assert_eq!(read.items[1] - read.items[0], 10);
        // Reproducible for the same seed, shifted for another.
        let again = src.read_split(0, 0.1, 7).unwrap();
        assert_eq!(read.items, again.items);
    }

    #[test]
    fn from_items_chunks_correctly() {
        let src = VecSource::from_items((0..25).collect(), 10);
        let splits = src.splits();
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[2].records, 5);
    }

    #[test]
    fn fn_source_generates_on_demand() {
        let metas = (0..4)
            .map(|i| SplitMeta {
                index: i,
                dataset: DatasetId::default(),
                records: 10,
                bytes: 100,
                locations: vec![],
            })
            .collect();
        let src = FnSource::new(metas, |i| (0..10).map(|j| i * 100 + j).collect::<Vec<_>>());
        let read = src.read_split(2, 1.0, 0).unwrap();
        assert_eq!(read.items[0], 200);
        assert_eq!(read.sampled, 10);
    }

    #[test]
    fn sample_systematic_full_ratio() {
        let items = vec![1, 2, 3];
        assert_eq!(sample_systematic(&items, 1.0, 0), items);
        assert_eq!(sample_systematic_indices(items.len(), 1.0, 0), None);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "sampling ratio must be in (0, 1]")]
    fn sample_systematic_rejects_zero_ratio() {
        // Regression: ratio 0 used to be silently clamped to 1e-9,
        // turning a typo into a near-empty sample with garbage bounds.
        sample_systematic(&[1, 2, 3], 0.0, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "sampling ratio must be in (0, 1]")]
    fn sample_systematic_rejects_nan_ratio() {
        sample_systematic(&[1, 2, 3], f64::NAN, 0);
    }

    #[test]
    fn stream_split_matches_read_split() {
        let src = VecSource::new(vec![(0..1000).collect::<Vec<i32>>()]);
        for &(ratio, seed) in &[(1.0, 0), (0.1, 7), (0.37, 13), (0.003, 99)] {
            let read = src.read_split(0, ratio, seed).unwrap();
            let stream = src.stream_split(0, ratio, seed).unwrap();
            assert_eq!(stream.total, read.total);
            assert_eq!(stream.sampled, read.sampled);
            let streamed: Vec<i32> = stream.collect();
            assert_eq!(streamed, read.items, "ratio {ratio} seed {seed}");
        }
    }

    #[test]
    fn fn_source_stream_matches_read() {
        let metas = (0..3)
            .map(|i| SplitMeta {
                index: i,
                dataset: DatasetId::default(),
                records: 50,
                bytes: 0,
                locations: vec![],
            })
            .collect();
        let src = FnSource::new(metas, |i| (0..50).map(|j| i * 100 + j).collect::<Vec<_>>());
        for &(ratio, seed) in &[(1.0, 0), (0.2, 5), (0.5, 42)] {
            let read = src.read_split(1, ratio, seed).unwrap();
            let stream = src.stream_split(1, ratio, seed).unwrap();
            assert_eq!(stream.sampled, read.sampled);
            assert_eq!(stream.collect::<Vec<_>>(), read.items);
        }
    }

    #[test]
    #[should_panic]
    fn vec_source_rejects_empty() {
        VecSource::<i32>::new(vec![]);
    }

    #[test]
    fn try_constructors_reject_bad_input_without_panicking() {
        assert!(VecSource::<i32>::try_new(vec![]).is_err());
        assert!(VecSource::<i32>::try_from_items(vec![], 4).is_err());
        assert!(VecSource::<i32>::try_from_items(vec![1], 0).is_err());
        assert!(VecSource::new(vec![vec![1, 2]])
            .try_with_locations(vec![vec![0], vec![1]])
            .is_err());
        assert!(FnSource::<i32, _>::try_new(vec![], |_| vec![]).is_err());
        // The happy paths behave exactly like the panicking constructors.
        let src = VecSource::try_from_items((0..25).collect::<Vec<i32>>(), 10).unwrap();
        assert_eq!(src.splits().len(), 3);
        let src = src
            .try_with_locations(vec![vec![0], vec![1], vec![2]])
            .unwrap();
        assert_eq!(src.splits()[1].locations, vec![1]);
    }

    #[test]
    fn tagged_source_flattens_and_tags() {
        let logs = VecSource::new(vec![vec![10, 11, 12], vec![20, 21]]);
        let meta = VecSource::new(vec![vec![90]]);
        let src = TaggedSource::try_new(vec![Box::new(logs), Box::new(meta)]).unwrap();
        assert_eq!(src.dataset_count(), 2);
        assert_eq!(src.splits_of(DatasetId(0)), 2);
        assert_eq!(src.splits_of(DatasetId(1)), 1);
        let splits = src.splits();
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[0].dataset, DatasetId(0));
        assert_eq!(splits[2].dataset, DatasetId(1));
        // Global indices are contiguous and self-describing.
        for (i, s) in splits.iter().enumerate() {
            assert_eq!(s.index, i);
        }
        let read = src.read_split(1, 1.0, 0).unwrap();
        assert_eq!(read.items, vec![(DatasetId(0), 20), (DatasetId(0), 21)]);
        let read = src.read_split(2, 1.0, 0).unwrap();
        assert_eq!(read.items, vec![(DatasetId(1), 90)]);
        // Streaming agrees with the materialised read, sampled included.
        let big = VecSource::new(vec![(0..500).collect::<Vec<i32>>()]);
        let src = TaggedSource::new(vec![Box::new(big)]);
        let read = src.read_split(0, 0.2, 9).unwrap();
        let stream = src.stream_split(0, 0.2, 9).unwrap();
        assert_eq!(stream.total, read.total);
        assert_eq!(stream.sampled, read.sampled);
        assert_eq!(stream.collect::<Vec<_>>(), read.items);
    }

    #[test]
    fn tagged_source_rejects_malformed_tables() {
        assert!(TaggedSource::<i32>::try_new(vec![]).is_err());
        let ok = VecSource::new(vec![vec![1]]);
        let empty = FnSource::<i32, _>::new(
            vec![SplitMeta {
                index: 0,
                dataset: DatasetId::default(),
                records: 0,
                bytes: 0,
                locations: vec![],
            }],
            |_| vec![],
        );
        // A member source is fine as long as it has splits…
        assert!(
            TaggedSource::try_new(vec![Box::new(ok) as BoxedSource<i32>, Box::new(empty)]).is_ok()
        );
    }

    #[test]
    fn dataset_id_wire_roundtrip() {
        for id in [DatasetId(0), DatasetId(1), DatasetId(u32::MAX)] {
            let bytes = id.to_bytes();
            assert_eq!(DatasetId::from_bytes(&bytes).unwrap(), id);
        }
        let pair = (DatasetId(3), String::from("page"));
        let bytes = pair.to_bytes();
        assert_eq!(<(DatasetId, String)>::from_bytes(&bytes).unwrap(), pair);
    }
}
