//! Core key/value/task types of the engine, plus the fixed-key hash
//! primitives the hot path is built on.

use std::fmt::Debug;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Marker trait for intermediate keys: hashable (for partitioning),
/// orderable (for deterministic grouped output), cloneable, and sendable
/// across task-tracker threads. Blanket-implemented.
pub trait Key: Eq + Hash + Ord + Clone + Send + Sync + Debug + 'static {}
impl<T: Eq + Hash + Ord + Clone + Send + Sync + Debug + 'static> Key for T {}

/// Marker trait for intermediate values. Blanket-implemented.
pub trait Value: Clone + Send + Sync + Debug + 'static {}
impl<T: Clone + Send + Sync + Debug + 'static> Value for T {}

/// Identifier of a map task — equal to the index of the input split it
/// processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize)]
pub struct TaskId(pub usize);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "map_{:06}", self.0)
    }
}

/// Multiplier for the Fx-style folded hash (golden-ratio derived, odd).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The engine's fixed-key hasher: a Fibonacci/Fx-style multiply hash.
///
/// Chosen over `DefaultHasher` (SipHash-1-3) because the hot path builds
/// one hasher per emitted pair: construction is a single zeroed word,
/// [`Hasher::write`] folds input 8 bytes at a time (the byte-slice fast
/// path `String`/`&str` keys take, via `str`'s `Hash` impl), and there is
/// no per-instance random state — the same key hashes identically across
/// runs, threads, and worker processes, which the deterministic
/// partitioner and the spill-run format both rely on.
///
/// Not DoS-resistant by design; intermediate keys come from the job's own
/// mapper, not from untrusted network input.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // The try_into cannot fail: chunks_exact yields 8-byte slices.
            self.fold(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            // Pad the tail with its own length so "a" and "a\0" differ.
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            word[7] = tail.len() as u8;
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The multiply pushes entropy towards the high bits; fold them
        // back down so users of the low bits (`% partitions`, hash-table
        // bucket indices) see a mixed value.
        self.hash ^ (self.hash >> 32)
    }
}

/// `BuildHasher` for [`FxHasher`] — zero-sized, deterministic.
pub type BuildFxHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the engine's fixed-key [`FxHasher`]: iteration
/// order is unspecified (drain and sort before anything order-sensitive),
/// but lookups are deterministic and allocation-free per probe.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildFxHasher>;

/// The engine's fixed-key hash of `key` — one [`FxHasher`] pass. The
/// hot path computes this once per emission and reuses it for both the
/// reduce partition (low bits via [`Partitioner::partition_of_hash`])
/// and the combine-table probe, instead of hashing the key twice.
#[inline]
pub fn fx_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// Deterministic partitioner: maps a key to one of `partitions` reduce
/// tasks using the fixed-key [`FxHasher`], so results are reproducible
/// across runs and processes.
#[inline]
pub fn partition_for<K: Hash + ?Sized>(key: &K, partitions: usize) -> usize {
    Partitioner::new(partitions).partition(key)
}

/// The reusable form of [`partition_for`]: constructed once per map
/// attempt, it carries the partition count so the per-pair work is just
/// the hash fold itself.
#[derive(Debug, Clone, Copy)]
pub struct Partitioner {
    partitions: usize,
    /// `partitions - 1` when `partitions` is a power of two, else 0.
    /// For power-of-two counts `hash & mask == hash % partitions`
    /// bit-for-bit, so the common case (e.g. 4 reducers) skips the
    /// hardware divide without changing a single assignment.
    mask: u64,
}

impl Partitioner {
    /// A partitioner over `partitions` reduce tasks.
    #[inline]
    pub fn new(partitions: usize) -> Self {
        debug_assert!(partitions > 0);
        let mask = if partitions.is_power_of_two() {
            partitions as u64 - 1
        } else {
            0
        };
        Partitioner { partitions, mask }
    }

    /// Number of reduce partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The reduce partition for `key`.
    #[inline]
    pub fn partition<K: Hash + ?Sized>(&self, key: &K) -> usize {
        self.partition_of_hash(fx_hash(key))
    }

    /// The reduce partition for a key whose [`fx_hash`] is already
    /// known — the form the map hot path uses, sharing one hash between
    /// partitioning and the combine-table probe.
    #[inline]
    pub fn partition_of_hash(&self, hash: u64) -> usize {
        if self.mask != 0 {
            (hash & self.mask) as usize
        } else {
            (hash % self.partitions as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_is_deterministic_and_in_range() {
        for k in 0..1000u64 {
            let p = partition_for(&k, 7);
            assert!(p < 7);
            assert_eq!(p, partition_for(&k, 7));
            assert_eq!(p, Partitioner::new(7).partition(&k));
        }
    }

    #[test]
    fn partitioner_spreads_keys() {
        let mut counts = vec![0usize; 8];
        for k in 0..8000u64 {
            counts[partition_for(&k, 8)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "unbalanced partitioning: {counts:?}");
        }
    }

    #[test]
    fn partitioner_spreads_string_keys() {
        let mut counts = vec![0usize; 8];
        for k in 0..8000u32 {
            counts[partition_for(&format!("w{k}"), 8)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "unbalanced string partitioning: {counts:?}");
        }
    }

    #[test]
    fn string_and_str_keys_hash_identically() {
        // `String` hashes through `str::hash`, so owned and borrowed
        // forms of the same word must land on the same partition.
        for w in ["", "a", "shuffle", "0123456789abcdef"] {
            assert_eq!(partition_for(w, 13), partition_for(&w.to_string(), 13));
        }
    }

    /// Pins the hash algorithm: these values must never change, or
    /// partition assignments would silently shift between engine
    /// versions (breaking e.g. cross-version comparison of recorded
    /// per-partition outputs).
    #[test]
    fn fx_hash_values_are_pinned() {
        fn hash_of<K: Hash + ?Sized>(key: &K) -> u64 {
            let mut h = FxHasher::default();
            key.hash(&mut h);
            h.finish()
        }
        assert_eq!(hash_of("the"), 0x1771_ff9d_9514_8e6e);
        assert_eq!(hash_of(&42u64), 0x5e77_c80c_35e2_747e);
        assert_eq!(hash_of(&(1u32, 2u32)), 0x6a4b_e67f_93c4_4db7);
    }

    #[test]
    fn mask_fast_path_matches_modulo() {
        // The power-of-two mask must be indistinguishable from the
        // general modulo — same hash, same assignment.
        fn hash_of<K: Hash + ?Sized>(key: &K) -> u64 {
            let mut h = FxHasher::default();
            key.hash(&mut h);
            h.finish()
        }
        for partitions in [1usize, 2, 4, 8, 64] {
            let p = Partitioner::new(partitions);
            for k in 0..500u64 {
                let key = format!("key{k}");
                assert_eq!(
                    p.partition(&key),
                    (hash_of(&key) % partitions as u64) as usize,
                    "partitions {partitions} key {key}"
                );
            }
        }
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(42).to_string(), "map_000042");
    }
}
