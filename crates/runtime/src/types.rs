//! Core key/value/task types of the engine.

use std::fmt::Debug;
use std::hash::{Hash, Hasher};

/// Marker trait for intermediate keys: hashable (for partitioning),
/// orderable (for deterministic grouped output), cloneable, and sendable
/// across task-tracker threads. Blanket-implemented.
pub trait Key: Eq + Hash + Ord + Clone + Send + Sync + Debug + 'static {}
impl<T: Eq + Hash + Ord + Clone + Send + Sync + Debug + 'static> Key for T {}

/// Marker trait for intermediate values. Blanket-implemented.
pub trait Value: Clone + Send + Sync + Debug + 'static {}
impl<T: Clone + Send + Sync + Debug + 'static> Value for T {}

/// Identifier of a map task — equal to the index of the input split it
/// processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize)]
pub struct TaskId(pub usize);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "map_{:06}", self.0)
    }
}

/// Deterministic partitioner: maps a key to one of `partitions` reduce
/// tasks using a fixed-key hash, so results are reproducible across runs
/// and processes.
pub fn partition_for<K: Hash>(key: &K, partitions: usize) -> usize {
    debug_assert!(partitions > 0);
    // DefaultHasher::new() uses fixed SipHash keys: stable across runs.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_is_deterministic_and_in_range() {
        for k in 0..1000u64 {
            let p = partition_for(&k, 7);
            assert!(p < 7);
            assert_eq!(p, partition_for(&k, 7));
        }
    }

    #[test]
    fn partitioner_spreads_keys() {
        let mut counts = vec![0usize; 8];
        for k in 0..8000u64 {
            counts[partition_for(&k, 8)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "unbalanced partitioning: {counts:?}");
        }
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(42).to_string(), "map_000042");
    }
}
