//! Worker binary for the runtime crate's own process-backend tests.
//!
//! Registers the jobs the differential and spill test suites submit;
//! deployments register their jobs in their own worker binary (see the
//! workspace-level `approx-worker`).

use approxhadoop_ipc::{Decoder, Wire};
use approxhadoop_runtime::combine::{Combined, SumCombiner};
use approxhadoop_runtime::engine::process::{worker_main, JobRegistry};
use approxhadoop_runtime::input::DatasetId;
use approxhadoop_runtime::mapper::{FnMapper, MapTaskContext, Mapper, MultiMapper, TaggedMapper};

/// A mod-8 counting mapper that aborts the whole worker process when it
/// starts the attempt named in its params — the test harness's stand-in
/// for a worker crash (OOM kill, segfault) mid-attempt.
struct CrashingMapper {
    task: u64,
    attempt: u32,
}

impl Mapper for CrashingMapper {
    type Item = u32;
    type Key = u8;
    type Value = u64;
    type TaskState = ();

    fn begin_task(&self, ctx: &MapTaskContext) -> Self::TaskState {
        if ctx.task.0 as u64 == self.task && ctx.attempt == self.attempt {
            std::process::abort();
        }
    }

    fn map(&self, _state: &mut (), item: u32, emit: &mut dyn FnMut(u8, u64)) {
        emit((item % 8) as u8, 1);
    }
}

/// The tagged two-dataset differential's mapper: fact rows (dataset 0)
/// count one event each, dimension rows (any other dataset) contribute a
/// small deterministic weight, so the reduce output is sensitive to both
/// the tags and the per-dataset sampling decisions.
///
/// Must stay byte-for-byte in sync with the copy in the runtime crate's
/// `executor_equivalence` test, which runs the identical job on the
/// in-process backends.
struct TagWeigh;

impl MultiMapper for TagWeigh {
    type Item = u32;
    type Key = u8;
    type Value = u64;
    type TaskState = ();

    fn begin_task(&self, _ctx: &MapTaskContext) -> Self::TaskState {}

    fn map(&self, _state: &mut (), dataset: DatasetId, item: u32, emit: &mut dyn FnMut(u8, u64)) {
        match dataset.0 {
            0 => emit((item % 8) as u8, 1),
            _ => emit((item % 8) as u8, 1_000 + u64::from(item % 7)),
        }
    }
}

fn main() {
    let mut registry = JobRegistry::new();

    // The fault-injection differential: count values mod 8.
    registry.register("mod8-count", |_params: &[u8]| {
        Ok(FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u64)| {
            emit((*v % 8) as u8, 1)
        }))
    });

    // The precise differential: everything onto one key.
    registry.register("sum-all", |_params: &[u8]| {
        Ok(FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u64)| {
            emit(0, *v as u64)
        }))
    });

    // Combining variant, exercising the sorted-run merge on spill.
    registry.register("mod8-count-combined", |_params: &[u8]| {
        Ok(Combined::new(
            FnMapper::new(|v: &u32, emit: &mut dyn FnMut(u8, u64)| emit((*v % 8) as u8, 1)),
            SumCombiner,
        ))
    });

    // Wide pairs: each record emits a ~100-byte string value, so small
    // shuffle budgets force spill runs.
    registry.register("wide-pairs", |_params: &[u8]| {
        Ok(FnMapper::new(
            |v: &u32, emit: &mut dyn FnMut(u32, String)| emit(*v % 16, format!("{v:0>100}")),
        ))
    });

    // The tagged two-dataset differential: records arrive as
    // `(DatasetId, u32)` pairs from a `TaggedSource`, routed through one
    // `MultiMapper` that weighs the datasets differently.
    registry.register("tagged-weigh", |_params: &[u8]| {
        Ok(TaggedMapper::new(TagWeigh))
    });

    // Worker-crash injection: params = Wire-encoded (task: u64,
    // attempt: u32) at which the worker aborts.
    registry.register("crash-at", |params: &[u8]| {
        let mut d = Decoder::new(params);
        let task = u64::decode(&mut d).map_err(|e| format!("crash-at params: {e}"))?;
        let attempt = u32::decode(&mut d).map_err(|e| format!("crash-at params: {e}"))?;
        Ok(CrashingMapper { task, attempt })
    });

    worker_main(registry);
}
