//! Property-based tests for the statistical substrate.

use approxhadoop_stats::dist::{ContinuousDistribution, Gev, Normal, StudentT};
use approxhadoop_stats::gev::{block_maxima, block_minima};
use approxhadoop_stats::multistage::{ClusterObservation, TwoStageEstimator, WaveStatistics};
use approxhadoop_stats::sampling::{choose_indices, random_order, SystematicSampler, Zipf};
use approxhadoop_stats::special::{inv_reg_inc_beta, reg_inc_beta};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a population of blocks of values.
fn blocks_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0..100.0f64, 1..40), 2..12)
}

proptest! {
    /// A census (all blocks, all items) is exact for any population.
    #[test]
    fn census_is_always_exact(blocks in blocks_strategy()) {
        let truth: f64 = blocks.iter().flatten().sum();
        let mut est = TwoStageEstimator::new(blocks.len() as u64);
        for (i, b) in blocks.iter().enumerate() {
            est.push(ClusterObservation {
                cluster_id: i as u64,
                total_units: b.len() as u64,
                sampled_units: b.len() as u64,
                sum: b.iter().sum(),
                sum_sq: b.iter().map(|v| v * v).sum(),
            });
        }
        let iv = est.estimate(0.95).unwrap();
        prop_assert!((iv.estimate - truth).abs() <= 1e-6 * (1.0 + truth.abs()));
        prop_assert_eq!(iv.half_width, 0.0);
    }

    /// Scaling all values by a constant scales the estimate and the
    /// half-width by |c| (linearity of the estimator).
    #[test]
    fn estimator_is_scale_equivariant(
        blocks in blocks_strategy(),
        c in -5.0..5.0f64,
        keep in 2usize..6,
    ) {
        prop_assume!(c.abs() > 1e-3);
        let n = blocks.len().min(keep);
        let build = |scale: f64| {
            let mut est = TwoStageEstimator::new(blocks.len() as u64);
            for (i, b) in blocks.iter().take(n).enumerate() {
                let m = (b.len() / 2).max(1);
                let vals: Vec<f64> = b[..m].iter().map(|v| v * scale).collect();
                est.push(ClusterObservation {
                    cluster_id: i as u64,
                    total_units: b.len() as u64,
                    sampled_units: m as u64,
                    sum: vals.iter().sum(),
                    sum_sq: vals.iter().map(|v| v * v).sum(),
                });
            }
            est.estimate(0.95).unwrap()
        };
        let base = build(1.0);
        let scaled = build(c);
        let tol = 1e-6 * (1.0 + base.estimate.abs() * c.abs());
        prop_assert!((scaled.estimate - c * base.estimate).abs() <= tol);
        if base.half_width.is_finite() {
            let tol = 1e-6 * (1.0 + base.half_width * c.abs());
            prop_assert!((scaled.half_width - c.abs() * base.half_width).abs() <= tol);
        }
    }

    /// Higher confidence always widens the interval.
    #[test]
    fn interval_widens_with_confidence(blocks in blocks_strategy()) {
        let mut est = TwoStageEstimator::new((blocks.len() + 2) as u64);
        for (i, b) in blocks.iter().enumerate() {
            let m = (b.len() / 2).max(1);
            est.push(ClusterObservation {
                cluster_id: i as u64,
                total_units: b.len() as u64,
                sampled_units: m as u64,
                sum: b[..m].iter().sum(),
                sum_sq: b[..m].iter().map(|v| v * v).sum(),
            });
        }
        let lo = est.estimate(0.80).unwrap();
        let hi = est.estimate(0.99).unwrap();
        prop_assert!(hi.half_width >= lo.half_width);
    }

    /// The predicted bound (planner input) shrinks when either more
    /// clusters run precisely or more units are sampled per cluster.
    #[test]
    fn predicted_bound_is_monotone(
        su in 0.1..1e4f64,
        within in 0.1..1e3f64,
        n1 in 2u64..20,
        extra in 1u64..50,
    ) {
        let w = WaveStatistics {
            total_clusters: 100,
            completed_clusters: n1,
            inter_cluster_var: su,
            mean_cluster_size: 1000.0,
            mean_within_var: within,
            completed_within_term: 0.0,
            estimate: 1e6,
        };
        let full = w.predicted_bound(extra, 1000.0, 0.95);
        let more = w.predicted_bound(extra + 5, 1000.0, 0.95);
        prop_assert!(more <= full + 1e-9);
        let coarse = w.predicted_bound(extra, 10.0, 0.95);
        prop_assert!(full <= coarse + 1e-9);
    }

    /// Student-t: quantile is monotone in p and symmetric about 0.5.
    #[test]
    fn student_t_quantile_monotone_symmetric(df in 1.0..200.0f64, p in 0.01..0.49f64) {
        let t = StudentT::new(df);
        prop_assert!(t.quantile(p) < t.quantile(p + 0.02));
        prop_assert!((t.quantile(p) + t.quantile(1.0 - p)).abs() < 1e-8);
    }

    /// Normal cdf/quantile round-trip for arbitrary parameters.
    #[test]
    fn normal_roundtrip(mean in -100.0..100.0f64, std in 0.01..50.0f64, p in 0.001..0.999f64) {
        let n = Normal::new(mean, std);
        let x = n.quantile(p);
        prop_assert!((n.cdf(x) - p).abs() < 1e-9);
    }

    /// GEV cdf/quantile round-trip across the shape parameter range.
    #[test]
    fn gev_roundtrip(mu in -10.0..10.0f64, sigma in 0.1..10.0f64, xi in -0.8..1.5f64, p in 0.01..0.99f64) {
        let g = Gev::new(mu, sigma, xi);
        let x = g.quantile(p);
        prop_assert!((g.cdf(x) - p).abs() < 1e-8);
    }

    /// Incomplete beta inverse round-trip.
    #[test]
    fn inc_beta_roundtrip(a in 0.2..50.0f64, b in 0.2..50.0f64, p in 0.001..0.999f64) {
        let x = inv_reg_inc_beta(a, b, p);
        prop_assert!((reg_inc_beta(a, b, x) - p).abs() < 1e-7);
    }

    /// Block minima/maxima: outputs are genuine extremes of a partition
    /// covering the input.
    #[test]
    fn block_extremes_bound_input(values in prop::collection::vec(-1e6..1e6f64, 1..200), blocks in 1usize..20) {
        let maxima = block_maxima(&values, blocks);
        let minima = block_minima(&values, blocks);
        let global_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let global_min = values.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(maxima.iter().copied().fold(f64::NEG_INFINITY, f64::max), global_max);
        prop_assert_eq!(minima.iter().copied().fold(f64::INFINITY, f64::min), global_min);
        prop_assert_eq!(maxima.len(), blocks.min(values.len()));
    }

    /// Systematic sampling: deterministic per seed, correct count shape,
    /// indices strictly increasing.
    #[test]
    fn systematic_sampler_properties(total in 1usize..5000, stride in 1usize..100, seed in 0u64..100) {
        let s = SystematicSampler::new(stride);
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = s.sample_indices(&mut rng, total);
        let mut rng2 = StdRng::seed_from_u64(seed);
        prop_assert_eq!(&idx, &s.sample_indices(&mut rng2, total));
        prop_assert!(!idx.is_empty());
        prop_assert!(idx.windows(2).all(|w| w[1] > w[0]));
        prop_assert!(idx.iter().all(|&i| i < total));
        // Count within one of total/stride.
        let expected = total / stride;
        let lower = expected.max(1).saturating_sub(usize::from(expected > 0));
        prop_assert!(idx.len() >= lower);
        prop_assert!(idx.len() <= expected + 1);
    }

    /// choose_indices returns k distinct in-range indices.
    #[test]
    fn choose_indices_properties(n in 1usize..500, k in 0usize..500, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = choose_indices(&mut rng, n, k);
        prop_assert_eq!(idx.len(), k.min(n));
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), idx.len());
        prop_assert!(idx.iter().all(|&i| i < n));
    }

    /// random_order is a permutation.
    #[test]
    fn random_order_is_permutation(n in 0usize..300, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = random_order(&mut rng, n);
        p.sort_unstable();
        prop_assert_eq!(p, (0..n).collect::<Vec<_>>());
    }

    /// Zipf samples stay in range for any exponent/catalogue size.
    #[test]
    fn zipf_in_range(n in 1u64..100_000, s in 0.1..3.0f64, seed in 0u64..20) {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let k = z.sample(&mut rng);
            prop_assert!(k >= 1 && k <= n);
        }
    }
}
