//! Multi-stage cluster sampling estimators (paper Section 3.1).
//!
//! ApproxHadoop maps MapReduce onto two-stage cluster sampling: the input
//! data blocks are the *clusters* (first stage — executing only a subset
//! of map tasks is cluster sampling) and the data items within each block
//! are the *units* (second stage — input data sampling within a block).
//!
//! For a population of `N` clusters where cluster `i` holds `M_i` units,
//! a sample of `n` clusters with `m_i` units sampled from cluster `i`
//! gives the estimated total (paper Eq. 1):
//!
//! ```text
//! τ̂ = (N/n) · Σᵢ (Mᵢ/mᵢ) · Σⱼ vᵢⱼ
//! ```
//!
//! with error bound `ε = t_{n-1, 1-α/2} · sqrt(Var(τ̂))` (Eq. 2) and
//!
//! ```text
//! Var(τ̂) = N(N-n)·s_u²/n + (N/n)·Σᵢ Mᵢ(Mᵢ-mᵢ)·sᵢ²/mᵢ     (Eq. 3)
//! ```
//!
//! The key MapReduce-specific assumption (Section 3.1): a sampled unit
//! that produced **no** value for an intermediate key is counted as a
//! `0`-valued observation, so `sum`/`sum_sq` only accumulate emitted
//! values while `sampled_units` counts every sampled item.

use crate::dist::cached_two_sided_critical_value;
use crate::interval::Interval;
use crate::{Result, StatsError};

/// Per-cluster (per map task) statistics for one intermediate key.
///
/// `sum` and `sum_sq` are over the values emitted for the key by the
/// `sampled_units` items actually processed; items that emitted nothing
/// implicitly contribute zeros (they are included in `sampled_units`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterObservation {
    /// Identifier of the cluster (map task / block id); informational.
    pub cluster_id: u64,
    /// `M_i` — total number of units (data items) in the block.
    pub total_units: u64,
    /// `m_i` — number of units sampled (processed) from the block.
    pub sampled_units: u64,
    /// `Σⱼ vᵢⱼ` over the sampled units.
    pub sum: f64,
    /// `Σⱼ vᵢⱼ²` over the sampled units.
    pub sum_sq: f64,
}

impl ClusterObservation {
    /// The unbiased estimate of this cluster's total: `(Mᵢ/mᵢ)·Σⱼ vᵢⱼ`.
    /// An empty cluster (`Mᵢ = mᵢ = 0`) has total `0`.
    ///
    /// `sampled_units == 0` with `total_units > 0` is an *invalid*
    /// observation (no expansion factor exists): callers that skip
    /// validation would silently read a biased `0.0`, so the invariant
    /// is debug-asserted here.
    pub fn estimated_total(&self) -> f64 {
        debug_assert!(
            self.sampled_units > 0 || self.total_units == 0,
            "invalid cluster observation: sampled_units == 0 with total_units == {} \
             (validate() rejects this)",
            self.total_units
        );
        if self.sampled_units == 0 {
            return 0.0;
        }
        self.total_units as f64 / self.sampled_units as f64 * self.sum
    }

    /// Intra-cluster sample variance `sᵢ²` of the unit values (including
    /// implicit zeros); `0` when fewer than two units were sampled.
    pub fn within_variance(&self) -> f64 {
        let m = self.sampled_units as f64;
        if self.sampled_units < 2 {
            return 0.0;
        }
        let var = (self.sum_sq - self.sum * self.sum / m) / (m - 1.0);
        var.max(0.0)
    }

    fn validate(&self) -> Result<()> {
        if self.sampled_units == 0 {
            // An entirely empty block is a legitimate (zero) cluster.
            if self.total_units == 0 && self.sum == 0.0 && self.sum_sq == 0.0 {
                return Ok(());
            }
            return Err(StatsError::invalid(
                "sampled_units",
                "must sample at least one unit per executed non-empty cluster",
            ));
        }
        if self.sampled_units > self.total_units {
            return Err(StatsError::invalid(
                "sampled_units",
                format!(
                    "cannot exceed total_units ({} > {})",
                    self.sampled_units, self.total_units
                ),
            ));
        }
        if !self.sum.is_finite() || !self.sum_sq.is_finite() {
            return Err(StatsError::Numerical {
                context: "cluster observation sums",
            });
        }
        Ok(())
    }
}

/// Two-stage sampling estimator of a population **total** (sum).
///
/// Counts are sums of indicator values, so this estimator also covers the
/// paper's `count` aggregate.
#[derive(Debug, Clone)]
pub struct TwoStageEstimator {
    total_clusters: u64,
    observations: Vec<ClusterObservation>,
}

impl TwoStageEstimator {
    /// Creates an estimator for a population partitioned into
    /// `total_clusters` (`N`) clusters.
    ///
    /// # Panics
    ///
    /// Panics if `total_clusters == 0`.
    pub fn new(total_clusters: u64) -> Self {
        assert!(
            total_clusters > 0,
            "population must have at least one cluster"
        );
        TwoStageEstimator {
            total_clusters,
            observations: Vec::new(),
        }
    }

    /// Adds the statistics of one executed cluster (map task).
    pub fn push(&mut self, obs: ClusterObservation) {
        self.observations.push(obs);
    }

    /// `N` — total clusters in the population.
    pub fn total_clusters(&self) -> u64 {
        self.total_clusters
    }

    /// `n` — executed (sampled) clusters so far.
    pub fn sampled_clusters(&self) -> usize {
        self.observations.len()
    }

    /// The executed-cluster observations.
    pub fn observations(&self) -> &[ClusterObservation] {
        &self.observations
    }

    /// The point estimate `τ̂` (paper Eq. 1). Errors if no clusters have
    /// been observed or an observation is invalid.
    pub fn estimated_total(&self) -> Result<f64> {
        let n = self.observations.len();
        if n == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        let mut sum = 0.0;
        for obs in &self.observations {
            obs.validate()?;
            sum += obs.estimated_total();
        }
        Ok(self.total_clusters as f64 / n as f64 * sum)
    }

    /// Inter-cluster sample variance `s_u²` of the estimated cluster
    /// totals; `0` with fewer than two clusters.
    pub fn inter_cluster_variance(&self) -> f64 {
        let n = self.observations.len();
        if n < 2 {
            return 0.0;
        }
        let totals: Vec<f64> = self
            .observations
            .iter()
            .map(|o| o.estimated_total())
            .collect();
        let mean = totals.iter().sum::<f64>() / n as f64;
        totals.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / (n - 1) as f64
    }

    /// The estimated variance `Var(τ̂)` (paper Eq. 3).
    pub fn variance(&self) -> Result<f64> {
        let n = self.observations.len();
        if n == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        for obs in &self.observations {
            obs.validate()?;
        }
        let nf = n as f64;
        let nn = self.total_clusters as f64;
        let between = nn * (nn - nf) * self.inter_cluster_variance() / nf;
        let mut within = 0.0;
        for obs in &self.observations {
            if obs.sampled_units == 0 {
                continue; // empty block: no within-cluster contribution
            }
            let m = obs.sampled_units as f64;
            let mm = obs.total_units as f64;
            within += mm * (mm - m) * obs.within_variance() / m;
        }
        Ok(between + nn / nf * within)
    }

    /// The full estimate `τ̂ ± ε` at the given confidence level
    /// (paper Eq. 1–3).
    ///
    /// * With a complete census (`n = N` and every `mᵢ = Mᵢ`) the interval
    ///   is exact.
    /// * With a single sampled cluster the half-width is `+∞` (the
    ///   Student-t with 0 degrees of freedom is undefined).
    pub fn estimate(&self, confidence: f64) -> Result<Interval> {
        if !(0.0 < confidence && confidence < 1.0) {
            return Err(StatsError::invalid("confidence", "must lie in (0, 1)"));
        }
        let total = self.estimated_total()?;
        let n = self.observations.len();
        let census = n as u64 == self.total_clusters
            && self
                .observations
                .iter()
                .all(|o| o.sampled_units == o.total_units);
        if census {
            return Ok(Interval::new(total, 0.0, confidence));
        }
        if n < 2 {
            return Ok(Interval::new(total, f64::INFINITY, confidence));
        }
        let var = self.variance()?;
        if var < 0.0 || !var.is_finite() {
            return Err(StatsError::Numerical {
                context: "two-stage variance",
            });
        }
        let t = cached_two_sided_critical_value((n - 1) as f64, confidence);
        Ok(Interval::new(total, t * var.sqrt(), confidence))
    }
}

/// Paired per-cluster statistics for ratio/mean estimation.
///
/// `y` is the numerator variable, `x` the denominator variable; both are
/// accumulated over the same `sampled_units` items.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedClusterObservation {
    /// Identifier of the cluster (map task / block id).
    pub cluster_id: u64,
    /// `M_i` — total units in the block.
    pub total_units: u64,
    /// `m_i` — sampled units.
    pub sampled_units: u64,
    /// `Σ yᵢⱼ`.
    pub sum_y: f64,
    /// `Σ yᵢⱼ²`.
    pub sum_y_sq: f64,
    /// `Σ xᵢⱼ`.
    pub sum_x: f64,
    /// `Σ xᵢⱼ²`.
    pub sum_x_sq: f64,
    /// `Σ xᵢⱼ·yᵢⱼ`.
    pub sum_xy: f64,
}

/// Two-stage **ratio** estimator `r̂ = τ̂_y / τ̂_x` with a linearised
/// variance (Lohr, Sampling: Design and Analysis, ratio estimation in
/// cluster samples).
///
/// The population **mean per unit** is the special case `x ≡ 1`; use
/// [`MeanEstimator`] for that.
#[derive(Debug, Clone)]
pub struct RatioEstimator {
    total_clusters: u64,
    observations: Vec<PairedClusterObservation>,
}

impl RatioEstimator {
    /// Creates a ratio estimator for a population of `total_clusters`
    /// clusters.
    ///
    /// # Panics
    ///
    /// Panics if `total_clusters == 0`.
    pub fn new(total_clusters: u64) -> Self {
        assert!(
            total_clusters > 0,
            "population must have at least one cluster"
        );
        RatioEstimator {
            total_clusters,
            observations: Vec::new(),
        }
    }

    /// Adds one executed cluster's paired statistics.
    pub fn push(&mut self, obs: PairedClusterObservation) {
        self.observations.push(obs);
    }

    /// Executed clusters so far.
    pub fn sampled_clusters(&self) -> usize {
        self.observations.len()
    }

    fn totals(&self) -> Result<(f64, f64)> {
        let n = self.observations.len();
        if n == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        let mut ty = 0.0;
        let mut tx = 0.0;
        for o in &self.observations {
            if o.sampled_units == 0 {
                // An entirely empty block (M_i = m_i = 0) is a legitimate
                // zero-weight cluster, exactly as TwoStageEstimator (and
                // ClusterObservation::validate) treats it — it still
                // counts toward n below, just contributes nothing here.
                if o.total_units == 0 && o.sum_y == 0.0 && o.sum_x == 0.0 {
                    continue;
                }
                return Err(StatsError::invalid(
                    "sampled_units",
                    "must sample at least one unit per executed non-empty cluster",
                ));
            }
            if o.sampled_units > o.total_units {
                return Err(StatsError::invalid(
                    "sampled_units",
                    "must be in [1, total_units]",
                ));
            }
            let w = o.total_units as f64 / o.sampled_units as f64;
            ty += w * o.sum_y;
            tx += w * o.sum_x;
        }
        let scale = self.total_clusters as f64 / n as f64;
        Ok((scale * ty, scale * tx))
    }

    /// The point estimate `r̂ = τ̂_y / τ̂_x`.
    pub fn estimated_ratio(&self) -> Result<f64> {
        let (ty, tx) = self.totals()?;
        if tx == 0.0 {
            return Err(StatsError::Numerical {
                context: "ratio estimator denominator",
            });
        }
        Ok(ty / tx)
    }

    /// The estimate `r̂ ± ε` at the given confidence level.
    ///
    /// Variance via linearisation: with residuals `d = y - r̂·x`,
    /// `Var(r̂) ≈ Var(τ̂_d) / τ̂_x²` where `τ̂_d` follows the two-stage
    /// variance formula applied to `d`.
    pub fn estimate(&self, confidence: f64) -> Result<Interval> {
        if !(0.0 < confidence && confidence < 1.0) {
            return Err(StatsError::invalid("confidence", "must lie in (0, 1)"));
        }
        let (ty, tx) = self.totals()?;
        if tx == 0.0 {
            return Err(StatsError::Numerical {
                context: "ratio estimator denominator",
            });
        }
        let r = ty / tx;
        let n = self.observations.len();
        let census = n as u64 == self.total_clusters
            && self
                .observations
                .iter()
                .all(|o| o.sampled_units == o.total_units);
        if census {
            return Ok(Interval::new(r, 0.0, confidence));
        }
        if n < 2 {
            return Ok(Interval::new(r, f64::INFINITY, confidence));
        }
        // Residual statistics: d = y - r x.
        let mut d_est = TwoStageEstimator::new(self.total_clusters);
        for o in &self.observations {
            let sum_d = o.sum_y - r * o.sum_x;
            let sum_d_sq = o.sum_y_sq - 2.0 * r * o.sum_xy + r * r * o.sum_x_sq;
            d_est.push(ClusterObservation {
                cluster_id: o.cluster_id,
                total_units: o.total_units,
                sampled_units: o.sampled_units,
                sum: sum_d,
                sum_sq: sum_d_sq.max(0.0),
            });
        }
        let var_d = d_est.variance()?;
        let var_r = var_d / (tx * tx);
        if !var_r.is_finite() {
            return Err(StatsError::Numerical {
                context: "ratio estimator variance",
            });
        }
        let t = cached_two_sided_critical_value((n - 1) as f64, confidence);
        Ok(Interval::new(r, t * var_r.sqrt(), confidence))
    }
}

/// Two-stage estimator of the population **mean per unit** — the ratio
/// estimator with denominator `x ≡ 1` for every unit.
#[derive(Debug, Clone)]
pub struct MeanEstimator {
    inner: RatioEstimator,
}

impl MeanEstimator {
    /// Creates a mean estimator for a population of `total_clusters`
    /// clusters.
    pub fn new(total_clusters: u64) -> Self {
        MeanEstimator {
            inner: RatioEstimator::new(total_clusters),
        }
    }

    /// Adds one executed cluster's statistics (as for
    /// [`TwoStageEstimator::push`]).
    pub fn push(&mut self, obs: ClusterObservation) {
        let m = obs.sampled_units as f64;
        self.inner.push(PairedClusterObservation {
            cluster_id: obs.cluster_id,
            total_units: obs.total_units,
            sampled_units: obs.sampled_units,
            sum_y: obs.sum,
            sum_y_sq: obs.sum_sq,
            sum_x: m,
            sum_x_sq: m,
            sum_xy: obs.sum,
        });
    }

    /// Executed clusters so far.
    pub fn sampled_clusters(&self) -> usize {
        self.inner.sampled_clusters()
    }

    /// The estimate `μ̂ ± ε` at the given confidence level.
    pub fn estimate(&self, confidence: f64) -> Result<Interval> {
        self.inner.estimate(confidence)
    }
}

/// One sampled secondary unit (e.g. an intermediate `<key, value>` group)
/// in three-stage sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondaryObservation {
    /// `K_ij` — total tertiary units in this secondary unit.
    pub total_tertiary: u64,
    /// `k_ij` — sampled tertiary units.
    pub sampled_tertiary: u64,
    /// Sum of sampled tertiary values.
    pub sum: f64,
    /// Sum of squares of sampled tertiary values.
    pub sum_sq: f64,
}

impl SecondaryObservation {
    fn estimated_total(&self) -> f64 {
        self.total_tertiary as f64 / self.sampled_tertiary as f64 * self.sum
    }

    fn within_variance(&self) -> f64 {
        let k = self.sampled_tertiary as f64;
        if self.sampled_tertiary < 2 {
            return 0.0;
        }
        ((self.sum_sq - self.sum * self.sum / k) / (k - 1.0)).max(0.0)
    }
}

/// One sampled cluster in three-stage sampling, holding its sampled
/// secondary units (`m_i = secondaries.len()`).
#[derive(Debug, Clone, PartialEq)]
pub struct ThreeStageCluster {
    /// Identifier of the cluster (map task / block id).
    pub cluster_id: u64,
    /// `M_i` — total secondary units in the cluster.
    pub total_units: u64,
    /// The sampled secondary units.
    pub secondaries: Vec<SecondaryObservation>,
}

/// Three-stage sampling estimator of a population total (paper
/// Section 3.1, "Three-stage sampling"): clusters → secondary units →
/// tertiary units, e.g. blocks → pages → paragraphs.
#[derive(Debug, Clone)]
pub struct ThreeStageEstimator {
    total_clusters: u64,
    clusters: Vec<ThreeStageCluster>,
}

impl ThreeStageEstimator {
    /// Creates an estimator for `total_clusters` (`N`) clusters.
    ///
    /// # Panics
    ///
    /// Panics if `total_clusters == 0`.
    pub fn new(total_clusters: u64) -> Self {
        assert!(
            total_clusters > 0,
            "population must have at least one cluster"
        );
        ThreeStageEstimator {
            total_clusters,
            clusters: Vec::new(),
        }
    }

    /// Adds one executed cluster.
    pub fn push(&mut self, cluster: ThreeStageCluster) {
        self.clusters.push(cluster);
    }

    /// Executed clusters so far.
    pub fn sampled_clusters(&self) -> usize {
        self.clusters.len()
    }

    fn validate(&self) -> Result<()> {
        for c in &self.clusters {
            if c.secondaries.is_empty() {
                return Err(StatsError::invalid(
                    "secondaries",
                    "each sampled cluster must contain at least one sampled secondary unit",
                ));
            }
            if c.secondaries.len() as u64 > c.total_units {
                return Err(StatsError::invalid(
                    "secondaries",
                    "sampled secondary units exceed cluster total",
                ));
            }
            for s in &c.secondaries {
                if s.sampled_tertiary == 0 || s.sampled_tertiary > s.total_tertiary {
                    return Err(StatsError::invalid(
                        "sampled_tertiary",
                        "must be in [1, total_tertiary]",
                    ));
                }
            }
        }
        Ok(())
    }

    fn cluster_estimated_total(c: &ThreeStageCluster) -> f64 {
        let m = c.secondaries.len() as f64;
        let inner: f64 = c.secondaries.iter().map(|s| s.estimated_total()).sum();
        c.total_units as f64 / m * inner
    }

    /// The point estimate `τ̂`.
    pub fn estimated_total(&self) -> Result<f64> {
        self.validate()?;
        let n = self.clusters.len();
        if n == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        let sum: f64 = self
            .clusters
            .iter()
            .map(Self::cluster_estimated_total)
            .sum();
        Ok(self.total_clusters as f64 / n as f64 * sum)
    }

    /// The estimated variance of `τ̂` (three-term extension of Eq. 3).
    pub fn variance(&self) -> Result<f64> {
        self.validate()?;
        let n = self.clusters.len();
        if n == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        let nf = n as f64;
        let nn = self.total_clusters as f64;

        // Between-cluster term.
        let totals: Vec<f64> = self
            .clusters
            .iter()
            .map(Self::cluster_estimated_total)
            .collect();
        let mean = totals.iter().sum::<f64>() / nf;
        let s_u2 = if n < 2 {
            0.0
        } else {
            totals.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / (nf - 1.0)
        };
        let mut var = nn * (nn - nf) * s_u2 / nf;

        // Second- and third-stage terms.
        let mut within = 0.0;
        for c in &self.clusters {
            let m = c.secondaries.len() as f64;
            let mm = c.total_units as f64;
            // Variance among estimated secondary totals within the cluster.
            let sec_totals: Vec<f64> = c.secondaries.iter().map(|s| s.estimated_total()).collect();
            let sec_mean = sec_totals.iter().sum::<f64>() / m;
            let s_2i = if c.secondaries.len() < 2 {
                0.0
            } else {
                sec_totals
                    .iter()
                    .map(|t| (t - sec_mean) * (t - sec_mean))
                    .sum::<f64>()
                    / (m - 1.0)
            };
            within += mm * (mm - m) * s_2i / m;
            // Third-stage contribution.
            let mut third = 0.0;
            for s in &c.secondaries {
                let k = s.sampled_tertiary as f64;
                let kk = s.total_tertiary as f64;
                third += kk * (kk - k) * s.within_variance() / k;
            }
            within += mm / m * third;
        }
        var += nn / nf * within;
        Ok(var.max(0.0))
    }

    /// The full estimate `τ̂ ± ε` at the given confidence level.
    pub fn estimate(&self, confidence: f64) -> Result<Interval> {
        if !(0.0 < confidence && confidence < 1.0) {
            return Err(StatsError::invalid("confidence", "must lie in (0, 1)"));
        }
        let total = self.estimated_total()?;
        let n = self.clusters.len();
        let census = n as u64 == self.total_clusters
            && self.clusters.iter().all(|c| {
                c.secondaries.len() as u64 == c.total_units
                    && c.secondaries
                        .iter()
                        .all(|s| s.sampled_tertiary == s.total_tertiary)
            });
        if census {
            return Ok(Interval::new(total, 0.0, confidence));
        }
        if n < 2 {
            return Ok(Interval::new(total, f64::INFINITY, confidence));
        }
        let var = self.variance()?;
        let t = cached_two_sided_critical_value((n - 1) as f64, confidence);
        Ok(Interval::new(total, t * var.sqrt(), confidence))
    }
}

/// Inputs to the predicted error bound of paper Eq. (4)–(7): statistics
/// collected from the `n₁` completed map tasks, used to predict the bound
/// after `n₂` further tasks run at sampling size `m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveStatistics {
    /// `N` — total map tasks (clusters).
    pub total_clusters: u64,
    /// `n₁` — completed map tasks.
    pub completed_clusters: u64,
    /// `s_u²` — inter-cluster variance measured over the completed tasks.
    pub inter_cluster_var: f64,
    /// `M̄` — mean block size (units per cluster).
    pub mean_cluster_size: f64,
    /// `s̄²` — mean intra-cluster variance over completed tasks.
    pub mean_within_var: f64,
    /// `Σᵢ Mᵢ(Mᵢ-mᵢ)sᵢ²/mᵢ` — the within contribution already locked in
    /// by the completed tasks (zero when the first wave ran precisely).
    pub completed_within_term: f64,
    /// Current point estimate `τ̂` of the watched key.
    pub estimate: f64,
}

impl WaveStatistics {
    /// Predicted `Var(τ̂)` after running `n₂` more tasks sampling `m`
    /// units each (paper Eq. 6–7):
    ///
    /// ```text
    /// Var = N(N-n)·s_u²/n + (N/n)·CVar
    /// CVar = n₂·M̄(M̄-m)·s̄²/m + Σᵢ Mᵢ(Mᵢ-mᵢ)sᵢ²/mᵢ
    /// ```
    pub fn predicted_variance(&self, additional_clusters: u64, units_per_cluster: f64) -> f64 {
        let n1 = self.completed_clusters as f64;
        let n2 = additional_clusters as f64;
        let n = n1 + n2;
        if n < 1.0 {
            return f64::INFINITY;
        }
        let nn = self.total_clusters as f64;
        let m = units_per_cluster.max(1.0).min(self.mean_cluster_size);
        let mbar = self.mean_cluster_size;
        let cvar =
            n2 * mbar * (mbar - m).max(0.0) * self.mean_within_var / m + self.completed_within_term;
        (nn * (nn - n).max(0.0) * self.inter_cluster_var / n + nn / n * cvar).max(0.0)
    }

    /// Predicted error bound `ε = t_{n-1,1-α/2}·sqrt(Var)` (Eq. 4, LHS).
    /// Returns `+∞` when `n < 2`.
    pub fn predicted_bound(
        &self,
        additional_clusters: u64,
        units_per_cluster: f64,
        confidence: f64,
    ) -> f64 {
        let n = self.completed_clusters + additional_clusters;
        if n < 2 {
            return f64::INFINITY;
        }
        let t = cached_two_sided_critical_value((n - 1) as f64, confidence);
        t * self
            .predicted_variance(additional_clusters, units_per_cluster)
            .sqrt()
    }

    /// Predicted **relative** error bound `ε / τ̂`; `+∞` when the estimate
    /// is zero.
    pub fn predicted_relative_bound(
        &self,
        additional_clusters: u64,
        units_per_cluster: f64,
        confidence: f64,
    ) -> f64 {
        if self.estimate == 0.0 {
            return f64::INFINITY;
        }
        self.predicted_bound(additional_clusters, units_per_cluster, confidence)
            / self.estimate.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn full_census(values: &[Vec<f64>]) -> TwoStageEstimator {
        let mut est = TwoStageEstimator::new(values.len() as u64);
        for (i, block) in values.iter().enumerate() {
            est.push(ClusterObservation {
                cluster_id: i as u64,
                total_units: block.len() as u64,
                sampled_units: block.len() as u64,
                sum: block.iter().sum(),
                sum_sq: block.iter().map(|v| v * v).sum(),
            });
        }
        est
    }

    #[test]
    fn census_is_exact() {
        let blocks = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0], vec![6.0]];
        let est = full_census(&blocks);
        let iv = est.estimate(0.95).unwrap();
        assert_eq!(iv.estimate, 21.0);
        assert_eq!(iv.half_width, 0.0);
    }

    #[test]
    fn single_cluster_has_infinite_bound() {
        let mut est = TwoStageEstimator::new(10);
        est.push(ClusterObservation {
            cluster_id: 0,
            total_units: 100,
            sampled_units: 50,
            sum: 10.0,
            sum_sq: 4.0,
        });
        let iv = est.estimate(0.95).unwrap();
        assert_eq!(iv.half_width, f64::INFINITY);
        // But the point estimate is still the unbiased expansion.
        assert!((iv.estimate - 10.0 * 2.0 * 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_estimator_errors() {
        let est = TwoStageEstimator::new(5);
        assert!(matches!(
            est.estimate(0.95),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn invalid_observation_is_rejected() {
        let mut est = TwoStageEstimator::new(5);
        est.push(ClusterObservation {
            cluster_id: 0,
            total_units: 10,
            sampled_units: 11, // > total
            sum: 1.0,
            sum_sq: 1.0,
        });
        assert!(est.estimate(0.95).is_err());

        let mut est = TwoStageEstimator::new(5);
        est.push(ClusterObservation {
            cluster_id: 0,
            total_units: 10,
            sampled_units: 0,
            sum: 0.0,
            sum_sq: 0.0,
        });
        assert!(est.estimate(0.95).is_err());
    }

    #[test]
    fn bad_confidence_is_rejected() {
        let blocks = vec![vec![1.0], vec![2.0]];
        let est = full_census(&blocks);
        assert!(est.estimate(0.0).is_err());
        assert!(est.estimate(1.0).is_err());
        assert!(est.estimate(-0.5).is_err());
    }

    /// Matches a hand-computed example: N=4 clusters, sample n=2 clusters
    /// fully enumerated (one-stage cluster sampling).
    #[test]
    fn one_stage_cluster_sampling_hand_computed() {
        // Clusters sampled: totals 10 and 14; N=4, n=2.
        // τ̂ = 4/2 · (10+14) = 48.
        // s_u² = ((10-12)² + (14-12)²)/1 = 8.
        // Var = 4·(4-2)·8/2 = 32 (within term zero, fully enumerated).
        // ε = t₁,0.975 · √32 = 12.706 · 5.657 = 71.87.
        let mut est = TwoStageEstimator::new(4);
        for (i, &tot) in [10.0, 14.0].iter().enumerate() {
            est.push(ClusterObservation {
                cluster_id: i as u64,
                total_units: 5,
                sampled_units: 5,
                sum: tot,
                sum_sq: tot * tot / 5.0 + 1.0,
            });
        }
        let iv = est.estimate(0.95).unwrap();
        assert!((iv.estimate - 48.0).abs() < 1e-12);
        assert!((est.variance().unwrap() - 32.0).abs() < 1e-12);
        assert!((iv.half_width - 12.706 * 32.0f64.sqrt()).abs() < 0.01);
    }

    /// Statistical coverage test: over many repetitions of two-stage
    /// sampling from a known population, the 95% CI should contain the
    /// true total roughly 95% of the time (we accept ≥ 88% to keep the
    /// test robust yet meaningful).
    #[test]
    fn coverage_of_true_total() {
        let mut rng = StdRng::seed_from_u64(42);
        // Population: 50 blocks of 200 items with block-level locality.
        let blocks: Vec<Vec<f64>> = (0..50)
            .map(|b| {
                let base = 10.0 + (b % 7) as f64;
                (0..200).map(|_| base + rng.gen_range(-3.0..3.0)).collect()
            })
            .collect();
        let truth: f64 = blocks.iter().flatten().sum();

        let reps = 300;
        let mut covered = 0;
        for _ in 0..reps {
            let mut est = TwoStageEstimator::new(blocks.len() as u64);
            // Sample 15 random blocks, 40 random items each.
            let mut ids: Vec<usize> = (0..blocks.len()).collect();
            for i in 0..15 {
                let j = rng.gen_range(i..ids.len());
                ids.swap(i, j);
            }
            for &b in ids.iter().take(15) {
                let block = &blocks[b];
                let mut items: Vec<usize> = (0..block.len()).collect();
                for i in 0..40 {
                    let j = rng.gen_range(i..items.len());
                    items.swap(i, j);
                }
                let vals: Vec<f64> = items.iter().take(40).map(|&i| block[i]).collect();
                est.push(ClusterObservation {
                    cluster_id: b as u64,
                    total_units: block.len() as u64,
                    sampled_units: 40,
                    sum: vals.iter().sum(),
                    sum_sq: vals.iter().map(|v| v * v).sum(),
                });
            }
            if est.estimate(0.95).unwrap().contains(truth) {
                covered += 1;
            }
        }
        let rate = covered as f64 / reps as f64;
        assert!(rate > 0.88, "coverage too low: {rate}");
    }

    #[test]
    fn mean_estimator_census_matches_population_mean() {
        let blocks = [vec![2.0, 4.0], vec![6.0, 8.0, 10.0]];
        let mut est = MeanEstimator::new(2);
        for (i, b) in blocks.iter().enumerate() {
            est.push(ClusterObservation {
                cluster_id: i as u64,
                total_units: b.len() as u64,
                sampled_units: b.len() as u64,
                sum: b.iter().sum(),
                sum_sq: b.iter().map(|v| v * v).sum(),
            });
        }
        let iv = est.estimate(0.95).unwrap();
        assert!((iv.estimate - 6.0).abs() < 1e-12);
        assert_eq!(iv.half_width, 0.0);
    }

    #[test]
    fn mean_estimator_sampled_is_near_truth() {
        let mut rng = StdRng::seed_from_u64(7);
        let blocks: Vec<Vec<f64>> = (0..40)
            .map(|_| (0..100).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect();
        let all: Vec<f64> = blocks.iter().flatten().copied().collect();
        let truth = all.iter().sum::<f64>() / all.len() as f64;
        let mut est = MeanEstimator::new(40);
        for (i, b) in blocks.iter().take(10).enumerate() {
            let vals = &b[..25];
            est.push(ClusterObservation {
                cluster_id: i as u64,
                total_units: 100,
                sampled_units: 25,
                sum: vals.iter().sum(),
                sum_sq: vals.iter().map(|v| v * v).sum(),
            });
        }
        let iv = est.estimate(0.95).unwrap();
        assert!(
            (iv.estimate - truth).abs() < 1.0,
            "estimate {} vs truth {truth}",
            iv.estimate
        );
        assert!(iv.half_width.is_finite());
    }

    #[test]
    fn ratio_estimator_census_exact() {
        // y = bytes, x = requests; ratio = mean bytes per request.
        let mut est = RatioEstimator::new(2);
        est.push(PairedClusterObservation {
            cluster_id: 0,
            total_units: 2,
            sampled_units: 2,
            sum_y: 30.0,
            sum_y_sq: 500.0,
            sum_x: 3.0,
            sum_x_sq: 5.0,
            sum_xy: 38.0,
        });
        est.push(PairedClusterObservation {
            cluster_id: 1,
            total_units: 2,
            sampled_units: 2,
            sum_y: 10.0,
            sum_y_sq: 60.0,
            sum_x: 2.0,
            sum_x_sq: 2.0,
            sum_xy: 10.0,
        });
        let iv = est.estimate(0.95).unwrap();
        assert!((iv.estimate - 8.0).abs() < 1e-12);
        assert_eq!(iv.half_width, 0.0);
    }

    #[test]
    fn ratio_and_mean_tolerate_empty_blocks() {
        // Regression: an input ending in an empty block used to make
        // avg/ratio jobs fail with InvalidInput while the same job's
        // sum succeeded (TwoStageEstimator already skipped it).
        let mut est = RatioEstimator::new(3);
        est.push(PairedClusterObservation {
            cluster_id: 0,
            total_units: 2,
            sampled_units: 2,
            sum_y: 30.0,
            sum_y_sq: 500.0,
            sum_x: 3.0,
            sum_x_sq: 5.0,
            sum_xy: 38.0,
        });
        est.push(PairedClusterObservation {
            cluster_id: 1,
            total_units: 2,
            sampled_units: 2,
            sum_y: 10.0,
            sum_y_sq: 60.0,
            sum_x: 2.0,
            sum_x_sq: 2.0,
            sum_xy: 10.0,
        });
        est.push(PairedClusterObservation {
            cluster_id: 2,
            total_units: 0,
            sampled_units: 0,
            sum_y: 0.0,
            sum_y_sq: 0.0,
            sum_x: 0.0,
            sum_x_sq: 0.0,
            sum_xy: 0.0,
        });
        let iv = est.estimate(0.95).unwrap();
        assert!((iv.estimate - 8.0).abs() < 1e-12);
        // All non-empty clusters fully enumerated and n = N: a census.
        assert_eq!(iv.half_width, 0.0);

        let mut mean = MeanEstimator::new(2);
        mean.push(ClusterObservation {
            cluster_id: 0,
            total_units: 3,
            sampled_units: 3,
            sum: 6.0,
            sum_sq: 14.0,
        });
        mean.push(ClusterObservation {
            cluster_id: 1,
            total_units: 0,
            sampled_units: 0,
            sum: 0.0,
            sum_sq: 0.0,
        });
        let iv = mean.estimate(0.95).unwrap();
        assert!((iv.estimate - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_estimator_still_rejects_invalid_observation() {
        // sampled == 0 with a non-empty block stays an error.
        let mut est = RatioEstimator::new(2);
        est.push(PairedClusterObservation {
            cluster_id: 0,
            total_units: 10,
            sampled_units: 0,
            sum_y: 0.0,
            sum_y_sq: 0.0,
            sum_x: 0.0,
            sum_x_sq: 0.0,
            sum_xy: 0.0,
        });
        assert!(est.estimate(0.95).is_err());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "invalid cluster observation")]
    fn estimated_total_debug_asserts_invalid_observation() {
        // Direct callers that skip validate() used to read a silent
        // (biased) 0.0 here.
        let obs = ClusterObservation {
            cluster_id: 0,
            total_units: 10,
            sampled_units: 0,
            sum: 5.0,
            sum_sq: 25.0,
        };
        let _ = obs.estimated_total();
    }

    #[test]
    fn ratio_estimator_zero_denominator_errors() {
        let mut est = RatioEstimator::new(3);
        est.push(PairedClusterObservation {
            cluster_id: 0,
            total_units: 5,
            sampled_units: 5,
            sum_y: 1.0,
            sum_y_sq: 1.0,
            sum_x: 0.0,
            sum_x_sq: 0.0,
            sum_xy: 0.0,
        });
        assert!(est.estimated_ratio().is_err());
    }

    #[test]
    fn three_stage_census_is_exact() {
        let mut est = ThreeStageEstimator::new(2);
        for c in 0..2u64 {
            est.push(ThreeStageCluster {
                cluster_id: c,
                total_units: 2,
                secondaries: vec![
                    SecondaryObservation {
                        total_tertiary: 3,
                        sampled_tertiary: 3,
                        sum: 6.0,
                        sum_sq: 14.0,
                    },
                    SecondaryObservation {
                        total_tertiary: 2,
                        sampled_tertiary: 2,
                        sum: 5.0,
                        sum_sq: 13.0,
                    },
                ],
            });
        }
        let iv = est.estimate(0.95).unwrap();
        assert!((iv.estimate - 22.0).abs() < 1e-12);
        assert_eq!(iv.half_width, 0.0);
    }

    #[test]
    fn three_stage_sampling_estimates_and_bounds() {
        let mut rng = StdRng::seed_from_u64(99);
        // 20 clusters × 10 secondaries × 50 tertiaries of value ~5.
        let pop: Vec<Vec<Vec<f64>>> = (0..20)
            .map(|_| {
                (0..10)
                    .map(|_| (0..50).map(|_| rng.gen_range(4.0..6.0)).collect())
                    .collect()
            })
            .collect();
        let truth: f64 = pop.iter().flatten().flatten().sum();
        let mut est = ThreeStageEstimator::new(20);
        for (ci, c) in pop.iter().take(8).enumerate() {
            let secondaries = c
                .iter()
                .take(5)
                .map(|s| {
                    let vals = &s[..20];
                    SecondaryObservation {
                        total_tertiary: 50,
                        sampled_tertiary: 20,
                        sum: vals.iter().sum(),
                        sum_sq: vals.iter().map(|v| v * v).sum(),
                    }
                })
                .collect();
            est.push(ThreeStageCluster {
                cluster_id: ci as u64,
                total_units: 10,
                secondaries,
            });
        }
        let iv = est.estimate(0.95).unwrap();
        assert!(iv.half_width.is_finite() && iv.half_width > 0.0);
        assert!(
            (iv.estimate - truth).abs() / truth < 0.05,
            "estimate {} vs truth {truth}",
            iv.estimate
        );
    }

    #[test]
    fn three_stage_invalid_rejected() {
        let mut est = ThreeStageEstimator::new(2);
        est.push(ThreeStageCluster {
            cluster_id: 0,
            total_units: 2,
            secondaries: vec![],
        });
        assert!(est.estimate(0.95).is_err());
    }

    #[test]
    fn predicted_bound_decreases_with_more_clusters_and_units() {
        let w = WaveStatistics {
            total_clusters: 100,
            completed_clusters: 10,
            inter_cluster_var: 50.0,
            mean_cluster_size: 1000.0,
            mean_within_var: 4.0,
            completed_within_term: 0.0,
            estimate: 1e6,
        };
        // More *precise* clusters (m = M̄, no within-variance) shrink the
        // between-cluster term; more units per cluster shrink the within
        // term at fixed n₂.
        let b_small = w.predicted_bound(10, 1000.0, 0.95);
        let b_more_clusters = w.predicted_bound(40, 1000.0, 0.95);
        assert!(b_more_clusters < b_small);
        let b_coarse = w.predicted_bound(10, 100.0, 0.95);
        let b_fine = w.predicted_bound(10, 800.0, 0.95);
        assert!(b_fine < b_coarse);
        // Sampling within clusters can only add variance vs. precise.
        assert!(b_small <= b_coarse);
    }

    #[test]
    fn predicted_bound_matches_direct_variance_when_full() {
        // n2 additional precise clusters (m = M̄) add no within-variance.
        let w = WaveStatistics {
            total_clusters: 50,
            completed_clusters: 5,
            inter_cluster_var: 10.0,
            mean_cluster_size: 100.0,
            mean_within_var: 2.0,
            completed_within_term: 0.0,
            estimate: 1000.0,
        };
        let v = w.predicted_variance(5, 100.0);
        // Var = N(N-n)s_u²/n with n = 10.
        let expected = 50.0 * 40.0 * 10.0 / 10.0;
        assert!((v - expected).abs() < 1e-9);
    }

    #[test]
    fn predicted_relative_bound_handles_zero_estimate() {
        let w = WaveStatistics {
            total_clusters: 10,
            completed_clusters: 5,
            inter_cluster_var: 1.0,
            mean_cluster_size: 10.0,
            mean_within_var: 1.0,
            completed_within_term: 0.0,
            estimate: 0.0,
        };
        assert_eq!(w.predicted_relative_bound(2, 5.0, 0.95), f64::INFINITY);
    }

    #[test]
    fn predicted_bound_infinite_below_two_clusters() {
        let w = WaveStatistics {
            total_clusters: 10,
            completed_clusters: 0,
            inter_cluster_var: 1.0,
            mean_cluster_size: 10.0,
            mean_within_var: 1.0,
            completed_within_term: 0.0,
            estimate: 5.0,
        };
        assert_eq!(w.predicted_bound(1, 5.0, 0.95), f64::INFINITY);
        assert!(w.predicted_bound(2, 5.0, 0.95).is_finite());
    }
}
