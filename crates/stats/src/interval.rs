//! Confidence intervals — the `τ̂ ± ε` values ApproxHadoop reports.

/// A symmetric confidence interval `estimate ± half_width` at a given
/// confidence level, as produced by the approximation-aware reducers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// The point estimate `τ̂`.
    pub estimate: f64,
    /// The half-width `ε` of the confidence interval (non-negative; may be
    /// `f64::INFINITY` when the sample is too small to bound the error).
    pub half_width: f64,
    /// The confidence level in `(0, 1)`, e.g. `0.95`.
    pub confidence: f64,
}

impl Interval {
    /// Creates an interval, clamping a tiny negative `half_width` produced
    /// by floating-point noise to zero.
    pub fn new(estimate: f64, half_width: f64, confidence: f64) -> Self {
        Interval {
            estimate,
            half_width: half_width.max(0.0),
            confidence,
        }
    }

    /// An exact (zero-width) interval, as produced by precise executions.
    pub fn exact(estimate: f64) -> Self {
        Interval {
            estimate,
            half_width: 0.0,
            confidence: 1.0,
        }
    }

    /// Lower endpoint `τ̂ - ε`.
    pub fn lo(&self) -> f64 {
        self.estimate - self.half_width
    }

    /// Upper endpoint `τ̂ + ε`.
    pub fn hi(&self) -> f64 {
        self.estimate + self.half_width
    }

    /// Whether `value` lies within the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }

    /// Relative error bound `ε / |τ̂|`; `f64::INFINITY` when the estimate
    /// is zero and the interval has positive width.
    pub fn relative_error(&self) -> f64 {
        if self.half_width == 0.0 {
            0.0
        } else if self.estimate == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.estimate.abs()
        }
    }

    /// Actual relative error of the estimate against a known ground truth.
    pub fn actual_error(&self, truth: f64) -> f64 {
        if truth == 0.0 {
            if self.estimate == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.estimate - truth).abs() / truth.abs()
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.6} ± {:.6} ({}% conf)",
            self.estimate,
            self.half_width,
            self.confidence * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_and_containment() {
        let iv = Interval::new(100.0, 5.0, 0.95);
        assert_eq!(iv.lo(), 95.0);
        assert_eq!(iv.hi(), 105.0);
        assert!(iv.contains(95.0));
        assert!(iv.contains(105.0));
        assert!(!iv.contains(94.999));
        assert!(!iv.contains(105.001));
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(Interval::new(200.0, 10.0, 0.95).relative_error(), 0.05);
        assert_eq!(Interval::exact(42.0).relative_error(), 0.0);
        assert_eq!(
            Interval::new(0.0, 1.0, 0.95).relative_error(),
            f64::INFINITY
        );
        // Zero estimate with zero width is exact.
        assert_eq!(Interval::new(0.0, 0.0, 0.95).relative_error(), 0.0);
    }

    #[test]
    fn actual_error_against_truth() {
        let iv = Interval::new(110.0, 20.0, 0.95);
        assert!((iv.actual_error(100.0) - 0.1).abs() < 1e-12);
        assert_eq!(Interval::exact(0.0).actual_error(0.0), 0.0);
        assert_eq!(Interval::exact(1.0).actual_error(0.0), f64::INFINITY);
    }

    #[test]
    fn negative_half_width_is_clamped() {
        let iv = Interval::new(1.0, -1e-18, 0.95);
        assert_eq!(iv.half_width, 0.0);
    }

    #[test]
    fn display_includes_confidence() {
        let s = Interval::new(1.0, 0.5, 0.95).to_string();
        assert!(s.contains("95%"));
    }
}
