//! Special mathematical functions implemented from scratch.
//!
//! Everything downstream (Student-t quantiles, normal quantiles, GEV
//! likelihoods) is built on the functions in this module: the log-gamma
//! function, the error function, and the regularised incomplete gamma and
//! beta functions with their inverses.
//!
//! Accuracy targets are ~1e-12 relative error over the ranges the rest of
//! the crate exercises; unit tests pin values against independently
//! computed references.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), accurate to
/// better than 1e-13 over the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The error function `erf(x)`.
///
/// Computed via the regularised incomplete gamma function:
/// `erf(x) = sign(x) · P(1/2, x²)`, giving near machine precision.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = reg_gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses the continued-fraction incomplete gamma for large `x` so that tail
/// probabilities retain full relative precision.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x == 0.0 {
        return 1.0;
    }
    reg_gamma_q(0.5, x * x)
}

/// Regularised lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)` for `a > 0, x >= 0`.
pub fn reg_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "reg_gamma_p requires a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularised upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn reg_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "reg_gamma_q requires a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, converges quickly for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction for `Q(a, x)` (modified Lentz), for `x >= a + 1`.
fn gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Natural log of the beta function `ln B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularised incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]`.
///
/// Uses the continued-fraction expansion with the symmetry transformation
/// for fast convergence on either side of `(a+1)/(a+b+2)`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "reg_inc_beta requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "reg_inc_beta requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h
}

/// Inverse of the regularised incomplete beta function: finds `x` such
/// that `I_x(a, b) = p`.
///
/// Uses a Newton iteration with bisection safeguards; accurate to ~1e-12.
pub fn inv_reg_inc_beta(a: f64, b: f64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0,1]");
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    // Initial guess (Numerical Recipes' invbetai start).
    let mut x;
    if a >= 1.0 && b >= 1.0 {
        let pp = if p < 0.5 { p } else { 1.0 - p };
        let t = (-2.0 * pp.ln()).sqrt();
        let mut z = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t;
        if p < 0.5 {
            z = -z;
        }
        let al = (z * z - 3.0) / 6.0;
        let h = 2.0 / (1.0 / (2.0 * a - 1.0) + 1.0 / (2.0 * b - 1.0));
        let w = z * (al + h).sqrt() / h
            - (1.0 / (2.0 * b - 1.0) - 1.0 / (2.0 * a - 1.0)) * (al + 5.0 / 6.0 - 2.0 / (3.0 * h));
        x = a / (a + b * (2.0 * w).exp());
    } else {
        let lna = (a / (a + b)).ln();
        let lnb = (b / (a + b)).ln();
        let t = (a * lna).exp() / a;
        let u = (b * lnb).exp() / b;
        let w = t + u;
        if p < t / w {
            x = (a * w * p).powf(1.0 / a);
        } else {
            x = 1.0 - (b * w * (1.0 - p)).powf(1.0 / b);
        }
    }
    let afac = -ln_beta(a, b);
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..100 {
        if x <= 0.0 || x >= 1.0 {
            x = 0.5 * (lo + hi);
        }
        let err = reg_inc_beta(a, b, x) - p;
        if err > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let t = ((a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() + afac).exp();
        let step = if t > 0.0 { err / t } else { 0.0 };
        let mut xn = x - step;
        if xn <= lo || xn >= hi || !xn.is_finite() {
            xn = 0.5 * (lo + hi);
        }
        if (xn - x).abs() < 1e-14 * x.abs().max(1e-14) {
            return xn;
        }
        x = xn;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert_close(ln_gamma(1.0), 0.0, 1e-13);
        assert_close(ln_gamma(2.0), 0.0, 1e-13);
        assert_close(ln_gamma(5.0), 24.0f64.ln(), 1e-13);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-13);
        // ln Γ(10.3) via the recurrence from Γ(1.3) = 0.897470696306277:
        // ln Γ(10.3) = ln(1.3·2.3·…·9.3) + ln Γ(1.3).
        let product: f64 = (0..9).map(|k| 1.3 + k as f64).product();
        let expected = product.ln() + 0.897_470_696_306_277_2f64.ln();
        assert_close(ln_gamma(10.3), expected, 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // ln Γ(x+1) = ln x + ln Γ(x)
        for &x in &[0.1, 0.7, 1.3, 4.9, 25.0, 171.0] {
            assert_close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn erf_matches_known_values() {
        assert_close(erf(0.0), 0.0, 1e-15);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
        assert_close(erf(0.5), 0.520_499_877_813_046_5, 1e-12);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-3.0, -1.0, -0.2, 0.0, 0.4, 1.7, 3.5] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-13);
        }
    }

    #[test]
    fn erfc_tail_precision() {
        // erfc(5) = 1.5374597944280348e-12 (reference value)
        let v = erfc(5.0);
        assert!(
            (v / 1.537_459_794_428_034_8e-12 - 1.0).abs() < 1e-8,
            "got {v}"
        );
    }

    #[test]
    fn incomplete_gamma_special_cases() {
        // P(1, x) = 1 - e^-x
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert_close(reg_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        assert_close(reg_gamma_p(0.5, 0.0), 0.0, 1e-15);
        assert_close(reg_gamma_q(2.5, 0.0), 1.0, 1e-15);
    }

    #[test]
    fn incomplete_gamma_p_plus_q_is_one() {
        for &a in &[0.3, 1.0, 2.5, 10.0] {
            for &x in &[0.01, 0.5, 1.0, 5.0, 25.0] {
                assert_close(reg_gamma_p(a, x) + reg_gamma_q(a, x), 1.0, 1e-13);
            }
        }
    }

    #[test]
    fn inc_beta_matches_known_values() {
        // I_x(1, 1) = x (uniform cdf)
        for &x in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_close(reg_inc_beta(1.0, 1.0, x), x, 1e-13);
        }
        // I_x(2, 2) = x^2 (3 - 2x)
        for &x in &[0.1, 0.4, 0.8] {
            assert_close(reg_inc_beta(2.0, 2.0, x), x * x * (3.0 - 2.0 * x), 1e-12);
        }
        // Reference: I_{0.3}(0.5, 0.5) = (2/π) asin(√0.3)
        let expected = 2.0 / std::f64::consts::PI * (0.3f64.sqrt()).asin();
        assert_close(reg_inc_beta(0.5, 0.5, 0.3), expected, 1e-12);
    }

    #[test]
    fn inc_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b) in &[(1.5, 3.0), (0.7, 0.7), (10.0, 2.0)] {
            for &x in &[0.1, 0.45, 0.77] {
                assert_close(
                    reg_inc_beta(a, b, x),
                    1.0 - reg_inc_beta(b, a, 1.0 - x),
                    1e-12,
                );
            }
        }
    }

    #[test]
    fn inv_inc_beta_roundtrip() {
        for &(a, b) in &[(0.5, 0.5), (1.0, 3.0), (5.0, 2.0), (30.0, 30.0), (0.3, 4.0)] {
            for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
                let x = inv_reg_inc_beta(a, b, p);
                assert_close(reg_inc_beta(a, b, x), p, 1e-9);
            }
        }
    }

    #[test]
    fn inv_inc_beta_endpoints() {
        assert_eq!(inv_reg_inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inv_reg_inc_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn ln_beta_matches_definition() {
        // B(2,3) = 1/12
        assert_close(ln_beta(2.0, 3.0), (1.0f64 / 12.0).ln(), 1e-13);
        // B(0.5,0.5) = π
        assert_close(ln_beta(0.5, 0.5), std::f64::consts::PI.ln(), 1e-13);
    }
}
