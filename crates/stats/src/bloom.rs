//! A deterministic Bloom filter — the map-side pre-filter behind
//! approximate joins.
//!
//! Before joining a big dataset against a small one, the engine builds
//! a Bloom filter over the small side's join keys and ships it to every
//! map task of the big side; records whose key cannot join are
//! discarded at the map, never shuffled. False positives only cost
//! wasted shuffle bytes (the reduce-side join still drops them), so
//! the filter never changes the join result — it only shrinks the
//! intermediate data, which is the entire point (ApproxJoin's filtering
//! stage).
//!
//! Everything here is seeded and uses stable from-scratch hashing
//! (FNV-1a double hashing), so the parent process and every worker
//! process rebuild **bit-identical** filters from the same key set —
//! a requirement for the backend-equivalence guarantees.

/// A fixed-size Bloom filter over byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
    seed: u64,
    inserted: u64,
}

/// Seeded FNV-1a. The seed is absorbed through the byte stream rather
/// than XORed into the basis: an XORed seed only translates the key
/// space, so two seeds differing in a few low bits would build
/// *identical* filters over dense integer key sets.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in seed.to_le_bytes().iter().chain(bytes) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl BloomFilter {
    /// Sizes a filter for `expected` keys at false-positive rate `fpr`,
    /// using the standard optima `m = -n·ln(p)/ln(2)²` and
    /// `k = (m/n)·ln(2)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fpr < 1`.
    pub fn with_capacity(expected: usize, fpr: f64, seed: u64) -> Self {
        assert!(fpr > 0.0 && fpr < 1.0, "fpr must lie in (0, 1), got {fpr}");
        let n = expected.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let num_bits = ((-n * fpr.ln() / (ln2 * ln2)).ceil() as u64).max(64);
        let num_hashes = ((num_bits as f64 / n * ln2).round() as u32).clamp(1, 16);
        BloomFilter {
            bits: vec![0u64; num_bits.div_ceil(64) as usize],
            num_bits,
            num_hashes,
            seed,
            inserted: 0,
        }
    }

    /// Kirsch–Mitzenmacher double hashing: bit `i` is
    /// `(h1 + i·h2) mod m`, with `h2` forced odd so the probe sequence
    /// cycles through distinct positions.
    fn bit_positions(&self, key: &[u8]) -> impl Iterator<Item = u64> + '_ {
        let h1 = fnv1a(self.seed, key);
        let h2 = fnv1a(self.seed ^ 0x9E37_79B9_7F4A_7C15, key) | 1;
        let m = self.num_bits;
        (0..self.num_hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % m)
    }

    /// Inserts `key`.
    pub fn insert(&mut self, key: &[u8]) {
        let positions: Vec<u64> = self.bit_positions(key).collect();
        for p in positions {
            self.bits[(p / 64) as usize] |= 1 << (p % 64);
        }
        self.inserted += 1;
    }

    /// Whether `key` may have been inserted (false positives possible,
    /// false negatives impossible).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.bit_positions(key)
            .all(|p| self.bits[(p / 64) as usize] & (1 << (p % 64)) != 0)
    }

    /// Number of bits `m`.
    pub fn num_bits(&self) -> u64 {
        self.num_bits
    }

    /// Number of hash functions `k`.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Number of keys inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// The expected false-positive rate at the current load:
    /// `(1 - e^(-kn/m))^k`.
    pub fn expected_fpr(&self) -> f64 {
        let k = self.num_hashes as f64;
        let n = self.inserted as f64;
        let m = self.num_bits as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }

    /// Serialises the filter to bytes (little-endian words after a
    /// small header), for shipping inside a job's params blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.bits.len() * 8);
        out.extend_from_slice(&self.num_bits.to_le_bytes());
        out.extend_from_slice(&self.num_hashes.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.inserted.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Rebuilds a filter from [`BloomFilter::to_bytes`] output. Returns
    /// `None` on a malformed buffer (wrong length, inconsistent header).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 28 {
            return None;
        }
        let num_bits = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let num_hashes = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
        let seed = u64::from_le_bytes(bytes[12..20].try_into().ok()?);
        let inserted = u64::from_le_bytes(bytes[20..28].try_into().ok()?);
        let words = num_bits.div_ceil(64) as usize;
        if num_bits == 0 || num_hashes == 0 || bytes.len() != 28 + words * 8 {
            return None;
        }
        let bits = bytes[28..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Some(BloomFilter {
            bits,
            num_bits,
            num_hashes,
            seed,
            inserted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(1000, 0.01, 7);
        for i in 0..1000u64 {
            f.insert(&i.to_le_bytes());
        }
        for i in 0..1000u64 {
            assert!(f.contains(&i.to_le_bytes()), "lost key {i}");
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut f = BloomFilter::with_capacity(10_000, 0.01, 11);
        for i in 0..10_000u64 {
            f.insert(&i.to_le_bytes());
        }
        let fp = (10_000..110_000u64)
            .filter(|i| f.contains(&i.to_le_bytes()))
            .count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.03, "false-positive rate {rate} far above target");
        assert!(f.expected_fpr() < 0.02);
    }

    #[test]
    fn deterministic_across_builds() {
        let build = || {
            let mut f = BloomFilter::with_capacity(100, 0.05, 3);
            for i in 0..100u64 {
                f.insert(&(i * 17).to_le_bytes());
            }
            f
        };
        assert_eq!(build(), build());
        assert_eq!(build().to_bytes(), build().to_bytes());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut f = BloomFilter::with_capacity(64, 0.02, 99);
        for w in ["alpha", "beta", "gamma"] {
            f.insert(w.as_bytes());
        }
        let back = BloomFilter::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
        assert!(back.contains(b"alpha"));
        assert!(!back.contains(b"missing-key-zzz") || back.expected_fpr() > 0.0);
    }

    #[test]
    fn malformed_bytes_rejected() {
        let f = BloomFilter::with_capacity(10, 0.1, 1);
        let good = f.to_bytes();
        assert!(BloomFilter::from_bytes(&good[..good.len() - 1]).is_none());
        assert!(BloomFilter::from_bytes(&good[..10]).is_none());
        assert!(BloomFilter::from_bytes(&[]).is_none());
        let mut bad = good.clone();
        bad[0] = 0xFF; // inconsistent num_bits vs payload length
        assert!(BloomFilter::from_bytes(&bad).is_none());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = BloomFilter::with_capacity(100, 0.05, 1);
        let mut b = BloomFilter::with_capacity(100, 0.05, 2);
        for i in 0..100u64 {
            a.insert(&i.to_le_bytes());
            b.insert(&i.to_le_bytes());
        }
        assert_ne!(a.bits, b.bits);
    }
}
