//! Student's t-distribution.
//!
//! The multi-stage-sampling error bound (paper Eq. 2) is
//! `ε = t_{n-1, 1-α/2} · sqrt(Var(τ̂))`; this module provides that
//! quantile for any degrees of freedom.

use crate::dist::ContinuousDistribution;
use crate::special::{inv_reg_inc_beta, ln_gamma, reg_inc_beta};

/// Student's t-distribution with `ν` degrees of freedom.
///
/// # Example
///
/// ```
/// use approxhadoop_stats::dist::{ContinuousDistribution, StudentT};
///
/// // The classic t-table value: t_{0.975} with 10 degrees of freedom.
/// let t = StudentT::new(10.0);
/// assert!((t.quantile(0.975) - 2.228).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// Creates a t-distribution with `df` degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `df <= 0` or `df` is non-finite.
    pub fn new(df: f64) -> Self {
        assert!(df.is_finite() && df > 0.0, "df must be positive and finite");
        StudentT { df }
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// The two-sided critical value `t_{ν, 1-α/2}` used for a confidence
    /// interval at level `confidence = 1 - α`.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1)`.
    pub fn two_sided_critical_value(&self, confidence: f64) -> f64 {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must lie in (0,1), got {confidence}"
        );
        let alpha = 1.0 - confidence;
        self.quantile(1.0 - alpha / 2.0)
    }
}

/// Memoised [`StudentT::two_sided_critical_value`].
///
/// Error-bound evaluation in a reduce task computes the *same* critical
/// value for every intermediate key (they share the cluster count), and
/// the Section 4.4 planner probes thousands of `n₂` candidates; the
/// inverse incomplete beta behind each call is by far the hot spot.
/// A thread-local table keyed on `(df, confidence)` bits removes it.
pub fn cached_two_sided_critical_value(df: f64, confidence: f64) -> f64 {
    use std::cell::RefCell;
    use std::collections::HashMap;
    thread_local! {
        static CACHE: RefCell<HashMap<(u64, u64), f64>> = RefCell::new(HashMap::new());
    }
    let key = (df.to_bits(), confidence.to_bits());
    CACHE.with(|c| {
        if let Some(&v) = c.borrow().get(&key) {
            return v;
        }
        let v = StudentT::new(df).two_sided_critical_value(confidence);
        let mut cache = c.borrow_mut();
        if cache.len() > 65_536 {
            cache.clear(); // unbounded workloads: reset rather than grow
        }
        cache.insert(key, v);
        v
    })
}

impl ContinuousDistribution for StudentT {
    fn pdf(&self, x: f64) -> f64 {
        let v = self.df;
        let ln_c =
            ln_gamma((v + 1.0) / 2.0) - ln_gamma(v / 2.0) - 0.5 * (v * std::f64::consts::PI).ln();
        (ln_c - (v + 1.0) / 2.0 * (1.0 + x * x / v).ln()).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        let v = self.df;
        if x == 0.0 {
            return 0.5;
        }
        // P(T <= x) via the incomplete beta: for x > 0,
        // cdf = 1 - I_{v/(v+x²)}(v/2, 1/2) / 2.
        let ib = reg_inc_beta(v / 2.0, 0.5, v / (v + x * x));
        if x > 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        if (p - 0.5).abs() < 1e-16 {
            return 0.0;
        }
        let v = self.df;
        // For p > 0.5: solve I_z(v/2, 1/2) = 2(1-p) with z = v/(v+t²).
        let tail = if p > 0.5 { 2.0 * (1.0 - p) } else { 2.0 * p };
        let z = inv_reg_inc_beta(v / 2.0, 0.5, tail);
        let t = (v * (1.0 - z) / z).sqrt();
        if p > 0.5 {
            t
        } else {
            -t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from standard t-tables (two-sided 95%, i.e. the
    /// 0.975 quantile).
    #[test]
    fn t_table_97_5_percent() {
        let cases = [
            (1.0, 12.706),
            (2.0, 4.303),
            (3.0, 3.182),
            (5.0, 2.571),
            (10.0, 2.228),
            (20.0, 2.086),
            (30.0, 2.042),
            (120.0, 1.980),
        ];
        for (df, expected) in cases {
            let t = StudentT::new(df).quantile(0.975);
            assert!(
                (t - expected).abs() < 2e-3,
                "df={df}: expected {expected}, got {t}"
            );
        }
    }

    #[test]
    fn t_table_99_5_percent() {
        let cases = [(1.0, 63.657), (5.0, 4.032), (10.0, 3.169), (30.0, 2.750)];
        for (df, expected) in cases {
            let t = StudentT::new(df).quantile(0.995);
            assert!(
                (t - expected).abs() < 2e-3,
                "df={df}: expected {expected}, got {t}"
            );
        }
    }

    #[test]
    fn converges_to_normal_for_large_df() {
        let t = StudentT::new(1e7);
        assert!((t.quantile(0.975) - 1.959_964).abs() < 1e-3);
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        for &df in &[1.0, 2.5, 7.0, 40.0] {
            let t = StudentT::new(df);
            for &p in &[0.01, 0.1, 0.25, 0.5, 0.6, 0.9, 0.99] {
                let x = t.quantile(p);
                assert!((t.cdf(x) - p).abs() < 1e-9, "df={df} p={p}");
            }
        }
    }

    #[test]
    fn symmetry() {
        let t = StudentT::new(6.0);
        for &p in &[0.05, 0.2, 0.4] {
            assert!((t.quantile(p) + t.quantile(1.0 - p)).abs() < 1e-10);
        }
        for &x in &[0.3, 1.0, 2.5] {
            assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pdf_matches_cdf_derivative() {
        let t = StudentT::new(4.0);
        // Larger step: near x = 0 the cdf's incomplete-beta argument sits
        // at the edge of its domain and tiny differences lose precision.
        let h = 1e-4;
        for &x in &[-2.0, -0.5, 0.1, 1.3] {
            let slope = (t.cdf(x + h) - t.cdf(x - h)) / (2.0 * h);
            assert!((slope - t.pdf(x)).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn two_sided_critical_value_matches_quantile() {
        let t = StudentT::new(9.0);
        assert_eq!(t.two_sided_critical_value(0.95), t.quantile(0.975));
    }

    #[test]
    #[should_panic]
    fn rejects_zero_df() {
        StudentT::new(0.0);
    }
}
