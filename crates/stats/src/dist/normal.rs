//! The normal (Gaussian) distribution.

use crate::dist::ContinuousDistribution;
use crate::special::{erf, erfc};

/// A normal distribution `N(mean, std²)`.
///
/// # Example
///
/// ```
/// use approxhadoop_stats::dist::{ContinuousDistribution, Normal};
///
/// let n = Normal::standard();
/// assert!((n.cdf(1.96) - 0.975).abs() < 1e-4);
/// assert!((n.quantile(0.975) - 1.959964).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std <= 0` or either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            mean.is_finite() && std.is_finite(),
            "parameters must be finite"
        );
        assert!(std > 0.0, "std must be positive, got {std}");
        Normal { mean, std }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Quantile of the standard normal via the Acklam rational
    /// approximation, refined with one Halley step against `erfc` for
    /// near machine precision.
    fn standard_quantile(p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        // Acklam's coefficients.
        const A: [f64; 6] = [
            -3.969_683_028_665_376e1,
            2.209_460_984_245_205e2,
            -2.759_285_104_469_687e2,
            1.383_577_518_672_69e2,
            -3.066_479_806_614_716e1,
            2.506_628_277_459_239,
        ];
        const B: [f64; 5] = [
            -5.447_609_879_822_406e1,
            1.615_858_368_580_409e2,
            -1.556_989_798_598_866e2,
            6.680_131_188_771_972e1,
            -1.328_068_155_288_572e1,
        ];
        const C: [f64; 6] = [
            -7.784_894_002_430_293e-3,
            -3.223_964_580_411_365e-1,
            -2.400_758_277_161_838,
            -2.549_732_539_343_734,
            4.374_664_141_464_968,
            2.938_163_982_698_783,
        ];
        const D: [f64; 4] = [
            7.784_695_709_041_462e-3,
            3.224_671_290_700_398e-1,
            2.445_134_137_142_996,
            3.754_408_661_907_416,
        ];
        const P_LOW: f64 = 0.02425;
        let x = if p < P_LOW {
            let q = (-2.0 * p.ln()).sqrt();
            (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        } else if p <= 1.0 - P_LOW {
            let q = p - 0.5;
            let r = q * q;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        } else {
            let q = (-2.0 * (1.0 - p).ln()).sqrt();
            -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        };
        // One Halley refinement using the exact cdf.
        let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
        let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
        x - u / (1.0 + x * u / 2.0)
    }
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        (-(z * z) / 2.0).exp() / (self.std * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mean + self.std * Normal::standard_quantile(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_cdf_known_values() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((n.cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-12);
        assert!((n.cdf(-1.0) - 0.158_655_253_931_457_05).abs() < 1e-12);
        assert!((n.cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
    }

    #[test]
    fn quantile_known_values() {
        let n = Normal::standard();
        assert!((n.quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-9);
        assert!((n.quantile(0.5)).abs() < 1e-12);
        assert!((n.quantile(0.025) + 1.959_963_984_540_054).abs() < 1e-9);
        assert!((n.quantile(0.995) - 2.575_829_303_548_901).abs() < 1e-9);
        assert!((n.quantile(1e-6) + 4.753_424_308_822_899).abs() < 1e-7);
    }

    #[test]
    fn quantile_cdf_roundtrip() {
        let n = Normal::new(10.0, 3.0);
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-11, "p={p}");
        }
    }

    #[test]
    fn pdf_integrates_to_cdf_slope() {
        let n = Normal::new(-2.0, 0.5);
        let h = 1e-6;
        for &x in &[-3.0, -2.0, -1.5, 0.0] {
            let slope = (n.cdf(x + h) - n.cdf(x - h)) / (2.0 * h);
            assert!((slope - n.pdf(x)).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_std() {
        Normal::new(0.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_zero() {
        Normal::standard().quantile(0.0);
    }
}
