//! Probability distributions: Normal, Student-t, and Generalized Extreme
//! Value (GEV).

mod gev;
mod normal;
mod student_t;

pub use gev::Gev;
pub use normal::Normal;
pub use student_t::{cached_two_sided_critical_value, StudentT};

/// A univariate continuous distribution with density, cumulative
/// distribution, and quantile (inverse cdf) functions.
pub trait ContinuousDistribution {
    /// Probability density function at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;
    /// Quantile function: the `x` with `cdf(x) = p`, for `p ∈ (0, 1)`.
    fn quantile(&self, p: f64) -> f64;
}
