//! The Generalized Extreme Value (GEV) distribution.
//!
//! By the Fisher–Tippett–Gnedenko theorem, block maxima of IID samples
//! converge to a GEV; ApproxHadoop uses a fitted GEV to estimate min/max
//! reduces with confidence intervals when map tasks are dropped.

use crate::dist::ContinuousDistribution;

/// A GEV distribution with location `mu`, scale `sigma` and shape `xi`.
///
/// The cdf (for maxima) is `F(x) = exp(-t(x))` with
/// `t(x) = (1 + ξ·(x-μ)/σ)^(-1/ξ)` when `ξ ≠ 0` and
/// `t(x) = exp(-(x-μ)/σ)` in the Gumbel limit `ξ = 0`.
///
/// # Example
///
/// ```
/// use approxhadoop_stats::dist::{ContinuousDistribution, Gev};
///
/// let g = Gev::new(0.0, 1.0, 0.0); // Gumbel
/// // F(μ) = exp(-1) for a Gumbel.
/// assert!((g.cdf(0.0) - (-1.0f64).exp()).abs() < 1e-12);
/// let q = g.quantile(0.5);
/// assert!((g.cdf(q) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gev {
    mu: f64,
    sigma: f64,
    xi: f64,
}

/// Shape values with absolute value below this are treated as the Gumbel
/// (`ξ = 0`) limit for numerical stability.
const XI_EPS: f64 = 1e-9;

impl Gev {
    /// Creates a GEV distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or any parameter is non-finite.
    pub fn new(mu: f64, sigma: f64, xi: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && xi.is_finite(),
            "GEV parameters must be finite"
        );
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        Gev { mu, sigma, xi }
    }

    /// Location parameter μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Shape parameter ξ.
    pub fn xi(&self) -> f64 {
        self.xi
    }

    /// Lower endpoint of the support (`-∞` when `ξ <= 0`).
    pub fn support_lo(&self) -> f64 {
        if self.xi > XI_EPS {
            self.mu - self.sigma / self.xi
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Upper endpoint of the support (`+∞` when `ξ >= 0`).
    pub fn support_hi(&self) -> f64 {
        if self.xi < -XI_EPS {
            self.mu - self.sigma / self.xi
        } else {
            f64::INFINITY
        }
    }

    /// The auxiliary `t(x)` with cdf `exp(-t(x))`; returns `+∞` below the
    /// support and `0` above it.
    fn t(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        if self.xi.abs() < XI_EPS {
            (-z).exp()
        } else {
            let u = 1.0 + self.xi * z;
            if u <= 0.0 {
                if self.xi > 0.0 {
                    // Below the lower endpoint: cdf = 0.
                    f64::INFINITY
                } else {
                    // Above the upper endpoint: cdf = 1.
                    0.0
                }
            } else {
                u.powf(-1.0 / self.xi)
            }
        }
    }

    /// Negative log-likelihood of IID observations under this GEV; `+∞`
    /// if any observation falls outside the support.
    pub fn neg_log_likelihood(&self, data: &[f64]) -> f64 {
        let mut nll = data.len() as f64 * self.sigma.ln();
        for &x in data {
            let z = (x - self.mu) / self.sigma;
            if self.xi.abs() < XI_EPS {
                nll += z + (-z).exp();
            } else {
                let u = 1.0 + self.xi * z;
                if u <= 1e-12 {
                    return f64::INFINITY;
                }
                nll += (1.0 + 1.0 / self.xi) * u.ln() + u.powf(-1.0 / self.xi);
            }
        }
        nll
    }
}

impl ContinuousDistribution for Gev {
    fn pdf(&self, x: f64) -> f64 {
        let t = self.t(x);
        if !t.is_finite() || t == 0.0 {
            return 0.0;
        }
        t.powf(1.0 + self.xi) * (-t).exp() / self.sigma
    }

    fn cdf(&self, x: f64) -> f64 {
        (-self.t(x)).exp()
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        let y = -p.ln(); // so that exp(-y) = p
        if self.xi.abs() < XI_EPS {
            self.mu - self.sigma * y.ln()
        } else {
            self.mu + self.sigma * (y.powf(-self.xi) - 1.0) / self.xi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gumbel_cdf_known_value() {
        // Gumbel: F(μ) = exp(-1) ≈ 0.3679
        let g = Gev::new(2.0, 1.5, 0.0);
        assert!((g.cdf(2.0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn quantile_cdf_roundtrip_all_shapes() {
        for &xi in &[-0.4, -0.1, 0.0, 0.1, 0.5, 1.2] {
            let g = Gev::new(1.0, 2.0, xi);
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let x = g.quantile(p);
                assert!(
                    (g.cdf(x) - p).abs() < 1e-10,
                    "xi={xi} p={p}: got cdf={}",
                    g.cdf(x)
                );
            }
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let g = Gev::new(0.0, 1.0, 0.3);
        let mut prev = -1.0;
        let mut x = g.support_lo() + 0.01;
        while x < 20.0 {
            let c = g.cdf(x);
            assert!(c >= prev);
            prev = c;
            x += 0.25;
        }
    }

    #[test]
    fn support_endpoints() {
        // ξ > 0: bounded below at μ - σ/ξ.
        let g = Gev::new(0.0, 1.0, 0.5);
        assert_eq!(g.support_lo(), -2.0);
        assert_eq!(g.support_hi(), f64::INFINITY);
        assert_eq!(g.cdf(-2.5), 0.0);
        assert_eq!(g.pdf(-2.5), 0.0);
        // ξ < 0: bounded above at μ - σ/ξ.
        let g = Gev::new(0.0, 1.0, -0.5);
        assert_eq!(g.support_hi(), 2.0);
        assert_eq!(g.support_lo(), f64::NEG_INFINITY);
        assert!((g.cdf(2.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pdf_matches_cdf_derivative() {
        for &xi in &[-0.2, 0.0, 0.3] {
            let g = Gev::new(0.5, 2.0, xi);
            let h = 1e-6;
            for &x in &[0.0, 1.0, 3.0] {
                let slope = (g.cdf(x + h) - g.cdf(x - h)) / (2.0 * h);
                assert!(
                    (slope - g.pdf(x)).abs() < 1e-6,
                    "xi={xi} x={x}: slope={slope} pdf={}",
                    g.pdf(x)
                );
            }
        }
    }

    #[test]
    fn nll_finite_inside_support_infinite_outside() {
        let g = Gev::new(0.0, 1.0, 0.5); // support is [-2, ∞)
        assert!(g.neg_log_likelihood(&[0.0, 1.0, 5.0]).is_finite());
        assert_eq!(g.neg_log_likelihood(&[-3.0]), f64::INFINITY);
    }

    #[test]
    fn gumbel_limit_is_continuous_in_xi() {
        // NLL and quantiles at ξ = ±1e-10 should match ξ = 0 closely.
        let data = [0.3, 1.2, -0.4, 2.2, 0.9];
        let g0 = Gev::new(0.0, 1.0, 0.0);
        let gp = Gev::new(0.0, 1.0, 1e-10);
        assert!((g0.neg_log_likelihood(&data) - gp.neg_log_likelihood(&data)).abs() < 1e-6);
        assert!((g0.quantile(0.3) - gp.quantile(0.3)).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_sigma() {
        Gev::new(0.0, -1.0, 0.0);
    }
}
