//! Stratified estimation over two-stage cluster samples — the
//! statistics behind approximate joins.
//!
//! A join aggregate grouped by join key (or by any category of the
//! joining records) is a **stratified** population: each category is a
//! stratum, estimated independently from the same sampled clusters,
//! and the whole-join aggregate is the sum of the strata. Because the
//! per-stratum estimators are (approximately) independent, the
//! combined error bound adds in quadrature:
//!
//! ```text
//! τ̂ = Σ_k τ̂_k        ε = sqrt(Σ_k ε_k²)
//! ```
//!
//! Each stratum gets its own [`TwoStageEstimator`] fed with
//! indicator-weighted cluster observations: a sampled unit that does
//! not belong to stratum `k` counts as a zero-valued unit of stratum
//! `k`'s estimator, exactly like the paper's treatment of keys a unit
//! did not emit (Section 3.1). That keeps every stratum's `m_i`/`M_i`
//! identical to the cluster's and Eq. 1–3 valid per stratum.
//!
//! [`StratifiedSampler`] is the matching sampling primitive: a
//! deterministic per-stratum systematic sampler, so a rare stratum is
//! sampled at the same ratio as a popular one instead of being starved
//! by a global stream.

use std::collections::BTreeMap;

use crate::interval::Interval;
use crate::multistage::{ClusterObservation, TwoStageEstimator};
use crate::{Result, StatsError};

/// Combines independent per-stratum intervals into one interval for
/// the population total: estimates add, half-widths add in quadrature.
///
/// An empty slice combines to the exact zero interval at the given
/// confidence. Infinite half-widths (single-cluster strata) propagate
/// to an infinite combined half-width, as they must.
pub fn combine_strata(intervals: &[Interval], confidence: f64) -> Interval {
    let estimate: f64 = intervals.iter().map(|i| i.estimate).sum();
    let var: f64 = intervals.iter().map(|i| i.half_width * i.half_width).sum();
    Interval::new(estimate, var.sqrt(), confidence)
}

/// Stratified two-stage estimator: one [`TwoStageEstimator`] per
/// stratum over a shared cluster population of `total_clusters`.
///
/// Strata are keyed by an ordered key type so iteration (and therefore
/// output) is deterministic.
#[derive(Debug, Clone)]
pub struct StratifiedEstimator<K: Ord + Clone> {
    total_clusters: u64,
    strata: BTreeMap<K, TwoStageEstimator>,
}

impl<K: Ord + Clone> StratifiedEstimator<K> {
    /// An estimator over a population of `total_clusters` clusters
    /// (`N` in Eq. 1), shared by every stratum.
    pub fn new(total_clusters: u64) -> Self {
        StratifiedEstimator {
            total_clusters,
            strata: BTreeMap::new(),
        }
    }

    /// Records one cluster observation for `stratum`. The observation's
    /// `total_units`/`sampled_units` must be the *cluster's* counts —
    /// units outside the stratum are zero-valued, not absent.
    pub fn push(&mut self, stratum: K, obs: ClusterObservation) {
        let n = self.total_clusters;
        self.strata
            .entry(stratum)
            .or_insert_with(|| TwoStageEstimator::new(n))
            .push(obs);
    }

    /// Number of strata observed so far.
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// The per-stratum estimators, in key order.
    pub fn strata(&self) -> impl Iterator<Item = (&K, &TwoStageEstimator)> {
        self.strata.iter()
    }

    /// Per-stratum intervals at `confidence`, in key order.
    pub fn estimate_strata(&self, confidence: f64) -> Result<Vec<(K, Interval)>> {
        self.strata
            .iter()
            .map(|(k, est)| Ok((k.clone(), est.estimate(confidence)?)))
            .collect()
    }

    /// The combined interval for the sum over all strata: per-stratum
    /// estimates added, half-widths added in quadrature. Errors when no
    /// stratum has been observed.
    pub fn estimate_combined(&self, confidence: f64) -> Result<Interval> {
        if self.strata.is_empty() {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        let intervals: Vec<Interval> = self
            .strata
            .values()
            .map(|est| est.estimate(confidence))
            .collect::<Result<_>>()?;
        Ok(combine_strata(&intervals, confidence))
    }
}

/// FNV-1a over bytes; the stable hash behind the sampler's per-stratum
/// offsets (the std hasher is not guaranteed stable across releases,
/// and the offsets must reproduce bit-identically on every backend).
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    // Absorb the seed through the stream (not XORed into the basis, so
    // nearby seeds still give unrelated offsets).
    for &b in seed.to_le_bytes().iter().chain(bytes) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic per-stratum systematic sampler: within each stratum's
/// own item stream, keeps one of every `stride` items starting at an
/// offset derived from `(seed, stratum)`.
///
/// Two properties matter for approximate joins:
///
/// * **proportionality** — every stratum is sampled at ratio
///   `1/stride`, so rare join keys keep the same expansion factor as
///   popular ones;
/// * **determinism** — the kept set is a pure function of
///   `(seed, stride, offer order)`, so re-executed attempts and
///   different backends select identical samples.
#[derive(Debug, Clone)]
pub struct StratifiedSampler<K: Ord + Clone> {
    stride: u64,
    seed: u64,
    /// Per stratum: `(offset, offered so far)`.
    state: BTreeMap<K, (u64, u64)>,
}

impl<K: Ord + Clone + AsRef<[u8]>> StratifiedSampler<K> {
    /// A sampler keeping one of every `stride` items per stratum.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn new(stride: u64, seed: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        StratifiedSampler {
            stride,
            seed,
            state: BTreeMap::new(),
        }
    }

    /// Builds a sampler from a ratio, i.e. `stride = round(1/ratio)`
    /// (clamped to at least 1, so `ratio = 1` keeps everything).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1`.
    pub fn from_ratio(ratio: f64, seed: u64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "ratio must lie in (0, 1], got {ratio}"
        );
        Self::new(((1.0 / ratio).round() as u64).max(1), seed)
    }

    /// The per-stratum stride `k`.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Offers one item of `stratum`; returns whether it is kept.
    pub fn offer(&mut self, stratum: &K) -> bool {
        let stride = self.stride;
        let seed = self.seed;
        let (offset, seen) = self
            .state
            .entry(stratum.clone())
            .or_insert_with(|| (fnv1a(seed, stratum.as_ref()) % stride, 0));
        let keep = *seen % stride == *offset;
        *seen += 1;
        keep
    }

    /// Per-stratum `(offered, kept)` counts in key order — the
    /// `(M_i, m_i)`-style bookkeeping a caller feeds to
    /// [`StratifiedEstimator`].
    pub fn counts(&self) -> Vec<(K, u64, u64)> {
        self.state
            .iter()
            .map(|(k, &(offset, seen))| {
                let kept = if seen == 0 {
                    0
                } else {
                    (seen + self.stride - 1 - offset) / self.stride
                };
                (k.clone(), seen, kept)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(id: u64, total: u64, sampled: u64, sum: f64) -> ClusterObservation {
        ClusterObservation {
            cluster_id: id,
            total_units: total,
            sampled_units: sampled,
            sum,
            sum_sq: sum * sum / sampled.max(1) as f64,
        }
    }

    #[test]
    fn combine_adds_estimates_and_quadratures_errors() {
        let a = Interval::new(100.0, 3.0, 0.95);
        let b = Interval::new(50.0, 4.0, 0.95);
        let c = combine_strata(&[a, b], 0.95);
        assert_eq!(c.estimate, 150.0);
        assert!((c.half_width - 5.0).abs() < 1e-12);
    }

    #[test]
    fn combine_of_nothing_is_exact_zero() {
        let c = combine_strata(&[], 0.95);
        assert_eq!(c.estimate, 0.0);
        assert_eq!(c.half_width, 0.0);
    }

    #[test]
    fn combine_propagates_infinite_half_widths() {
        let a = Interval::new(10.0, f64::INFINITY, 0.95);
        let b = Interval::new(5.0, 1.0, 0.95);
        assert!(combine_strata(&[a, b], 0.95).half_width.is_infinite());
    }

    #[test]
    fn stratified_census_is_exact_per_stratum_and_combined() {
        let mut est = StratifiedEstimator::new(2);
        for cluster in 0..2u64 {
            est.push("a", obs(cluster, 10, 10, 100.0));
            est.push("b", obs(cluster, 10, 10, 30.0));
        }
        let strata = est.estimate_strata(0.95).unwrap();
        assert_eq!(strata.len(), 2);
        for (_, i) in &strata {
            assert_eq!(i.half_width, 0.0);
        }
        let combined = est.estimate_combined(0.95).unwrap();
        assert_eq!(combined.estimate, 260.0);
        assert_eq!(combined.half_width, 0.0);
    }

    #[test]
    fn stratified_sampling_covers_truth() {
        // 10 clusters of 100 units; stratum "a" units are worth 2.0,
        // stratum "b" units worth 5.0, half of each per cluster. Sample
        // 5 clusters at 50 units each.
        let mut est = StratifiedEstimator::new(10);
        for cluster in 0..5u64 {
            est.push("a", obs(cluster, 100, 50, 2.0 * 25.0));
            est.push("b", obs(cluster, 100, 50, 5.0 * 25.0));
        }
        let combined = est.estimate_combined(0.95).unwrap();
        let truth = 10.0 * (2.0 * 50.0 + 5.0 * 50.0);
        assert!(
            (combined.estimate - truth).abs() <= combined.half_width.max(1e-9),
            "estimate {} ± {} misses truth {}",
            combined.estimate,
            combined.half_width,
            truth
        );
    }

    #[test]
    fn empty_estimator_errors() {
        let est: StratifiedEstimator<&str> = StratifiedEstimator::new(4);
        assert!(est.estimate_combined(0.95).is_err());
    }

    #[test]
    fn sampler_keeps_one_in_stride_per_stratum() {
        let mut s = StratifiedSampler::from_ratio(0.1, 42);
        assert_eq!(s.stride(), 10);
        let mut kept_a = 0u64;
        let mut kept_b = 0u64;
        for _ in 0..1000 {
            if s.offer(&"a") {
                kept_a += 1;
            }
        }
        for _ in 0..50 {
            if s.offer(&"b") {
                kept_b += 1;
            }
        }
        assert_eq!(kept_a, 100);
        assert_eq!(kept_b, 5);
        let counts = s.counts();
        assert_eq!(counts, vec![("a", 1000, 100), ("b", 50, 5)]);
    }

    #[test]
    fn sampler_is_deterministic_in_seed_and_order() {
        let run = |seed| {
            let mut s = StratifiedSampler::new(7, seed);
            (0..100)
                .map(|i| s.offer(if i % 3 == 0 { &"x" } else { &"y" }))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds should shift offsets");
    }

    #[test]
    fn ratio_one_keeps_everything() {
        let mut s = StratifiedSampler::from_ratio(1.0, 9);
        for _ in 0..20 {
            assert!(s.offer(&"k"));
        }
    }
}
