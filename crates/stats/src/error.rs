//! Error type for statistical computations.

use std::fmt;

/// Errors produced by the statistical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// A parameter was outside its mathematical domain
    /// (e.g. a negative variance, a confidence level outside `(0, 1)`).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Not enough observations to produce an estimate
    /// (e.g. fewer than two sampled clusters for a variance).
    InsufficientData {
        /// Number of observations required.
        needed: usize,
        /// Number of observations available.
        got: usize,
    },
    /// An iterative numerical procedure failed to converge.
    NoConvergence {
        /// Name of the procedure (e.g. `"gev-mle"`).
        what: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A numerical operation produced a non-finite value.
    Numerical {
        /// Description of where the non-finite value appeared.
        context: &'static str,
    },
}

impl StatsError {
    /// Convenience constructor for [`StatsError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        StatsError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            StatsError::InsufficientData { needed, got } => {
                write!(
                    f,
                    "insufficient data: needed {needed} observations, got {got}"
                )
            }
            StatsError::NoConvergence { what, iterations } => {
                write!(f, "`{what}` did not converge after {iterations} iterations")
            }
            StatsError::Numerical { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StatsError::invalid("confidence", "must lie in (0, 1)");
        assert!(e.to_string().contains("confidence"));
        let e = StatsError::InsufficientData { needed: 2, got: 1 };
        assert!(e.to_string().contains("needed 2"));
        let e = StatsError::NoConvergence {
            what: "gev-mle",
            iterations: 500,
        };
        assert!(e.to_string().contains("gev-mle"));
        let e = StatsError::Numerical {
            context: "variance",
        };
        assert!(e.to_string().contains("variance"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
