//! Distinct-value (species-richness) estimation.
//!
//! The paper's Section 3.1 notes that online sampling can miss rarely
//! occurring intermediate keys entirely, and that "we could estimate the
//! overall number of keys … by extrapolating from a sample, as described
//! in [Haas et al., VLDB'95]". This module implements that extension:
//! given the *frequency-of-frequencies* of the sampled keys (how many
//! keys were seen once, twice, …), it estimates how many keys exist in
//! the whole population, including the unseen ones.
//!
//! Two classic estimators are provided:
//!
//! * **Chao1** — a lower-bound-style estimator
//!   `D̂ = d + f₁² / (2 f₂)`, robust when most unseen keys are rare;
//! * **first-order jackknife** — `D̂ = d + f₁ · (n-1)/n`, less biased on
//!   samples that cover a large fraction of the population.

use std::collections::HashMap;
use std::hash::Hash;

use crate::{Result, StatsError};

/// Frequency-of-frequencies summary of a sample: `f[k]` = number of
/// distinct values observed exactly `k` times.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrequencyCounts {
    counts: HashMap<u64, u64>,
    observed_distinct: u64,
    sample_size: u64,
}

impl FrequencyCounts {
    /// Builds the summary from per-value observation counts.
    pub fn from_counts<I: IntoIterator<Item = u64>>(per_value_counts: I) -> Self {
        let mut fc = FrequencyCounts::default();
        for c in per_value_counts {
            if c == 0 {
                continue;
            }
            *fc.counts.entry(c).or_default() += 1;
            fc.observed_distinct += 1;
            fc.sample_size += c;
        }
        fc
    }

    /// Builds the summary from a raw sample of values.
    pub fn from_sample<T: Eq + Hash, I: IntoIterator<Item = T>>(sample: I) -> Self {
        let mut per_value: HashMap<T, u64> = HashMap::new();
        for v in sample {
            *per_value.entry(v).or_default() += 1;
        }
        Self::from_counts(per_value.into_values())
    }

    /// Number of distinct values observed (`d`).
    pub fn observed_distinct(&self) -> u64 {
        self.observed_distinct
    }

    /// Total observations (`n`).
    pub fn sample_size(&self) -> u64 {
        self.sample_size
    }

    /// `f_k` — values seen exactly `k` times.
    pub fn seen_exactly(&self, k: u64) -> u64 {
        self.counts.get(&k).copied().unwrap_or(0)
    }
}

/// The Chao1 estimate of the total number of distinct values:
/// `D̂ = d + f₁² / (2 f₂)` (with the bias-corrected form
/// `d + f₁(f₁-1)/2` when no value was seen twice).
///
/// Returns an error for an empty sample.
pub fn chao1(fc: &FrequencyCounts) -> Result<f64> {
    if fc.observed_distinct == 0 {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    let d = fc.observed_distinct as f64;
    let f1 = fc.seen_exactly(1) as f64;
    let f2 = fc.seen_exactly(2) as f64;
    Ok(if f2 > 0.0 {
        d + f1 * f1 / (2.0 * f2)
    } else {
        d + f1 * (f1 - 1.0) / 2.0
    })
}

/// The first-order jackknife estimate:
/// `D̂ = d + f₁ · (n - 1) / n`.
pub fn jackknife1(fc: &FrequencyCounts) -> Result<f64> {
    if fc.observed_distinct == 0 || fc.sample_size == 0 {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    let n = fc.sample_size as f64;
    Ok(fc.observed_distinct as f64 + fc.seen_exactly(1) as f64 * (n - 1.0) / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn frequency_counts_from_sample() {
        let fc = FrequencyCounts::from_sample(vec!["a", "b", "a", "c", "a", "b"]);
        assert_eq!(fc.observed_distinct(), 3);
        assert_eq!(fc.sample_size(), 6);
        assert_eq!(fc.seen_exactly(1), 1); // c
        assert_eq!(fc.seen_exactly(2), 1); // b
        assert_eq!(fc.seen_exactly(3), 1); // a
    }

    #[test]
    fn zero_counts_are_skipped() {
        let fc = FrequencyCounts::from_counts(vec![0, 3, 0, 1]);
        assert_eq!(fc.observed_distinct(), 2);
        assert_eq!(fc.sample_size(), 4);
    }

    #[test]
    fn full_census_estimates_observed() {
        // Every value seen many times → no singletons → D̂ = d.
        let fc = FrequencyCounts::from_counts(vec![10, 20, 30]);
        assert_eq!(chao1(&fc).unwrap(), 3.0);
        assert_eq!(jackknife1(&fc).unwrap(), 3.0);
    }

    #[test]
    fn empty_sample_errors() {
        let fc = FrequencyCounts::default();
        assert!(chao1(&fc).is_err());
        assert!(jackknife1(&fc).is_err());
    }

    #[test]
    fn estimators_recover_uniform_population() {
        // 1 000 equally likely values, sample 1 500 draws with
        // replacement: many values unseen; Chao1 should land far closer
        // to 1 000 than the observed count.
        let mut rng = StdRng::seed_from_u64(7);
        let sample: Vec<u32> = (0..1500).map(|_| rng.gen_range(0..1000)).collect();
        let fc = FrequencyCounts::from_sample(sample);
        let observed = fc.observed_distinct() as f64;
        assert!(observed < 900.0, "sample should miss values ({observed})");
        let chao = chao1(&fc).unwrap();
        assert!(
            (850.0..1250.0).contains(&chao),
            "chao1 {chao} should approach 1000 (observed {observed})"
        );
        assert!(chao > observed);
        let jk = jackknife1(&fc).unwrap();
        assert!(jk > observed && jk < 1500.0);
    }

    #[test]
    fn chao1_bias_corrected_without_doubletons() {
        // 3 singletons, no doubletons: D̂ = 3 + 3·2/2 = 6.
        let fc = FrequencyCounts::from_counts(vec![1, 1, 1]);
        assert_eq!(chao1(&fc).unwrap(), 6.0);
    }
}
