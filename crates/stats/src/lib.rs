//! Statistical substrate for ApproxHadoop-RS.
//!
//! This crate implements, from scratch, every piece of statistics the
//! ApproxHadoop paper (ASPLOS 2015) relies on:
//!
//! * **Multi-stage cluster sampling** ([`multistage`]) — the theory behind
//!   error bounds for aggregation reduces (sum, count, mean, ratio) when
//!   map tasks are dropped (cluster sampling) and/or input data items are
//!   sampled within a block (second-stage sampling). Equations (1)–(3) and
//!   (6)–(7) of the paper.
//! * **Extreme value theory** ([`gev`]) — Generalized Extreme Value
//!   fitting via Block Minima/Maxima + maximum likelihood, used to bound
//!   errors of min/max reduces when map tasks are dropped.
//! * **Distributions** ([`dist`]) — Normal, Student-t and GEV with pdf,
//!   cdf and quantile functions, built on from-scratch [`special`]
//!   functions (ln-gamma, incomplete beta/gamma, error function).
//! * **Numerical optimisation** ([`opt`]) — Nelder–Mead simplex (for the
//!   GEV MLE), bisection and golden-section search (for the paper's
//!   runtime-minimisation problem of Section 4.4).
//! * **Sampling primitives** ([`sampling`]) — Bernoulli, systematic and
//!   reservoir samplers plus a bounded Zipf generator used by the
//!   synthetic workloads.
//! * **Stratified estimation** ([`stratified`]) — per-stratum two-stage
//!   estimators with quadrature interval combination, plus a
//!   deterministic per-stratum systematic sampler; the statistics
//!   behind approximate joins.
//! * **Bloom filters** ([`bloom`]) — seeded, bit-reproducible filters
//!   for map-side join pre-filtering (ApproxJoin's filtering stage).
//!
//! # Example: two-stage sampling with error bounds
//!
//! ```
//! use approxhadoop_stats::multistage::{ClusterObservation, TwoStageEstimator};
//!
//! // Population: 100 blocks; we executed 4 of them, each holding 1000
//! // items of which 100 were sampled.
//! let mut est = TwoStageEstimator::new(100);
//! for (i, sum) in [5010.0f64, 4985.0, 5102.0, 4933.0].iter().enumerate() {
//!     est.push(ClusterObservation {
//!         cluster_id: i as u64,
//!         total_units: 1000,
//!         sampled_units: 100,
//!         sum: *sum,
//!         sum_sq: sum * sum / 60.0, // toy second moment
//!     });
//! }
//! let interval = est.estimate(0.95).unwrap();
//! assert!(interval.half_width > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod describe;
pub mod dist;
pub mod distinct;
pub mod error;
pub mod gev;
pub mod interval;
pub mod multistage;
pub mod opt;
pub mod sampling;
pub mod special;
pub mod stratified;

pub use error::StatsError;
pub use interval::Interval;

/// Result alias for fallible statistical computations.
pub type Result<T> = std::result::Result<T, StatsError>;
