//! Numerical optimisation primitives.
//!
//! * [`nelder_mead`] — derivative-free simplex minimisation, used for the
//!   GEV maximum-likelihood fit.
//! * [`bisect`] — root bracketing/bisection, used when inverting monotone
//!   error-bound functions (paper Section 4.4's binary search).
//! * [`golden_section`] — unimodal 1-D minimisation.

/// Options controlling [`nelder_mead`].
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadOptions {
    /// Maximum number of simplex iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the function-value spread across the
    /// simplex.
    pub f_tol: f64,
    /// Convergence tolerance on the simplex diameter.
    pub x_tol: f64,
    /// Initial per-coordinate step used to build the starting simplex.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_iters: 2000,
            f_tol: 1e-12,
            x_tol: 1e-10,
            initial_step: 0.1,
        }
    }
}

/// Result of a [`nelder_mead`] minimisation.
#[derive(Debug, Clone)]
pub struct NelderMeadResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Function value at `x`.
    pub fx: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerances were met before `max_iters`.
    pub converged: bool,
}

/// Minimises `f` starting from `x0` with the Nelder–Mead simplex method.
///
/// The implementation uses the standard reflection/expansion/contraction/
/// shrink steps (α=1, γ=2, ρ=0.5, σ=0.5). `f` may return `f64::INFINITY`
/// to encode constraints (e.g. GEV support violations).
///
/// # Example
///
/// ```
/// use approxhadoop_stats::opt::{nelder_mead, NelderMeadOptions};
///
/// // Rosenbrock's banana function, minimum at (1, 1).
/// let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
/// let r = nelder_mead(f, &[-1.2, 1.0], NelderMeadOptions { max_iters: 5000, ..Default::default() });
/// assert!((r.x[0] - 1.0).abs() < 1e-4 && (r.x[1] - 1.0).abs() < 1e-4);
/// ```
pub fn nelder_mead<F>(mut f: F, x0: &[f64], opts: NelderMeadOptions) -> NelderMeadResult
where
    F: FnMut(&[f64]) -> f64,
{
    let n = x0.len();
    assert!(n > 0, "nelder_mead requires at least one dimension");

    // Build the initial simplex: x0 plus n perturbed vertices.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        let step = if v[i].abs() > 1e-12 {
            opts.initial_step * v[i].abs()
        } else {
            opts.initial_step
        };
        v[i] += step;
        simplex.push(v);
    }
    let mut fvals: Vec<f64> = simplex.iter().map(|v| f(v)).collect();

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut iterations = 0;
    let mut converged = false;

    while iterations < opts.max_iters {
        iterations += 1;
        // Order vertices by function value.
        let mut idx: Vec<usize> = (0..=n).collect();
        idx.sort_by(|&a, &b| {
            fvals[a]
                .partial_cmp(&fvals[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let ordered: Vec<Vec<f64>> = idx.iter().map(|&i| simplex[i].clone()).collect();
        let ordered_f: Vec<f64> = idx.iter().map(|&i| fvals[i]).collect();
        simplex = ordered;
        fvals = ordered_f;

        // Convergence checks.
        let f_spread = (fvals[n] - fvals[0]).abs();
        let x_spread = simplex[1..]
            .iter()
            .map(|v| {
                v.iter()
                    .zip(&simplex[0])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        if f_spread < opts.f_tol && x_spread < opts.x_tol {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for v in &simplex[..n] {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / n as f64;
            }
        }

        // Reflection.
        let reflected: Vec<f64> = centroid
            .iter()
            .zip(&simplex[n])
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = f(&reflected);

        if fr < fvals[0] {
            // Expansion.
            let expanded: Vec<f64> = centroid
                .iter()
                .zip(&reflected)
                .map(|(c, r)| c + gamma * (r - c))
                .collect();
            let fe = f(&expanded);
            if fe < fr {
                simplex[n] = expanded;
                fvals[n] = fe;
            } else {
                simplex[n] = reflected;
                fvals[n] = fr;
            }
        } else if fr < fvals[n - 1] {
            simplex[n] = reflected;
            fvals[n] = fr;
        } else {
            // Contraction.
            let contracted: Vec<f64> = centroid
                .iter()
                .zip(&simplex[n])
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let fc = f(&contracted);
            if fc < fvals[n] {
                simplex[n] = contracted;
                fvals[n] = fc;
            } else {
                // Shrink towards the best vertex.
                let best = simplex[0].clone();
                for v in simplex.iter_mut().skip(1) {
                    for (x, b) in v.iter_mut().zip(&best) {
                        *x = b + sigma * (*x - b);
                    }
                }
                for (i, v) in simplex.iter().enumerate().skip(1) {
                    fvals[i] = f(v);
                }
            }
        }
    }

    // Return the best vertex.
    let (best_i, _) = fvals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty simplex");
    NelderMeadResult {
        x: simplex[best_i].clone(),
        fx: fvals[best_i],
        iterations,
        converged,
    }
}

/// Finds a root of `f` on `[lo, hi]` by bisection, assuming
/// `f(lo)` and `f(hi)` have opposite signs.
///
/// Returns the midpoint after the interval shrinks below `tol` (or after
/// 200 iterations). Returns `None` if the endpoints do not bracket a root.
pub fn bisect<F>(mut f: F, mut lo: f64, mut hi: f64, tol: f64) -> Option<f64>
where
    F: FnMut(f64) -> f64,
{
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Some(lo);
    }
    if fhi == 0.0 {
        return Some(hi);
    }
    if flo.signum() == fhi.signum() {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 || (hi - lo).abs() < tol {
            return Some(mid);
        }
        if fm.signum() == flo.signum() {
            lo = mid;
            flo = fm;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Minimises a unimodal function on `[lo, hi]` with golden-section search;
/// returns the argmin.
pub fn golden_section<F>(mut f: F, mut lo: f64, mut hi: f64, tol: f64) -> f64
where
    F: FnMut(f64) -> f64,
{
    let inv_phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut c = hi - inv_phi * (hi - lo);
    let mut d = lo + inv_phi * (hi - lo);
    let mut fc = f(c);
    let mut fd = f(d);
    while (hi - lo).abs() > tol {
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - inv_phi * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + inv_phi * (hi - lo);
            fd = f(d);
        }
    }
    0.5 * (lo + hi)
}

/// Minimises an integer-valued objective by exhaustive scan over
/// `[lo, hi]`, returning `(argmin, min)`. Used for small discrete searches
/// in the sampling-ratio optimiser.
pub fn scan_min_i64<F>(mut f: F, lo: i64, hi: i64) -> Option<(i64, f64)>
where
    F: FnMut(i64) -> f64,
{
    if lo > hi {
        return None;
    }
    let mut best = (lo, f(lo));
    for x in (lo + 1)..=hi {
        let fx = f(x);
        if fx < best.1 {
            best = (x, fx);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelder_mead_quadratic() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2) + 7.0;
        let r = nelder_mead(f, &[0.0, 0.0], NelderMeadOptions::default());
        assert!(r.converged);
        assert!((r.x[0] - 3.0).abs() < 1e-5);
        assert!((r.x[1] + 1.0).abs() < 1e-5);
        assert!((r.fx - 7.0).abs() < 1e-9);
    }

    #[test]
    fn nelder_mead_1d() {
        let f = |x: &[f64]| (x[0] - 2.5).powi(2);
        let r = nelder_mead(f, &[10.0], NelderMeadOptions::default());
        assert!((r.x[0] - 2.5).abs() < 1e-5);
    }

    #[test]
    fn nelder_mead_with_infinite_barrier() {
        // Constrained: f = (x-2)² for x > 0, ∞ otherwise; start near 0.
        let f = |x: &[f64]| {
            if x[0] <= 0.0 {
                f64::INFINITY
            } else {
                (x[0] - 2.0).powi(2)
            }
        };
        let r = nelder_mead(f, &[0.5, 0.0], NelderMeadOptions::default());
        assert!((r.x[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_non_bracketing() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9).is_none());
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 5.0, 1e-9), Some(0.0));
    }

    #[test]
    fn golden_section_minimises_parabola() {
        let x = golden_section(|x| (x - 1.7).powi(2), -10.0, 10.0, 1e-10);
        assert!((x - 1.7).abs() < 1e-8);
    }

    #[test]
    fn scan_min_finds_discrete_min() {
        let (x, fx) = scan_min_i64(|x| ((x - 7) * (x - 7)) as f64, 0, 20).unwrap();
        assert_eq!(x, 7);
        assert_eq!(fx, 0.0);
        assert!(scan_min_i64(|_| 0.0, 5, 4).is_none());
    }
}
