//! Streaming descriptive statistics (Welford's algorithm).

/// Numerically stable streaming accumulator for mean and variance.
///
/// Uses Welford's online algorithm so that map tasks can stream values
/// through without buffering them.
///
/// # Example
///
/// ```
/// use approxhadoop_stats::describe::Streaming;
///
/// let mut s = Streaming::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Streaming {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Streaming {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Streaming {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator into this one (parallel Welford /
    /// Chan et al.), so per-task statistics can be combined in the reduce.
    pub fn merge(&mut self, other: &Streaming) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n - 1` denominator); `0.0` if fewer than
    /// two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); `0.0` if empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation; `+∞` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; `-∞` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_defaults() {
        let s = Streaming::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn single_value() {
        let mut s = Streaming::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn variance_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut s = Streaming::new();
        for &v in &data {
            s.push(v);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.sample_variance() - var).abs() < 1e-8);
    }

    #[test]
    fn merge_equals_sequential() {
        let a: Vec<f64> = (0..50).map(|i| i as f64 * 0.7).collect();
        let b: Vec<f64> = (0..80).map(|i| 100.0 - i as f64).collect();
        let mut s1 = Streaming::new();
        let mut s2 = Streaming::new();
        let mut all = Streaming::new();
        for &v in &a {
            s1.push(v);
            all.push(v);
        }
        for &v in &b {
            s2.push(v);
            all.push(v);
        }
        s1.merge(&s2);
        assert_eq!(s1.count(), all.count());
        assert!((s1.mean() - all.mean()).abs() < 1e-10);
        assert!((s1.sample_variance() - all.sample_variance()).abs() < 1e-8);
        assert_eq!(s1.min(), all.min());
        assert_eq!(s1.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Streaming::new();
        s.push(1.0);
        s.push(2.0);
        let before = s;
        s.merge(&Streaming::new());
        assert_eq!(s, before);

        let mut e = Streaming::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
