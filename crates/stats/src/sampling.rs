//! Sampling primitives: Bernoulli / systematic / reservoir samplers and a
//! bounded Zipf generator.
//!
//! The samplers implement the *input data sampling* mechanism
//! (`ApproxTextInputFormat` in the paper): given a data block, return a
//! random subset of its items together with the counts (`m_i`, `M_i`)
//! needed by the multi-stage estimators. The Zipf generator drives the
//! synthetic heavy-tailed workloads (page popularity, article sizes).

use rand::Rng;

/// Decides membership of each item in a sample independently with
/// probability `ratio` (Bernoulli sampling).
#[derive(Debug, Clone, Copy)]
pub struct BernoulliSampler {
    ratio: f64,
}

impl BernoulliSampler {
    /// Creates a sampler keeping each item with probability `ratio`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1`.
    pub fn new(ratio: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "ratio must lie in (0, 1], got {ratio}"
        );
        BernoulliSampler { ratio }
    }

    /// The sampling ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Whether the next item should be kept.
    pub fn keep<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.ratio >= 1.0 || rng.gen::<f64>() < self.ratio
    }

    /// Returns the indices of the kept items among `total` items.
    pub fn sample_indices<R: Rng + ?Sized>(&self, rng: &mut R, total: usize) -> Vec<usize> {
        (0..total).filter(|_| self.keep(rng)).collect()
    }
}

/// Keeps every `k`-th item starting from a random offset (systematic
/// sampling) — the paper's "1 out of every 10 input data items".
#[derive(Debug, Clone, Copy)]
pub struct SystematicSampler {
    stride: usize,
}

impl SystematicSampler {
    /// Creates a sampler keeping one of every `stride` items.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        SystematicSampler { stride }
    }

    /// Builds a sampler from a ratio, i.e. `stride = round(1/ratio)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1`.
    pub fn from_ratio(ratio: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "ratio must lie in (0, 1], got {ratio}"
        );
        SystematicSampler {
            stride: (1.0 / ratio).round().max(1.0) as usize,
        }
    }

    /// The stride `k`.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Returns the indices of the kept items among `total` items, using a
    /// random start offset in `[0, stride)`.
    pub fn sample_indices<R: Rng + ?Sized>(&self, rng: &mut R, total: usize) -> Vec<usize> {
        if total == 0 {
            return Vec::new();
        }
        let offset = rng.gen_range(0..self.stride).min(total.saturating_sub(1));
        (offset..total).step_by(self.stride).collect()
    }
}

/// Uniform fixed-size sample of a stream of unknown length (Algorithm R).
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Creates a reservoir holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offers one item to the reservoir.
    pub fn offer<R: Rng + ?Sized>(&mut self, rng: &mut R, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Number of items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the reservoir, returning the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Selects `k` distinct indices uniformly at random from `0..n`
/// (partial Fisher–Yates). Used to pick which map tasks to *execute*
/// when the user specifies a dropping ratio.
pub fn choose_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Random permutation of `0..n` (Fisher–Yates). The JobTracker executes
/// map tasks in this order so cluster sampling assumptions hold.
pub fn random_order<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    choose_indices(rng, n, n)
}

/// Bounded Zipf distribution over `{1, …, n}` with exponent `s > 0`:
/// `P(k) ∝ k^(-s)`.
///
/// Uses Hörmann & Derflinger's rejection-inversion method, giving O(1)
/// sampling without precomputing the full CDF — important because the
/// synthetic Wikipedia workloads draw from catalogues of millions of
/// pages.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `H(1.5) - h(1)` — upper end of the inversion range.
    h_integral_x1: f64,
    /// `H(n + 0.5)` — lower end of the inversion range.
    h_integral_n: f64,
    /// Acceptance threshold `2 - H⁻¹(H(2.5) - h(2))`.
    s_const: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `{1, …, n}` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "n must be positive");
        assert!(
            s > 0.0 && s.is_finite(),
            "exponent must be positive, got {s}"
        );
        let mut z = Zipf {
            n,
            s,
            h_integral_x1: 0.0,
            h_integral_n: 0.0,
            s_const: 0.0,
        };
        z.h_integral_x1 = z.h_integral(1.5) - 1.0;
        z.h_integral_n = z.h_integral(n as f64 + 0.5);
        z.s_const = 2.0 - z.h_integral_inverse(z.h_integral(2.5) - z.h(2.0));
        z
    }

    /// Number of categories `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent `s`.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// `H(x) = ∫₁ˣ t^(-s) dt` (shifted antiderivative, `H(1) = 0`).
    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - self.s) * log_x) * log_x
    }

    /// `h(x) = x^(-s)`.
    fn h(&self, x: f64) -> f64 {
        (-self.s * x.ln()).exp()
    }

    /// Inverse of [`Zipf::h_integral`].
    fn h_integral_inverse(&self, x: f64) -> f64 {
        let mut t = x * (1.0 - self.s);
        if t < -1.0 {
            // Numerical guard: t must stay >= -1.
            t = -1.0;
        }
        (helper1(t) * x).exp()
    }

    /// Draws one rank in `{1, …, n}` (rank 1 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            // u uniformly in (H(n+0.5), H(1.5) - h(1)].
            let u = self.h_integral_n + rng.gen::<f64>() * (self.h_integral_x1 - self.h_integral_n);
            let x = self.h_integral_inverse(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.s_const || u >= self.h_integral(k + 0.5) - self.h(k) {
                return k as u64;
            }
        }
    }
}

/// `helper1(x) = ln(1+x)/x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `helper2(x) = (eˣ - 1)/x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_ratio_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = BernoulliSampler::new(0.1);
        let kept = s.sample_indices(&mut rng, 100_000).len();
        assert!((kept as f64 / 100_000.0 - 0.1).abs() < 0.01, "kept {kept}");
    }

    #[test]
    fn bernoulli_full_ratio_keeps_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = BernoulliSampler::new(1.0);
        assert_eq!(s.sample_indices(&mut rng, 500).len(), 500);
    }

    #[test]
    #[should_panic]
    fn bernoulli_rejects_zero_ratio() {
        BernoulliSampler::new(0.0);
    }

    #[test]
    fn systematic_stride_and_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = SystematicSampler::new(10);
        let idx = s.sample_indices(&mut rng, 1000);
        assert_eq!(idx.len(), 100);
        for w in idx.windows(2) {
            assert_eq!(w[1] - w[0], 10);
        }
    }

    #[test]
    fn systematic_from_ratio() {
        assert_eq!(SystematicSampler::from_ratio(0.1).stride(), 10);
        assert_eq!(SystematicSampler::from_ratio(1.0).stride(), 1);
        assert_eq!(SystematicSampler::from_ratio(0.333).stride(), 3);
    }

    #[test]
    fn systematic_small_inputs() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = SystematicSampler::new(10);
        assert!(s.sample_indices(&mut rng, 0).is_empty());
        // With a single item it is always kept (offset clamped).
        for _ in 0..20 {
            assert_eq!(s.sample_indices(&mut rng, 1), vec![0]);
        }
    }

    #[test]
    fn reservoir_keeps_capacity_and_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u32; 100];
        for _ in 0..2000 {
            let mut r = Reservoir::new(10);
            for i in 0..100 {
                r.offer(&mut rng, i);
            }
            assert_eq!(r.items().len(), 10);
            for &i in r.items() {
                counts[i] += 1;
            }
        }
        // Each item should be selected ~200 times (10% of 2000).
        for (i, &c) in counts.iter().enumerate() {
            assert!((100..320).contains(&c), "item {i} selected {c} times");
        }
    }

    #[test]
    fn reservoir_under_capacity_keeps_all() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut r = Reservoir::new(10);
        for i in 0..5 {
            r.offer(&mut rng, i);
        }
        assert_eq!(r.into_items(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn choose_indices_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let idx = choose_indices(&mut rng, 50, 20);
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 50));
        // k > n clamps.
        assert_eq!(choose_indices(&mut rng, 3, 10).len(), 3);
    }

    #[test]
    fn random_order_is_permutation() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut p = random_order(&mut rng, 100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_rank1_is_most_frequent() {
        let mut rng = StdRng::seed_from_u64(9);
        let z = Zipf::new(1000, 1.0);
        let mut counts = vec![0u32; 1001];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[10] > counts[100]);
    }

    #[test]
    fn zipf_frequencies_match_theory() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 100u64;
        let s = 1.2;
        let z = Zipf::new(n, s);
        let mut counts = vec![0f64; n as usize + 1];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1.0;
        }
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        for &k in &[1usize, 2, 5, 20] {
            let expected = (k as f64).powf(-s) / norm;
            let observed = counts[k] / draws as f64;
            assert!(
                (observed - expected).abs() < 0.15 * expected + 0.002,
                "rank {k}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn zipf_handles_s_equal_one_and_small_n() {
        let mut rng = StdRng::seed_from_u64(11);
        let z = Zipf::new(1, 1.0);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 1);
        }
        let z = Zipf::new(3, 1.0);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=3).contains(&k));
        }
    }

    #[test]
    fn zipf_stays_in_range_for_various_exponents() {
        let mut rng = StdRng::seed_from_u64(12);
        for &s in &[0.5, 0.99, 1.0, 1.01, 1.8, 3.0] {
            let z = Zipf::new(10_000, s);
            for _ in 0..2000 {
                let k = z.sample(&mut rng);
                assert!((1..=10_000).contains(&k), "s={s} produced {k}");
            }
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Algorithm R invariant: after any stream, the reservoir holds
        /// exactly `min(capacity, stream length)` items and every item
        /// held came from the stream.
        #[test]
        fn reservoir_offer_size_invariant(capacity in 1usize..32,
                                          stream in 0usize..200,
                                          seed in 0u64..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = Reservoir::new(capacity);
            for i in 0..stream {
                r.offer(&mut rng, i);
            }
            prop_assert_eq!(r.seen(), stream as u64);
            prop_assert_eq!(r.items().len(), capacity.min(stream));
            prop_assert!(r.items().iter().all(|&i| i < stream));
            let mut sorted = r.items().to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), capacity.min(stream), "reservoir held duplicates");
        }

        /// Inclusion probability of `offer` is uniform: over many seeds,
        /// each stream position is retained close to `capacity/stream`
        /// of the time. This is the property that makes the reservoir a
        /// valid uniform sampler, not just a bounded buffer.
        #[test]
        fn reservoir_offer_inclusion_probability_is_uniform(base_seed in 0u64..1_000_000) {
            let capacity = 8usize;
            let stream = 64usize;
            let trials = 600u32;
            let mut counts = vec![0u32; stream];
            for t in 0..trials {
                let mut rng = StdRng::seed_from_u64(base_seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut r = Reservoir::new(capacity);
                for i in 0..stream {
                    r.offer(&mut rng, i);
                }
                for &i in r.items() {
                    counts[i] += 1;
                }
            }
            // Expected inclusion count per position: trials · k/n = 75.
            // A 4-sigma band on Binomial(600, 1/8) is ±~33.
            let expected = trials as f64 * capacity as f64 / stream as f64;
            let sigma = (trials as f64 * (capacity as f64 / stream as f64)
                * (1.0 - capacity as f64 / stream as f64)).sqrt();
            for (i, &c) in counts.iter().enumerate() {
                prop_assert!(
                    (c as f64 - expected).abs() < 4.5 * sigma,
                    "position {} included {} times, expected {} ± {}",
                    i, c, expected, 4.5 * sigma
                );
            }
        }

        /// `from_ratio` rounds `1/ratio` to the nearest stride, never
        /// yields stride 0, and is exact at the edges: ratio 1 keeps
        /// everything (stride 1) and ratio → 0 grows without pathology.
        #[test]
        fn systematic_from_ratio_stride_rounds(ratio in 0.0001f64..=1.0) {
            let s = SystematicSampler::from_ratio(ratio);
            prop_assert!(s.stride() >= 1);
            let exact = 1.0 / ratio;
            prop_assert!(
                (s.stride() as f64 - exact).abs() <= 0.5 + 1e-9,
                "ratio {} gave stride {}, expected round({})",
                ratio, s.stride(), exact
            );
        }

        /// Edge behaviour: ratio = 1 is a census; tiny ratios produce
        /// strides so large a short stream keeps at most one item.
        #[test]
        fn systematic_from_ratio_edges(total in 1usize..500, seed in 0u64..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let census = SystematicSampler::from_ratio(1.0);
            prop_assert_eq!(census.stride(), 1);
            prop_assert_eq!(census.sample_indices(&mut rng, total).len(), total);

            let sparse = SystematicSampler::from_ratio(1e-4);
            prop_assert_eq!(sparse.stride(), 10_000);
            let kept = sparse.sample_indices(&mut rng, total);
            prop_assert!(kept.len() <= 1, "stride 10000 kept {} of {}", kept.len(), total);
        }

        /// The kept set is an arithmetic progression with the sampler's
        /// stride, so expansion by `stride` is unbiased for any offset.
        #[test]
        fn systematic_sample_is_arithmetic_progression(stride in 1usize..64,
                                                       total in 0usize..2000,
                                                       seed in 0u64..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = SystematicSampler::new(stride);
            let idx = s.sample_indices(&mut rng, total);
            if total == 0 {
                prop_assert!(idx.is_empty());
            } else {
                prop_assert!(!idx.is_empty(), "non-empty input must keep at least one item");
                prop_assert!(idx[0] < stride.min(total));
                for w in idx.windows(2) {
                    prop_assert_eq!(w[1] - w[0], stride);
                }
            }
        }
    }
}
