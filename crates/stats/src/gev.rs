//! Extreme value estimation (paper Section 3.2).
//!
//! For min/max reduces, ApproxHadoop treats the values produced by map
//! tasks as a sample of IID random variables. The Fisher–Tippett–Gnedenko
//! theorem says block minima/maxima converge to a Generalized Extreme
//! Value (GEV) distribution, so:
//!
//! 1. Transform the sample via [`block_minima`] / [`block_maxima`] (unless
//!    each map already outputs a per-task minimum/maximum, in which case
//!    the values are used directly).
//! 2. Fit a GEV by maximum likelihood ([`fit_gev_maxima`]) with
//!    Nelder–Mead; parameter confidence intervals come from the observed
//!    information (numerical Hessian of the negative log-likelihood).
//! 3. Estimate the min/max as a low/high percentile of the fitted GEV,
//!    with a confidence interval from the delta method
//!    ([`GevFit::quantile_interval`]).
//!
//! [`MinEstimator`] and [`MaxEstimator`] package the full pipeline.

use crate::dist::{ContinuousDistribution, Gev, Normal};
use crate::interval::Interval;
use crate::opt::{nelder_mead, NelderMeadOptions};
use crate::{Result, StatsError};

/// Splits `values` into `num_blocks` contiguous blocks and returns the
/// maximum of each block (the Block Maxima method). Trailing values that
/// do not fill a block are folded into the last block.
///
/// Returns an empty vector if `values` is empty or `num_blocks == 0`.
pub fn block_maxima(values: &[f64], num_blocks: usize) -> Vec<f64> {
    block_extremes(values, num_blocks, f64::max)
}

/// Splits `values` into `num_blocks` contiguous blocks and returns the
/// minimum of each block (the Block Minima method).
pub fn block_minima(values: &[f64], num_blocks: usize) -> Vec<f64> {
    block_extremes(values, num_blocks, f64::min)
}

fn block_extremes(values: &[f64], num_blocks: usize, pick: fn(f64, f64) -> f64) -> Vec<f64> {
    if values.is_empty() || num_blocks == 0 {
        return Vec::new();
    }
    let num_blocks = num_blocks.min(values.len());
    let block_size = values.len() / num_blocks;
    let mut out = Vec::with_capacity(num_blocks);
    for b in 0..num_blocks {
        let start = b * block_size;
        let end = if b + 1 == num_blocks {
            values.len()
        } else {
            start + block_size
        };
        let first = values[start];
        out.push(
            values[start + 1..end]
                .iter()
                .fold(first, |a, &v| pick(a, v)),
        );
    }
    out
}

/// A maximum-likelihood GEV fit with its parameter covariance matrix.
#[derive(Debug, Clone)]
pub struct GevFit {
    dist: Gev,
    /// Covariance of `(μ, σ, ξ)` from the observed information matrix.
    cov: [[f64; 3]; 3],
    /// Number of (block) observations used in the fit.
    n: usize,
}

impl GevFit {
    /// The fitted distribution.
    pub fn dist(&self) -> &Gev {
        &self.dist
    }

    /// Number of observations used in the fit.
    pub fn sample_size(&self) -> usize {
        self.n
    }

    /// Covariance matrix of the `(μ, σ, ξ)` estimates.
    pub fn covariance(&self) -> &[[f64; 3]; 3] {
        &self.cov
    }

    /// Standard errors of `(μ, σ, ξ)`.
    pub fn std_errors(&self) -> [f64; 3] {
        [
            self.cov[0][0].max(0.0).sqrt(),
            self.cov[1][1].max(0.0).sqrt(),
            self.cov[2][2].max(0.0).sqrt(),
        ]
    }

    /// Confidence intervals for `(μ, σ, ξ)` at the given level, using the
    /// asymptotic normality of the MLE.
    pub fn param_intervals(&self, confidence: f64) -> [Interval; 3] {
        let z = Normal::standard().quantile(0.5 + confidence / 2.0);
        let se = self.std_errors();
        [
            Interval::new(self.dist.mu(), z * se[0], confidence),
            Interval::new(self.dist.sigma(), z * se[1], confidence),
            Interval::new(self.dist.xi(), z * se[2], confidence),
        ]
    }

    /// The `p`-quantile of the fitted GEV with a delta-method confidence
    /// interval at level `confidence`.
    ///
    /// This is the paper's estimator: the min/max estimate is
    /// `G⁻¹(p)` for a low/high percentile `p`, and the interval
    /// `[min_l, min_h]` comes from the uncertainty of the fit.
    pub fn quantile_interval(&self, p: f64, confidence: f64) -> Result<Interval> {
        if !(0.0 < p && p < 1.0) {
            return Err(StatsError::invalid("p", "must lie in (0, 1)"));
        }
        if !(0.0 < confidence && confidence < 1.0) {
            return Err(StatsError::invalid("confidence", "must lie in (0, 1)"));
        }
        let q = self.dist.quantile(p);
        // Gradient of the quantile w.r.t. (μ, σ, ξ), numerically.
        let params = [self.dist.mu(), self.dist.sigma(), self.dist.xi()];
        let mut grad = [0.0; 3];
        for (i, g) in grad.iter_mut().enumerate() {
            let h = 1e-6 * (1.0 + params[i].abs());
            let mut hi = params;
            let mut lo = params;
            hi[i] += h;
            lo[i] -= h;
            // Keep σ positive when perturbing.
            hi[1] = hi[1].max(1e-12);
            lo[1] = lo[1].max(1e-12);
            let qh = Gev::new(hi[0], hi[1], hi[2]).quantile(p);
            let ql = Gev::new(lo[0], lo[1], lo[2]).quantile(p);
            *g = (qh - ql) / (hi[i] - lo[i]);
        }
        let mut var = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                var += grad[i] * self.cov[i][j] * grad[j];
            }
        }
        if !var.is_finite() {
            return Err(StatsError::Numerical {
                context: "gev quantile variance",
            });
        }
        let z = Normal::standard().quantile(0.5 + confidence / 2.0);
        Ok(Interval::new(q, z * var.max(0.0).sqrt(), confidence))
    }
}

/// Fits a GEV to a sample of (block) **maxima** by maximum likelihood.
///
/// Requires at least 5 observations. Optimises over `(μ, ln σ, ξ)` with
/// Nelder–Mead, starting from Gumbel moment estimates; the covariance is
/// the inverse of the numerical Hessian of the negative log-likelihood at
/// the optimum.
pub fn fit_gev_maxima(maxima: &[f64]) -> Result<GevFit> {
    let n = maxima.len();
    if n < 5 {
        return Err(StatsError::InsufficientData { needed: 5, got: n });
    }
    if maxima.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::Numerical {
            context: "gev fit input",
        });
    }

    // Moment-based Gumbel initialisation.
    let mean = maxima.iter().sum::<f64>() / n as f64;
    let var = maxima.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1).max(1) as f64;
    let sigma0 = (6.0 * var).sqrt() / std::f64::consts::PI;
    let sigma0 = if sigma0 > 1e-12 { sigma0 } else { 1e-6 };
    let mu0 = mean - 0.5772156649 * sigma0;

    let nll = |x: &[f64]| {
        let sigma = x[1].exp();
        if !sigma.is_finite() || sigma <= 0.0 || x[2].abs() > 5.0 {
            return f64::INFINITY;
        }
        Gev::new(x[0], sigma, x[2]).neg_log_likelihood(maxima)
    };

    // Try a few starting shapes and keep the best optimum.
    let mut best: Option<(Vec<f64>, f64)> = None;
    for &xi0 in &[0.1, -0.1, 0.0001, 0.5] {
        let r = nelder_mead(
            nll,
            &[mu0, sigma0.ln(), xi0],
            NelderMeadOptions {
                max_iters: 3000,
                f_tol: 1e-10,
                x_tol: 1e-9,
                initial_step: 0.1,
            },
        );
        if r.fx.is_finite() && best.as_ref().is_none_or(|(_, f)| r.fx < *f) {
            best = Some((r.x, r.fx));
        }
    }
    let (x, fx) = best.ok_or(StatsError::NoConvergence {
        what: "gev-mle",
        iterations: 3000,
    })?;
    if !fx.is_finite() {
        return Err(StatsError::NoConvergence {
            what: "gev-mle",
            iterations: 3000,
        });
    }
    let (mu, sigma, xi) = (x[0], x[1].exp(), x[2]);
    let dist = Gev::new(mu, sigma, xi);

    // Observed information: numerical Hessian of the NLL in (μ, σ, ξ).
    let f = |p: &[f64]| -> f64 {
        if p[1] <= 0.0 {
            return f64::INFINITY;
        }
        Gev::new(p[0], p[1], p[2]).neg_log_likelihood(maxima)
    };
    let theta = [mu, sigma, xi];
    let cov = match invert3(&hessian3(f, &theta)) {
        Some(c) if c[0][0] >= 0.0 && c[1][1] >= 0.0 && c[2][2] >= 0.0 => c,
        _ => {
            // Fall back to a conservative diagonal covariance based on the
            // asymptotic Gumbel information, inflated 4x: prevents silent
            // over-confidence when the Hessian is ill-conditioned.
            let s2 = sigma * sigma / n as f64;
            [
                [4.0 * 1.11 * s2, 0.0, 0.0],
                [0.0, 4.0 * 0.61 * s2, 0.0],
                [0.0, 0.0, 4.0 * 0.9 / n as f64],
            ]
        }
    };
    Ok(GevFit { dist, cov, n })
}

/// Fits a GEV to a sample of (block) **minima** by negating the data and
/// fitting maxima; see [`MinEstimator`] for the quantile mapping.
pub fn fit_gev_minima(minima: &[f64]) -> Result<GevFit> {
    let negated: Vec<f64> = minima.iter().map(|v| -v).collect();
    fit_gev_maxima(&negated)
}

/// Numerical Hessian of `f` at `x` via central differences.
fn hessian3<F: Fn(&[f64]) -> f64>(f: F, x: &[f64; 3]) -> [[f64; 3]; 3] {
    let mut h = [[0.0; 3]; 3];
    let steps: Vec<f64> = x.iter().map(|v| 1e-4 * (1.0 + v.abs())).collect();
    for i in 0..3 {
        for j in i..3 {
            let mut xpp = *x;
            let mut xpm = *x;
            let mut xmp = *x;
            let mut xmm = *x;
            xpp[i] += steps[i];
            xpp[j] += steps[j];
            xpm[i] += steps[i];
            xpm[j] -= steps[j];
            xmp[i] -= steps[i];
            xmp[j] += steps[j];
            xmm[i] -= steps[i];
            xmm[j] -= steps[j];
            let v = (f(&xpp) - f(&xpm) - f(&xmp) + f(&xmm)) / (4.0 * steps[i] * steps[j]);
            h[i][j] = v;
            h[j][i] = v;
        }
    }
    h
}

/// Inverts a symmetric 3×3 matrix; `None` if singular or non-finite.
fn invert3(m: &[[f64; 3]; 3]) -> Option<[[f64; 3]; 3]> {
    let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    if !det.is_finite() || det.abs() < 1e-300 {
        return None;
    }
    let inv_det = 1.0 / det;
    let mut inv = [[0.0; 3]; 3];
    inv[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
    inv[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
    inv[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
    inv[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
    inv[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
    inv[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
    inv[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
    inv[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
    inv[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
    if inv.iter().flatten().any(|v| !v.is_finite()) {
        return None;
    }
    Some(inv)
}

/// Default percentile used when estimating a minimum/maximum from a
/// fitted GEV (the paper's "low percentile p, e.g. 1st percentile").
pub const DEFAULT_EXTREME_PERCENTILE: f64 = 0.01;

/// Estimates the **minimum** of an underlying population from a sample of
/// per-map minima (or raw values transformed via [`block_minima`]).
///
/// # Example
///
/// ```
/// use approxhadoop_stats::gev::MinEstimator;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// // 60 per-map minima, each the min of many uniform(10, 20) draws.
/// let minima: Vec<f64> = (0..60)
///     .map(|_| (0..500).map(|_| rng.gen_range(10.0..20.0)).fold(f64::INFINITY, f64::min))
///     .collect();
/// let est = MinEstimator::new().estimate(&minima, 0.95).unwrap();
/// // The estimated minimum should be close to (just below) 10.
/// assert!(est.estimate > 8.0 && est.estimate < 10.5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MinEstimator {
    percentile: f64,
}

impl Default for MinEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl MinEstimator {
    /// Creates an estimator with the default percentile
    /// ([`DEFAULT_EXTREME_PERCENTILE`]).
    pub fn new() -> Self {
        MinEstimator {
            percentile: DEFAULT_EXTREME_PERCENTILE,
        }
    }

    /// Overrides the percentile `p` at which `G(min) = p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn with_percentile(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "percentile must lie in (0,1)");
        MinEstimator { percentile: p }
    }

    /// Fits a GEV to the per-map minima and returns the estimated overall
    /// minimum with its confidence interval.
    pub fn estimate(&self, minima: &[f64], confidence: f64) -> Result<Interval> {
        let fit = fit_gev_minima(minima)?;
        // G_min(x) = 1 - G_maxfit(-x): the p-quantile of the minima
        // distribution is the negated (1-p)-quantile of the maxima fit.
        let iv = fit.quantile_interval(1.0 - self.percentile, confidence)?;
        Ok(Interval::new(-iv.estimate, iv.half_width, confidence))
    }
}

/// Estimates the **maximum** of an underlying population from a sample of
/// per-map maxima; mirror image of [`MinEstimator`].
#[derive(Debug, Clone, Copy)]
pub struct MaxEstimator {
    percentile: f64,
}

impl Default for MaxEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl MaxEstimator {
    /// Creates an estimator with the default percentile.
    pub fn new() -> Self {
        MaxEstimator {
            percentile: DEFAULT_EXTREME_PERCENTILE,
        }
    }

    /// Overrides the percentile (the estimate is the `(1-p)`-quantile).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn with_percentile(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "percentile must lie in (0,1)");
        MaxEstimator { percentile: p }
    }

    /// Fits a GEV to the per-map maxima and returns the estimated overall
    /// maximum with its confidence interval.
    pub fn estimate(&self, maxima: &[f64], confidence: f64) -> Result<Interval> {
        let fit = fit_gev_maxima(maxima)?;
        fit.quantile_interval(1.0 - self.percentile, confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn block_maxima_basic() {
        let v = [1.0, 5.0, 2.0, 8.0, 3.0, 0.0];
        assert_eq!(block_maxima(&v, 3), vec![5.0, 8.0, 3.0]);
        assert_eq!(block_minima(&v, 3), vec![1.0, 2.0, 0.0]);
        // Two blocks of three: [1,5,2] and [8,3,0].
        assert_eq!(block_maxima(&v, 2), vec![5.0, 8.0]);
    }

    #[test]
    fn block_extremes_edge_cases() {
        assert!(block_maxima(&[], 4).is_empty());
        assert!(block_maxima(&[1.0], 0).is_empty());
        // More blocks than values: one block per value.
        assert_eq!(block_maxima(&[3.0, 1.0], 10), vec![3.0, 1.0]);
        // Trailing remainder folds into last block.
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(block_maxima(&v, 2), vec![2.0, 5.0]);
    }

    #[test]
    fn fit_recovers_gumbel_parameters() {
        // Sample from a Gumbel(μ=10, σ=2) via inverse cdf.
        let mut rng = StdRng::seed_from_u64(3);
        let g = Gev::new(10.0, 2.0, 0.0);
        let data: Vec<f64> = (0..2000)
            .map(|_| g.quantile(rng.gen_range(1e-9..1.0)))
            .collect();
        let fit = fit_gev_maxima(&data).unwrap();
        assert!(
            (fit.dist().mu() - 10.0).abs() < 0.2,
            "mu={}",
            fit.dist().mu()
        );
        assert!(
            (fit.dist().sigma() - 2.0).abs() < 0.2,
            "sigma={}",
            fit.dist().sigma()
        );
        assert!(fit.dist().xi().abs() < 0.1, "xi={}", fit.dist().xi());
    }

    #[test]
    fn fit_recovers_frechet_shape() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = Gev::new(0.0, 1.0, 0.3);
        let data: Vec<f64> = (0..3000)
            .map(|_| g.quantile(rng.gen_range(1e-9..1.0)))
            .collect();
        let fit = fit_gev_maxima(&data).unwrap();
        assert!(
            (fit.dist().xi() - 0.3).abs() < 0.1,
            "xi={}",
            fit.dist().xi()
        );
    }

    #[test]
    fn fit_recovers_weibull_shape() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = Gev::new(5.0, 1.0, -0.25);
        let data: Vec<f64> = (0..3000)
            .map(|_| g.quantile(rng.gen_range(1e-9..1.0)))
            .collect();
        let fit = fit_gev_maxima(&data).unwrap();
        assert!(
            (fit.dist().xi() + 0.25).abs() < 0.1,
            "xi={}",
            fit.dist().xi()
        );
    }

    #[test]
    fn fit_requires_minimum_sample() {
        assert!(matches!(
            fit_gev_maxima(&[1.0, 2.0, 3.0]),
            Err(StatsError::InsufficientData { needed: 5, .. })
        ));
    }

    #[test]
    fn fit_rejects_non_finite() {
        let data = [1.0, 2.0, f64::NAN, 3.0, 4.0, 5.0];
        assert!(fit_gev_maxima(&data).is_err());
    }

    #[test]
    fn param_intervals_cover_truth_reasonably() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Gev::new(3.0, 1.5, 0.1);
        let data: Vec<f64> = (0..1500)
            .map(|_| g.quantile(rng.gen_range(1e-9..1.0)))
            .collect();
        let fit = fit_gev_maxima(&data).unwrap();
        let [mu_iv, sigma_iv, xi_iv] = fit.param_intervals(0.95);
        assert!(mu_iv.contains(3.0), "mu interval {mu_iv} misses 3.0");
        assert!(
            sigma_iv.contains(1.5),
            "sigma interval {sigma_iv} misses 1.5"
        );
        assert!(xi_iv.contains(0.1), "xi interval {xi_iv} misses 0.1");
    }

    #[test]
    fn quantile_interval_widens_with_confidence() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = Gev::new(0.0, 1.0, 0.0);
        let data: Vec<f64> = (0..400)
            .map(|_| g.quantile(rng.gen_range(1e-9..1.0)))
            .collect();
        let fit = fit_gev_maxima(&data).unwrap();
        let iv90 = fit.quantile_interval(0.99, 0.90).unwrap();
        let iv99 = fit.quantile_interval(0.99, 0.99).unwrap();
        assert!(iv99.half_width > iv90.half_width);
    }

    #[test]
    fn quantile_interval_rejects_bad_inputs() {
        let mut rng = StdRng::seed_from_u64(13);
        let data: Vec<f64> = (0..50).map(|_| rng.gen_range(0.0..1.0)).collect();
        let fit = fit_gev_maxima(&data).unwrap();
        assert!(fit.quantile_interval(0.0, 0.95).is_err());
        assert!(fit.quantile_interval(0.5, 1.0).is_err());
    }

    #[test]
    fn min_estimator_close_to_true_minimum() {
        let mut rng = StdRng::seed_from_u64(29);
        // Underlying population uniform(100, 200); per-map minima over 1000
        // draws cluster near 100.
        let minima: Vec<f64> = (0..80)
            .map(|_| {
                (0..1000)
                    .map(|_| rng.gen_range(100.0..200.0))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let iv = MinEstimator::new().estimate(&minima, 0.95).unwrap();
        assert!(
            iv.estimate > 95.0 && iv.estimate < 101.0,
            "estimate {}",
            iv.estimate
        );
        assert!(iv.half_width.is_finite());
    }

    #[test]
    fn max_estimator_close_to_true_maximum() {
        let mut rng = StdRng::seed_from_u64(31);
        let maxima: Vec<f64> = (0..80)
            .map(|_| {
                (0..1000)
                    .map(|_| rng.gen_range(0.0..50.0))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        let iv = MaxEstimator::new().estimate(&maxima, 0.95).unwrap();
        assert!(
            iv.estimate > 49.0 && iv.estimate < 53.0,
            "estimate {}",
            iv.estimate
        );
    }

    #[test]
    fn more_maps_narrow_the_interval() {
        // Larger samples should (statistically) tighten the CI; use fixed
        // seeds so the test is deterministic.
        let mut rng = StdRng::seed_from_u64(37);
        let draw = |rng: &mut StdRng, n: usize| -> Vec<f64> {
            (0..n)
                .map(|_| {
                    (0..500)
                        .map(|_| rng.gen_range(0.0..10.0))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect()
        };
        let small = draw(&mut rng, 12);
        let large = draw(&mut rng, 200);
        let iv_small = MinEstimator::new().estimate(&small, 0.95).unwrap();
        let iv_large = MinEstimator::new().estimate(&large, 0.95).unwrap();
        assert!(
            iv_large.half_width < iv_small.half_width,
            "large {} vs small {}",
            iv_large.half_width,
            iv_small.half_width
        );
    }

    #[test]
    fn invert3_identity() {
        let id = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        assert_eq!(invert3(&id), Some(id));
        let singular = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 0.0, 1.0]];
        assert!(invert3(&singular).is_none());
    }

    #[test]
    fn hessian_of_quadratic_is_exact() {
        // f = x² + 2y² + 3z² + xy → Hessian [[2,1,0],[1,4,0],[0,0,6]].
        let f = |p: &[f64]| p[0] * p[0] + 2.0 * p[1] * p[1] + 3.0 * p[2] * p[2] + p[0] * p[1];
        let h = hessian3(f, &[0.3, -0.2, 0.9]);
        let expect = [[2.0, 1.0, 0.0], [1.0, 4.0, 0.0], [0.0, 0.0, 6.0]];
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (h[i][j] - expect[i][j]).abs() < 1e-4,
                    "h[{i}][{j}]={}",
                    h[i][j]
                );
            }
        }
    }
}
