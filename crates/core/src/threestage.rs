//! Three-stage sampling template (paper Section 3.1, "Three-stage
//! sampling").
//!
//! Sometimes the population of interest is the set of **intermediate
//! pairs** rather than the input items — the paper's example: the
//! average number of occurrences of a word *per paragraph*, where each
//! input item is a whole page emitting one `<W, count>` per paragraph.
//! The sampling hierarchy then has three stages: blocks (map tasks) →
//! items (pages) → pairs (paragraphs), and the variance picks up a
//! third term.
//!
//! The paper requires the programmer to "understand her application and
//! explicitly add the third sampling level"; here that means using
//! [`ThreeStageMapper`] (whose user function emits one value per
//! tertiary unit) together with [`ThreeStageReducer`].

use std::collections::HashMap;
use std::marker::PhantomData;

use approxhadoop_runtime::mapper::{MapTaskContext, Mapper};
use approxhadoop_runtime::reducer::{MapOutputMeta, ReduceContext, Reducer};
use approxhadoop_runtime::types::{Key, TaskId};
use approxhadoop_stats::multistage::{
    SecondaryObservation, ThreeStageCluster, ThreeStageEstimator,
};
use approxhadoop_stats::Interval;

/// Per-task per-key statistics: one [`SecondaryObservation`] per
/// processed item that emitted for the key.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupStat {
    /// One entry per emitting item: `(pairs, Σv, Σv²)`.
    pub items: Vec<(u64, f64, f64)>,
}

impl GroupStat {
    /// Merges another statistic (concatenates item groups).
    pub fn merge(&mut self, other: &GroupStat) {
        self.items.extend_from_slice(&other.items);
    }
}

/// Map-side template: `f(item, emit)` emits one value **per tertiary
/// unit** (e.g. one count per paragraph); the task ships, per key, the
/// per-item group statistics the three-stage estimator needs.
pub struct ThreeStageMapper<I, K, F> {
    f: F,
    _marker: PhantomData<fn(I) -> K>,
}

impl<I, K, F> ThreeStageMapper<I, K, F>
where
    F: Fn(&I, &mut dyn FnMut(K, f64)) + Send + Sync,
{
    /// Wraps the user map function.
    pub fn new(f: F) -> Self {
        ThreeStageMapper {
            f,
            _marker: PhantomData,
        }
    }
}

/// Per-task state of [`ThreeStageMapper`].
pub struct ThreeStageTaskState<K> {
    per_key: HashMap<K, GroupStat>,
    scratch: Vec<(K, (u64, f64, f64))>,
}

impl<I, K, F> Mapper for ThreeStageMapper<I, K, F>
where
    I: Send + 'static,
    K: Key,
    F: Fn(&I, &mut dyn FnMut(K, f64)) + Send + Sync,
{
    type Item = I;
    type Key = K;
    type Value = GroupStat;
    type TaskState = ThreeStageTaskState<K>;

    fn begin_task(&self, _ctx: &MapTaskContext) -> Self::TaskState {
        ThreeStageTaskState {
            per_key: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    fn map(&self, state: &mut Self::TaskState, item: I, _emit: &mut dyn FnMut(K, GroupStat)) {
        state.scratch.clear();
        let scratch = &mut state.scratch;
        (self.f)(&item, &mut |k, v| {
            if let Some(entry) = scratch.iter_mut().find(|(ek, _)| *ek == k) {
                entry.1 .0 += 1;
                entry.1 .1 += v;
                entry.1 .2 += v * v;
            } else {
                scratch.push((k, (1, v, v * v)));
            }
        });
        for (k, group) in state.scratch.drain(..) {
            state.per_key.entry(k).or_default().items.push(group);
        }
    }

    fn end_task(&self, state: Self::TaskState, emit: &mut dyn FnMut(K, GroupStat)) {
        for (k, stat) in state.per_key {
            emit(k, stat);
        }
    }
}

/// What the three-stage reducer estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreeStageAggregation {
    /// Total of all tertiary values in the population.
    Total,
    /// Mean value **per intermediate pair** (the paper's example: mean
    /// occurrences per paragraph). Computed as estimated total divided
    /// by the estimated number of pairs.
    MeanPerPair,
}

/// Reduce-side three-stage estimator.
pub struct ThreeStageReducer<K: Key> {
    agg: ThreeStageAggregation,
    confidence: f64,
    clusters: Vec<(TaskId, u64, u64)>,
    keys: HashMap<K, HashMap<u32, GroupStat>>,
}

impl<K: Key> ThreeStageReducer<K> {
    /// Creates a reducer computing `agg` at `confidence`.
    pub fn new(agg: ThreeStageAggregation, confidence: f64) -> Self {
        ThreeStageReducer {
            agg,
            confidence,
            clusters: Vec::new(),
            keys: HashMap::new(),
        }
    }

    fn build_estimator(
        &self,
        stats: &HashMap<u32, GroupStat>,
        total_maps: u64,
        count_pairs: bool,
    ) -> ThreeStageEstimator {
        let mut est = ThreeStageEstimator::new(total_maps);
        for (ci, (task, m_total, m_sampled)) in self.clusters.iter().enumerate() {
            if *m_sampled == 0 {
                continue;
            }
            let empty = GroupStat::default();
            let stat = stats.get(&(ci as u32)).unwrap_or(&empty);
            // Sampled items that emitted nothing are zero-pair groups:
            // they contribute to the secondary stage as empty units. We
            // encode them as a single aggregate zero secondary with one
            // tertiary unit of value zero per silent item, preserving
            // counts without inflating memory.
            let mut secondaries: Vec<SecondaryObservation> = stat
                .items
                .iter()
                .map(|&(pairs, sum, sum_sq)| SecondaryObservation {
                    total_tertiary: pairs,
                    sampled_tertiary: pairs,
                    sum: if count_pairs { pairs as f64 } else { sum },
                    sum_sq: if count_pairs { pairs as f64 } else { sum_sq },
                })
                .collect();
            let silent = m_sampled.saturating_sub(stat.items.len() as u64);
            for _ in 0..silent {
                secondaries.push(SecondaryObservation {
                    total_tertiary: 1,
                    sampled_tertiary: 1,
                    sum: 0.0,
                    sum_sq: 0.0,
                });
            }
            est.push(ThreeStageCluster {
                cluster_id: task.0 as u64,
                total_units: *m_total,
                secondaries,
            });
        }
        est
    }

    fn estimate_key(&self, stats: &HashMap<u32, GroupStat>, total_maps: u64) -> Option<Interval> {
        match self.agg {
            ThreeStageAggregation::Total => self
                .build_estimator(stats, total_maps, false)
                .estimate(self.confidence)
                .ok(),
            ThreeStageAggregation::MeanPerPair => {
                let total = self
                    .build_estimator(stats, total_maps, false)
                    .estimate(self.confidence)
                    .ok()?;
                let pairs = self
                    .build_estimator(stats, total_maps, true)
                    .estimate(self.confidence)
                    .ok()?;
                if pairs.estimate <= 0.0 {
                    return None;
                }
                let mean = total.estimate / pairs.estimate;
                // First-order error propagation for the quotient.
                let rel = (total.relative_error().powi(2) + pairs.relative_error().powi(2)).sqrt();
                Some(Interval::new(mean, mean.abs() * rel, self.confidence))
            }
        }
    }
}

impl<K: Key> Reducer for ThreeStageReducer<K> {
    type Key = K;
    type Value = GroupStat;
    type Output = (K, Interval);

    fn on_map_output(
        &mut self,
        meta: &MapOutputMeta,
        pairs: Vec<(K, GroupStat)>,
        _ctx: &mut ReduceContext,
    ) {
        let ci = self.clusters.len() as u32;
        self.clusters
            .push((meta.task, meta.total_records, meta.sampled_records));
        for (k, stat) in pairs {
            self.keys
                .entry(k)
                .or_default()
                .entry(ci)
                .or_default()
                .merge(&stat);
        }
    }

    fn finish(&mut self, ctx: &mut ReduceContext) -> Vec<(K, Interval)> {
        let total_maps = ctx.total_maps() as u64;
        let mut out: Vec<(K, Interval)> = self
            .keys
            .iter()
            .filter_map(|(k, stats)| {
                self.estimate_key(stats, total_maps)
                    .map(|iv| (k.clone(), iv))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_runtime::control::JobControl;
    use std::sync::Arc;

    fn ctx(total: usize) -> ReduceContext {
        ReduceContext::new(0, total, Arc::new(JobControl::new(1)))
    }

    fn meta(task: usize, total: u64, sampled: u64) -> MapOutputMeta {
        MapOutputMeta {
            task: TaskId(task),
            dataset: Default::default(),
            total_records: total,
            sampled_records: sampled,
            duration_secs: 0.0,
        }
    }

    fn run_mapper(items: &[Vec<f64>]) -> Vec<(String, GroupStat)> {
        // Each item emits one value per inner element ("paragraph").
        let m = ThreeStageMapper::new(|item: &Vec<f64>, emit| {
            for &v in item {
                emit("w".to_string(), v);
            }
        });
        let mctx = MapTaskContext {
            task: TaskId(0),
            dataset: Default::default(),
            sampling_ratio: 1.0,
            attempt: 0,
        };
        let mut state = m.begin_task(&mctx);
        for item in items {
            m.map(&mut state, item.clone(), &mut |_, _| {});
        }
        let mut out = Vec::new();
        m.end_task(state, &mut |k, v| out.push((k, v)));
        out
    }

    #[test]
    fn mapper_groups_per_item() {
        let out = run_mapper(&[vec![1.0, 2.0], vec![3.0]]);
        assert_eq!(out.len(), 1);
        let stat = &out[0].1;
        assert_eq!(stat.items.len(), 2);
        assert_eq!(stat.items[0], (2, 3.0, 5.0));
        assert_eq!(stat.items[1], (1, 3.0, 9.0));
    }

    #[test]
    fn census_total_and_mean_per_pair_are_exact() {
        // Two blocks of two items; values per paragraph.
        let mut r = ThreeStageReducer::<String>::new(ThreeStageAggregation::Total, 0.95);
        let mut c = ctx(2);
        let block0 = run_mapper(&[vec![1.0, 2.0], vec![3.0]]);
        let block1 = run_mapper(&[vec![4.0], vec![5.0, 6.0]]);
        r.on_map_output(&meta(0, 2, 2), block0.clone(), &mut c);
        r.on_map_output(&meta(1, 2, 2), block1.clone(), &mut c);
        let out = r.finish(&mut c);
        assert_eq!(out[0].1.estimate, 21.0);
        assert_eq!(out[0].1.half_width, 0.0);

        let mut r = ThreeStageReducer::<String>::new(ThreeStageAggregation::MeanPerPair, 0.95);
        let mut c = ctx(2);
        r.on_map_output(&meta(0, 2, 2), block0, &mut c);
        r.on_map_output(&meta(1, 2, 2), block1, &mut c);
        let out = r.finish(&mut c);
        // 6 paragraphs totalling 21 → mean 3.5 per paragraph.
        assert!((out[0].1.estimate - 3.5).abs() < 1e-12);
        assert_eq!(out[0].1.half_width, 0.0);
    }

    #[test]
    fn sampled_three_stage_estimates_with_bounds() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        // Population: 20 blocks × 10 items × ~4 paragraphs of value ~5.
        let blocks: Vec<Vec<Vec<f64>>> = (0..20)
            .map(|_| {
                (0..10)
                    .map(|_| (0..4).map(|_| rng.gen_range(4.0..6.0)).collect())
                    .collect()
            })
            .collect();
        let truth: f64 = blocks.iter().flatten().flatten().sum();
        let mut r = ThreeStageReducer::<String>::new(ThreeStageAggregation::Total, 0.95);
        let mut c = ctx(20);
        // Execute 8 blocks, sampling 5 of 10 items each.
        for (t, b) in blocks.iter().take(8).enumerate() {
            let pairs = run_mapper(&b[..5]);
            r.on_map_output(&meta(t, 10, 5), pairs, &mut c);
        }
        let out = r.finish(&mut c);
        let iv = out[0].1;
        assert!(iv.half_width.is_finite() && iv.half_width > 0.0);
        assert!(
            iv.actual_error(truth) < 0.1,
            "estimate {} vs truth {truth}",
            iv.estimate
        );
    }

    #[test]
    fn silent_items_count_as_zero_groups() {
        // One block, 4 items sampled, only 2 emitted.
        let mut r = ThreeStageReducer::<String>::new(ThreeStageAggregation::Total, 0.95);
        let mut c = ctx(1);
        let pairs = run_mapper(&[vec![2.0], vec![4.0]]);
        r.on_map_output(&meta(0, 4, 4), pairs, &mut c);
        let out = r.finish(&mut c);
        // Census of the block: total 6 regardless of silent items.
        assert_eq!(out[0].1.estimate, 6.0);
        assert_eq!(out[0].1.half_width, 0.0);
    }
}
