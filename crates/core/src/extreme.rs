//! Approximation-aware templates for extreme-value (min/max) jobs —
//! the paper's `ApproxMinReducer` / `ApproxMaxReducer` (Section 3.2).
//!
//! Each map task computes candidate values (e.g. one simulated-annealing
//! search per input item) and ships only its per-task extreme; the
//! reduce fits a Generalized Extreme Value distribution to the per-map
//! extremes and reports both the best value actually observed and the
//! GEV-estimated extreme with a confidence interval. In target-error
//! mode the reduce requests that remaining maps be dropped as soon as
//! the interval is tight enough (Figure 2 of the paper).

use std::marker::PhantomData;

use approxhadoop_runtime::mapper::{MapTaskContext, Mapper};
use approxhadoop_runtime::reducer::{MapOutputMeta, ReduceContext, Reducer};
use approxhadoop_runtime::types::TaskId;
use approxhadoop_stats::gev::{MaxEstimator, MinEstimator};
use approxhadoop_stats::Interval;

/// Which extreme is being computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extreme {
    /// Estimate the population minimum.
    Min,
    /// Estimate the population maximum.
    Max,
}

/// Output of an extreme-value job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtremeOutput {
    /// The best value actually found by the executed maps.
    pub observed: f64,
    /// The GEV estimate of the true extreme, with its confidence
    /// interval; `None` if too few maps completed to fit.
    pub estimated: Option<Interval>,
    /// How many per-map extremes the estimate is based on.
    pub samples: usize,
}

/// Map-side template: the user `f(item, emit)` emits candidate values;
/// the task ships a single per-task extreme.
pub struct ExtremeMapper<I, F> {
    f: F,
    kind: Extreme,
    _marker: PhantomData<fn(I)>,
}

impl<I, F> ExtremeMapper<I, F>
where
    F: Fn(&I, &mut dyn FnMut(f64)) + Send + Sync,
{
    /// Creates a mapper computing `kind` over the values emitted by `f`.
    pub fn new(kind: Extreme, f: F) -> Self {
        ExtremeMapper {
            f,
            kind,
            _marker: PhantomData,
        }
    }
}

impl<I, F> Mapper for ExtremeMapper<I, F>
where
    I: Send + 'static,
    F: Fn(&I, &mut dyn FnMut(f64)) + Send + Sync,
{
    type Item = I;
    type Key = ();
    type Value = f64;
    type TaskState = Option<f64>;

    fn begin_task(&self, _ctx: &MapTaskContext) -> Self::TaskState {
        None
    }

    fn map(&self, state: &mut Option<f64>, item: I, _emit: &mut dyn FnMut((), f64)) {
        let kind = self.kind;
        (self.f)(&item, &mut |v| {
            *state = Some(match (*state, kind) {
                (None, _) => v,
                (Some(cur), Extreme::Min) => cur.min(v),
                (Some(cur), Extreme::Max) => cur.max(v),
            });
        });
    }

    fn end_task(&self, state: Option<f64>, emit: &mut dyn FnMut((), f64)) {
        if let Some(v) = state {
            emit((), v);
        }
    }
}

/// Reduce-side template: GEV fit over per-map extremes.
pub struct ExtremeReducer {
    kind: Extreme,
    confidence: f64,
    percentile: f64,
    /// Target relative half-width that triggers early termination, if in
    /// target-error mode.
    target_relative: Option<f64>,
    /// Minimum per-map samples before attempting a fit.
    min_samples: usize,
    /// When set, incoming values are raw observations rather than
    /// per-map extremes: the Block Minima/Maxima transform with this
    /// many blocks is applied before fitting (paper Section 3.2).
    block_transform: Option<usize>,
    values: Vec<f64>,
    /// Once the target is met the estimate is locked in; values racing
    /// the JobTracker's kill are discarded.
    frozen: bool,
}

impl ExtremeReducer {
    /// Creates a reducer estimating `kind` at `confidence`.
    pub fn new(kind: Extreme, confidence: f64) -> Self {
        ExtremeReducer {
            kind,
            confidence,
            percentile: approxhadoop_stats::gev::DEFAULT_EXTREME_PERCENTILE,
            target_relative: None,
            min_samples: 8,
            block_transform: None,
            values: Vec::new(),
            frozen: false,
        }
    }

    /// Treats incoming values as *raw* observations and applies the
    /// Block Minima/Maxima method with `blocks` blocks before fitting
    /// (for maps that emit all their values rather than a per-task
    /// extreme).
    pub fn with_block_transform(mut self, blocks: usize) -> Self {
        assert!(blocks > 0, "need at least one block");
        self.block_transform = Some(blocks);
        self
    }

    /// Sets the estimation percentile (default 1%).
    pub fn with_percentile(mut self, p: f64) -> Self {
        self.percentile = p;
        self
    }

    /// Enables target-error mode: once the interval's relative half-width
    /// drops to `target` (and at least `min_samples` maps completed), the
    /// reducer asks the JobTracker to drop all remaining maps.
    pub fn with_target(mut self, target: f64) -> Self {
        self.target_relative = Some(target);
        self
    }

    fn fit(&self) -> Option<Interval> {
        if self.values.len() < self.min_samples {
            return None;
        }
        let transformed;
        let sample: &[f64] = match self.block_transform {
            Some(blocks) => {
                transformed = match self.kind {
                    Extreme::Min => approxhadoop_stats::gev::block_minima(&self.values, blocks),
                    Extreme::Max => approxhadoop_stats::gev::block_maxima(&self.values, blocks),
                };
                if transformed.len() < 5 {
                    return None;
                }
                &transformed
            }
            None => &self.values,
        };
        let iv = match self.kind {
            Extreme::Min => MinEstimator::with_percentile(self.percentile)
                .estimate(sample, self.confidence)
                .ok(),
            Extreme::Max => MaxEstimator::with_percentile(self.percentile)
                .estimate(sample, self.confidence)
                .ok(),
        };
        iv.map(|iv| self.clamp_to_observed(iv))
    }

    /// The observed extreme is itself achievable, so a fitted estimate
    /// beyond it (above the observed min / below the observed max) is
    /// incoherent — sampling noise in the GEV fit can produce one. Clamp
    /// the point estimate to the observed value, keeping the far
    /// endpoint of the interval (the extrapolated bound) in place.
    fn clamp_to_observed(&self, iv: Interval) -> Interval {
        let observed = self.observed();
        if !observed.is_finite() {
            return iv;
        }
        let overshoot = match self.kind {
            Extreme::Min => iv.estimate - observed,
            Extreme::Max => observed - iv.estimate,
        };
        if overshoot <= 0.0 {
            return iv;
        }
        Interval::new(
            observed,
            (iv.half_width - overshoot).max(0.0),
            iv.confidence,
        )
    }

    fn observed(&self) -> f64 {
        match self.kind {
            Extreme::Min => self.values.iter().copied().fold(f64::INFINITY, f64::min),
            Extreme::Max => self
                .values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl Reducer for ExtremeReducer {
    type Key = ();
    type Value = f64;
    type Output = ExtremeOutput;

    fn on_map_output(
        &mut self,
        _meta: &MapOutputMeta,
        pairs: Vec<((), f64)>,
        ctx: &mut ReduceContext,
    ) {
        if self.frozen {
            return;
        }
        for (_, v) in pairs {
            self.values.push(v);
        }
        if let Some(target) = self.target_relative {
            if let Some(iv) = self.fit() {
                let rel = iv.relative_error();
                ctx.report_bound(rel);
                if rel <= target {
                    self.frozen = true;
                    ctx.request_drop_remaining();
                }
            }
        }
    }

    fn on_map_dropped(&mut self, _task: TaskId, _ctx: &mut ReduceContext) {}

    fn finish(&mut self, _ctx: &mut ReduceContext) -> Vec<ExtremeOutput> {
        if self.values.is_empty() {
            return vec![ExtremeOutput {
                observed: f64::NAN,
                estimated: None,
                samples: 0,
            }];
        }
        vec![ExtremeOutput {
            observed: self.observed(),
            estimated: self.fit(),
            samples: self.values.len(),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_runtime::control::JobControl;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn ctx(total: usize, control: &Arc<JobControl>) -> ReduceContext {
        ReduceContext::new(0, total, Arc::clone(control))
    }

    fn meta(task: usize) -> MapOutputMeta {
        MapOutputMeta {
            task: TaskId(task),
            dataset: Default::default(),
            total_records: 10,
            sampled_records: 10,
            duration_secs: 0.1,
        }
    }

    #[test]
    fn mapper_ships_per_task_extreme() {
        let m = ExtremeMapper::new(Extreme::Min, |item: &Vec<f64>, emit| {
            for &v in item {
                emit(v);
            }
        });
        let mctx = MapTaskContext {
            task: TaskId(0),
            dataset: Default::default(),
            sampling_ratio: 1.0,
            attempt: 0,
        };
        let mut state = m.begin_task(&mctx);
        m.map(&mut state, vec![5.0, 2.0], &mut |_, _| {});
        m.map(&mut state, vec![7.0, 3.0], &mut |_, _| {});
        let mut out = Vec::new();
        m.end_task(state, &mut |_, v| out.push(v));
        assert_eq!(out, vec![2.0]);
    }

    #[test]
    fn mapper_emits_nothing_without_values() {
        let m = ExtremeMapper::new(Extreme::Max, |_item: &u32, _emit| {});
        let mctx = MapTaskContext {
            task: TaskId(0),
            dataset: Default::default(),
            sampling_ratio: 1.0,
            attempt: 0,
        };
        let state = m.begin_task(&mctx);
        let mut out = Vec::new();
        m.end_task(state, &mut |_, v| out.push(v));
        assert!(out.is_empty());
    }

    #[test]
    fn reducer_estimates_minimum() {
        let mut rng = StdRng::seed_from_u64(5);
        let control = Arc::new(JobControl::new(1));
        let mut c = ctx(60, &control);
        let mut r = ExtremeReducer::new(Extreme::Min, 0.95);
        for t in 0..60 {
            let per_map_min = (0..400)
                .map(|_| rng.gen_range(10.0..30.0))
                .fold(f64::INFINITY, f64::min);
            r.on_map_output(&meta(t), vec![((), per_map_min)], &mut c);
        }
        let out = r.finish(&mut c);
        assert_eq!(out.len(), 1);
        assert!(out[0].observed >= 10.0);
        let iv = out[0].estimated.expect("enough samples to fit");
        assert!(
            iv.estimate > 8.0 && iv.estimate < 10.6,
            "estimate {}",
            iv.estimate
        );
        assert_eq!(out[0].samples, 60);
    }

    #[test]
    fn reducer_with_target_requests_drop() {
        let mut rng = StdRng::seed_from_u64(11);
        let control = Arc::new(JobControl::new(1));
        let mut c = ctx(1000, &control);
        // Loose 50% target: met quickly.
        let mut r = ExtremeReducer::new(Extreme::Min, 0.95).with_target(0.5);
        let mut fired_at = None;
        for t in 0..200 {
            let v = (0..300)
                .map(|_| rng.gen_range(100.0..200.0))
                .fold(f64::INFINITY, f64::min);
            r.on_map_output(&meta(t), vec![((), v)], &mut c);
            if control.drop_requested() {
                fired_at = Some(t);
                break;
            }
        }
        assert!(fired_at.is_some(), "target should be reached");
        assert!(fired_at.unwrap() < 199, "should fire before all maps run");
    }

    #[test]
    fn block_transform_fits_raw_values() {
        let mut rng = StdRng::seed_from_u64(41);
        let control = Arc::new(JobControl::new(1));
        let mut c = ctx(10, &control);
        // Maps emit RAW values (not per-map minima): the reducer must
        // apply Block Minima itself.
        let mut r = ExtremeReducer::new(Extreme::Min, 0.95).with_block_transform(40);
        for t in 0..10 {
            let pairs: Vec<((), f64)> =
                (0..200).map(|_| ((), rng.gen_range(50.0..150.0))).collect();
            r.on_map_output(&meta(t), pairs, &mut c);
        }
        let out = r.finish(&mut c);
        let iv = out[0].estimated.expect("fit from block minima");
        assert!(
            iv.estimate > 40.0 && iv.estimate < 55.0,
            "estimate {}",
            iv.estimate
        );
        assert_eq!(out[0].observed, out[0].observed.min(150.0));
    }

    #[test]
    fn reducer_handles_no_values() {
        let control = Arc::new(JobControl::new(1));
        let mut c = ctx(4, &control);
        let mut r = ExtremeReducer::new(Extreme::Max, 0.95);
        let out = r.finish(&mut c);
        assert_eq!(out[0].samples, 0);
        assert!(out[0].estimated.is_none());
    }

    #[test]
    fn too_few_samples_yields_no_estimate() {
        let control = Arc::new(JobControl::new(1));
        let mut c = ctx(4, &control);
        let mut r = ExtremeReducer::new(Extreme::Max, 0.95);
        for t in 0..3 {
            r.on_map_output(&meta(t), vec![((), t as f64)], &mut c);
        }
        let out = r.finish(&mut c);
        assert_eq!(out[0].observed, 2.0);
        assert!(out[0].estimated.is_none());
        assert_eq!(out[0].samples, 3);
    }
}
