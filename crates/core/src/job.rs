//! High-level job builders — the ergonomic entry point mirroring the
//! paper's "inherit the pre-defined classes, keep your map() code"
//! workflow.

use std::sync::Arc;

use approxhadoop_ipc::Wire;
use approxhadoop_runtime::engine::{
    run_job, run_job_process, run_job_with_coordinator, JobConfig, WorkerSpec,
};
use approxhadoop_runtime::input::InputSource;
use approxhadoop_runtime::metrics::JobMetrics;
use approxhadoop_runtime::types::Key;
use approxhadoop_runtime::{FixedCoordinator, JobId, JobSession};
use approxhadoop_stats::Interval;

use crate::extreme::{Extreme, ExtremeMapper, ExtremeOutput, ExtremeReducer};
use crate::multistage::{Aggregation, BoundMonitor, MultiStageMapper, MultiStageReducer};
use crate::spec::{ApproxSpec, ErrorTarget};
use crate::target::{SharedApproxState, TargetErrorCoordinator};
use crate::{CoreError, Result};

/// The outcome of an approximate job.
#[derive(Debug)]
pub struct ApproxResult<O> {
    /// The job's outputs.
    pub outputs: Vec<O>,
    /// Execution metrics (executed/dropped maps, sampling counts, wall
    /// time).
    pub metrics: JobMetrics,
    /// Chao1 estimate of the total number of distinct keys in the
    /// population, including keys the sampling missed (paper §3.1's
    /// extension; `None` for job types that don't compute it).
    pub distinct_keys_estimate: Option<f64>,
}

/// Builder for aggregation jobs (sum / count / mean) with multi-stage
/// sampling error bounds.
///
/// ```
/// use approxhadoop_core::job::AggregationJob;
/// use approxhadoop_core::spec::ApproxSpec;
/// use approxhadoop_runtime::input::VecSource;
///
/// let input = VecSource::new(vec![vec![1.0f64, 2.0], vec![3.0, 4.0]]);
/// let result = AggregationJob::sum(|x: &f64, emit: &mut dyn FnMut(&'static str, f64)| {
///     emit("total", *x)
/// })
/// .spec(ApproxSpec::Precise)
/// .run(&input)
/// .unwrap();
/// assert_eq!(result.outputs[0].1.estimate, 10.0);
/// ```
pub struct AggregationJob<I, K, F> {
    map_fn: F,
    agg: Aggregation,
    spec: ApproxSpec,
    config: JobConfig,
    _marker: std::marker::PhantomData<fn(I) -> K>,
}

impl<I, K, F> AggregationJob<I, K, F>
where
    I: Send + 'static,
    K: Key,
    F: Fn(&I, &mut dyn FnMut(K, f64)) + Send + Sync,
{
    fn new(agg: Aggregation, map_fn: F) -> Self {
        AggregationJob {
            map_fn,
            agg,
            spec: ApproxSpec::Precise,
            config: JobConfig::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// A job estimating per-key **sums** of the emitted values.
    pub fn sum(map_fn: F) -> Self {
        Self::new(Aggregation::Sum, map_fn)
    }

    /// A job estimating per-key **counts** (emit `1.0` per occurrence).
    pub fn count(map_fn: F) -> Self {
        Self::new(Aggregation::Count, map_fn)
    }

    /// A job estimating the per-item **mean** of the emitted values.
    pub fn mean(map_fn: F) -> Self {
        Self::new(Aggregation::Mean, map_fn)
    }

    /// Sets the approximation specification (default: precise).
    pub fn spec(mut self, spec: ApproxSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the engine configuration (slots, reducers, seed, …).
    pub fn config(mut self, config: JobConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the job on `input`.
    pub fn run<S>(self, input: &S) -> Result<ApproxResult<(K, Interval)>>
    where
        S: InputSource<Item = I>,
    {
        self.spec.validate()?;
        let total = input.splits().len();
        if total == 0 {
            return Err(CoreError::invalid("input has no splits"));
        }
        let confidence = self.spec.confidence();
        let agg = self.agg;
        let mapper = MultiStageMapper::new(self.map_fn);
        let mut config = self.config;
        let distinct_sink: crate::multistage::DistinctSink =
            Arc::new(parking_lot::Mutex::new(vec![None; config.reduce_tasks]));

        let job = match self.spec {
            ApproxSpec::Precise => {
                config.sampling_ratio = 1.0;
                config.drop_ratio = 0.0;
                run_job(
                    input,
                    &mapper,
                    |_| {
                        MultiStageReducer::<K>::new(agg, confidence)
                            .with_distinct_sink(Arc::clone(&distinct_sink))
                    },
                    config,
                )?
            }
            ApproxSpec::Ratios {
                drop_ratio,
                sampling_ratio,
            } => {
                config.sampling_ratio = sampling_ratio;
                config.drop_ratio = drop_ratio;
                run_job(
                    input,
                    &mapper,
                    |_| {
                        MultiStageReducer::<K>::new(agg, confidence)
                            .with_distinct_sink(Arc::clone(&distinct_sink))
                    },
                    config,
                )?
            }
            ApproxSpec::Target {
                target,
                confidence,
                pilot,
            } => {
                let shared = Arc::new(SharedApproxState::new(config.reduce_tasks));
                let mut coordinator = TargetErrorCoordinator::new(
                    total,
                    target,
                    confidence,
                    config.map_slots,
                    pilot,
                    Arc::clone(&shared),
                );
                let report_absolute = matches!(target, ErrorTarget::Absolute(_));
                let check_every = (total / 50).max(1);
                let freeze_threshold = Some(match target {
                    ErrorTarget::Relative(x) | ErrorTarget::Absolute(x) => x,
                });
                let min_maps_before_freeze = coordinator.wave1_count();
                config.sampling_ratio = 1.0;
                config.drop_ratio = 0.0;
                run_job_with_coordinator(
                    input,
                    &mapper,
                    |_| {
                        MultiStageReducer::<K>::new(agg, confidence)
                            .with_distinct_sink(Arc::clone(&distinct_sink))
                            .with_monitor(BoundMonitor {
                                shared: Arc::clone(&shared),
                                report_absolute,
                                check_every,
                                freeze_threshold,
                                min_maps_before_freeze,
                            })
                    },
                    config,
                    &mut coordinator,
                )?
            }
        };
        let mut outputs = job.outputs;
        outputs.sort_by(|a, b| a.0.cmp(&b.0));
        // Keys are hash-partitioned: the global distinct-key estimate is
        // the sum over reducer partitions (all must have reported).
        let slots = distinct_sink.lock();
        let distinct_keys_estimate = if slots.iter().all(|s| s.is_some()) {
            Some(slots.iter().map(|s| s.unwrap_or(0.0)).sum())
        } else {
            None
        };
        Ok(ApproxResult {
            outputs,
            metrics: job.metrics,
            distinct_keys_estimate,
        })
    }

    /// Runs the job on the **process backend**: map attempts execute in
    /// `config.workers` worker processes started from `worker`, with a
    /// spill-capable shuffle bounded by `config.shuffle_mem_bytes`.
    ///
    /// The worker binary — not this builder's `map_fn` — supplies the
    /// map function: `worker.job` must name a registered job applying
    /// the *same* mapping, or results will silently differ. All three
    /// approximation modes work, including the target-error controller
    /// (the bound monitor rides the reduce side, which stays in this
    /// process).
    pub fn run_on_workers<S>(
        self,
        input: &S,
        worker: &WorkerSpec,
    ) -> Result<ApproxResult<(K, Interval)>>
    where
        S: InputSource<Item = I>,
        I: Wire,
        K: Wire,
    {
        self.spec.validate()?;
        let total = input.splits().len();
        if total == 0 {
            return Err(CoreError::invalid("input has no splits"));
        }
        let confidence = self.spec.confidence();
        let agg = self.agg;
        let mut config = self.config;
        let distinct_sink: crate::multistage::DistinctSink =
            Arc::new(parking_lot::Mutex::new(vec![None; config.reduce_tasks]));
        let session = JobSession::new(JobId(0));

        let job = match self.spec {
            ApproxSpec::Precise | ApproxSpec::Ratios { .. } => {
                let (drop_ratio, sampling_ratio) = match self.spec {
                    ApproxSpec::Ratios {
                        drop_ratio,
                        sampling_ratio,
                    } => (drop_ratio, sampling_ratio),
                    _ => (0.0, 1.0),
                };
                config.sampling_ratio = sampling_ratio;
                config.drop_ratio = drop_ratio;
                let mut coordinator =
                    FixedCoordinator::new(total, sampling_ratio, drop_ratio, config.seed);
                run_job_process(
                    input,
                    worker,
                    |_| {
                        MultiStageReducer::<K>::new(agg, confidence)
                            .with_distinct_sink(Arc::clone(&distinct_sink))
                    },
                    config,
                    &mut coordinator,
                    &session,
                )?
            }
            ApproxSpec::Target {
                target,
                confidence,
                pilot,
            } => {
                let shared = Arc::new(SharedApproxState::new(config.reduce_tasks));
                let mut coordinator = TargetErrorCoordinator::new(
                    total,
                    target,
                    confidence,
                    config.map_slots,
                    pilot,
                    Arc::clone(&shared),
                );
                let report_absolute = matches!(target, ErrorTarget::Absolute(_));
                let check_every = (total / 50).max(1);
                let freeze_threshold = Some(match target {
                    ErrorTarget::Relative(x) | ErrorTarget::Absolute(x) => x,
                });
                let min_maps_before_freeze = coordinator.wave1_count();
                config.sampling_ratio = 1.0;
                config.drop_ratio = 0.0;
                run_job_process(
                    input,
                    worker,
                    |_| {
                        MultiStageReducer::<K>::new(agg, confidence)
                            .with_distinct_sink(Arc::clone(&distinct_sink))
                            .with_monitor(BoundMonitor {
                                shared: Arc::clone(&shared),
                                report_absolute,
                                check_every,
                                freeze_threshold,
                                min_maps_before_freeze,
                            })
                    },
                    config,
                    &mut coordinator,
                    &session,
                )?
            }
        };
        let mut outputs = job.outputs;
        outputs.sort_by(|a, b| a.0.cmp(&b.0));
        let slots = distinct_sink.lock();
        let distinct_keys_estimate = if slots.iter().all(|s| s.is_some()) {
            Some(slots.iter().map(|s| s.unwrap_or(0.0)).sum())
        } else {
            None
        };
        Ok(ApproxResult {
            outputs,
            metrics: job.metrics,
            distinct_keys_estimate,
        })
    }
}

/// Builder for extreme-value jobs (min / max) with GEV error bounds.
///
/// ```
/// use approxhadoop_core::job::ExtremeJob;
/// use approxhadoop_core::spec::ApproxSpec;
/// use approxhadoop_runtime::input::VecSource;
///
/// // 20 maps, each scanning one block of values.
/// let blocks: Vec<Vec<f64>> = (0..20)
///     .map(|b| (0..50).map(|i| 100.0 + ((b * 31 + i * 7) % 97) as f64).collect())
///     .collect();
/// let input = VecSource::new(blocks);
/// let result = ExtremeJob::min(|v: &f64, emit: &mut dyn FnMut(f64)| emit(*v))
///     .spec(ApproxSpec::ratios(0.25, 1.0))
///     .run(&input)
///     .unwrap();
/// assert!(result.outputs[0].observed >= 100.0);
/// ```
pub struct ExtremeJob<I, F> {
    map_fn: F,
    kind: Extreme,
    spec: ApproxSpec,
    config: JobConfig,
    percentile: f64,
    _marker: std::marker::PhantomData<fn(I)>,
}

impl<I, F> ExtremeJob<I, F>
where
    I: Send + 'static,
    F: Fn(&I, &mut dyn FnMut(f64)) + Send + Sync,
{
    fn new(kind: Extreme, map_fn: F) -> Self {
        ExtremeJob {
            map_fn,
            kind,
            spec: ApproxSpec::Precise,
            config: JobConfig::default(),
            percentile: approxhadoop_stats::gev::DEFAULT_EXTREME_PERCENTILE,
            _marker: std::marker::PhantomData,
        }
    }

    /// A job estimating the population **minimum**.
    pub fn min(map_fn: F) -> Self {
        Self::new(Extreme::Min, map_fn)
    }

    /// A job estimating the population **maximum**.
    pub fn max(map_fn: F) -> Self {
        Self::new(Extreme::Max, map_fn)
    }

    /// Sets the approximation specification (default: precise).
    pub fn spec(mut self, spec: ApproxSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the engine configuration. The reduce count is forced to 1
    /// (extreme jobs have a single intermediate key).
    pub fn config(mut self, config: JobConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the GEV estimation percentile (default 1%).
    pub fn percentile(mut self, p: f64) -> Self {
        self.percentile = p;
        self
    }

    /// Runs the job on `input`.
    pub fn run<S>(self, input: &S) -> Result<ApproxResult<ExtremeOutput>>
    where
        S: InputSource<Item = I>,
    {
        self.spec.validate()?;
        if input.splits().is_empty() {
            return Err(CoreError::invalid("input has no splits"));
        }
        let kind = self.kind;
        let percentile = self.percentile;
        let mapper = ExtremeMapper::new(kind, self.map_fn);
        let mut config = self.config;
        config.reduce_tasks = 1;

        let job = match self.spec {
            ApproxSpec::Precise => {
                config.sampling_ratio = 1.0;
                config.drop_ratio = 0.0;
                run_job(
                    input,
                    &mapper,
                    |_| ExtremeReducer::new(kind, 0.95).with_percentile(percentile),
                    config,
                )?
            }
            ApproxSpec::Ratios {
                drop_ratio,
                sampling_ratio,
            } => {
                config.sampling_ratio = sampling_ratio;
                config.drop_ratio = drop_ratio;
                run_job(
                    input,
                    &mapper,
                    |_| ExtremeReducer::new(kind, 0.95).with_percentile(percentile),
                    config,
                )?
            }
            ApproxSpec::Target {
                target,
                confidence,
                pilot: _,
            } => {
                let ErrorTarget::Relative(rel) = target else {
                    return Err(CoreError::invalid(
                        "extreme-value jobs support relative targets only",
                    ));
                };
                config.sampling_ratio = 1.0;
                config.drop_ratio = 0.0;
                run_job(
                    input,
                    &mapper,
                    |_| {
                        ExtremeReducer::new(kind, confidence)
                            .with_percentile(percentile)
                            .with_target(rel)
                    },
                    config,
                )?
            }
        };
        Ok(ApproxResult {
            outputs: job.outputs,
            metrics: job.metrics,
            distinct_keys_estimate: None,
        })
    }
}

/// Builder for **ratio** jobs (`R = Σy / Σx` per key) — the paper's
/// fourth aggregate.
///
/// ```
/// use approxhadoop_core::job::RatioJob;
/// use approxhadoop_runtime::input::VecSource;
///
/// // Mean bytes per request: y = bytes, x = 1 per request.
/// let input = VecSource::new(vec![vec![(100.0, 1.0), (300.0, 1.0)], vec![(200.0, 1.0)]]);
/// let result = RatioJob::new(|&(y, x): &(f64, f64), emit: &mut dyn FnMut(u8, (f64, f64))| {
///     emit(0, (y, x))
/// })
/// .run(&input)
/// .unwrap();
/// assert_eq!(result.outputs[0].1.estimate, 200.0);
/// ```
pub struct RatioJob<I, K, F> {
    map_fn: F,
    spec: ApproxSpec,
    config: JobConfig,
    _marker: std::marker::PhantomData<fn(I) -> K>,
}

impl<I, K, F> RatioJob<I, K, F>
where
    I: Send + 'static,
    K: Key,
    F: Fn(&I, &mut dyn FnMut(K, (f64, f64))) + Send + Sync,
{
    /// A job estimating per-key ratios of the emitted `(y, x)` pairs.
    pub fn new(map_fn: F) -> Self {
        RatioJob {
            map_fn,
            spec: ApproxSpec::Precise,
            config: JobConfig::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Sets the approximation specification. Ratio jobs support
    /// [`ApproxSpec::Precise`] and [`ApproxSpec::Ratios`]; target-error
    /// mode is not implemented for ratios (the paper's controller is
    /// defined for totals).
    pub fn spec(mut self, spec: ApproxSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the engine configuration.
    pub fn config(mut self, config: JobConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the job on `input`.
    pub fn run<S>(self, input: &S) -> Result<ApproxResult<(K, Interval)>>
    where
        S: InputSource<Item = I>,
    {
        self.spec.validate()?;
        if input.splits().is_empty() {
            return Err(CoreError::invalid("input has no splits"));
        }
        let confidence = self.spec.confidence();
        let mapper = crate::ratio::RatioMapper::new(self.map_fn);
        let mut config = self.config;
        let (drop_ratio, sampling_ratio) = match self.spec {
            ApproxSpec::Precise => (0.0, 1.0),
            ApproxSpec::Ratios {
                drop_ratio,
                sampling_ratio,
            } => (drop_ratio, sampling_ratio),
            ApproxSpec::Target { .. } => {
                return Err(CoreError::invalid(
                    "ratio jobs support Precise and Ratios specs only",
                ))
            }
        };
        config.drop_ratio = drop_ratio;
        config.sampling_ratio = sampling_ratio;
        let job = run_job(
            input,
            &mapper,
            |_| crate::ratio::RatioReducer::<K>::new(confidence),
            config,
        )?;
        let mut outputs = job.outputs;
        outputs.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(ApproxResult {
            outputs,
            metrics: job.metrics,
            distinct_keys_estimate: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_runtime::input::VecSource;

    fn sum_blocks(blocks: &[Vec<f64>]) -> f64 {
        blocks.iter().flatten().sum()
    }

    fn make_blocks(n_blocks: usize, per_block: usize, seed: u64) -> Vec<Vec<f64>> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_blocks)
            .map(|_| (0..per_block).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect()
    }

    #[test]
    fn precise_sum_is_exact() {
        let blocks = make_blocks(6, 50, 1);
        let truth = sum_blocks(&blocks);
        let input = VecSource::new(blocks);
        let result = AggregationJob::sum(|x: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *x))
            .run(&input)
            .unwrap();
        assert_eq!(result.outputs.len(), 1);
        assert!((result.outputs[0].1.estimate - truth).abs() < 1e-9);
        assert_eq!(result.outputs[0].1.half_width, 0.0);
        assert_eq!(result.metrics.dropped_maps, 0);
    }

    #[test]
    fn ratio_spec_produces_bounded_estimate() {
        let blocks = make_blocks(40, 200, 2);
        let truth = sum_blocks(&blocks);
        let input = VecSource::new(blocks);
        let result = AggregationJob::sum(|x: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *x))
            .spec(ApproxSpec::ratios(0.25, 0.2))
            .run(&input)
            .unwrap();
        let iv = result.outputs[0].1;
        assert!(iv.half_width > 0.0 && iv.half_width.is_finite());
        assert!(
            (iv.estimate - truth).abs() / truth < 0.2,
            "estimate {} vs truth {truth}",
            iv.estimate
        );
        assert_eq!(result.metrics.dropped_maps, 10);
        assert!(result.metrics.effective_sampling_ratio() < 0.3);
    }

    #[test]
    fn target_mode_meets_bound_and_saves_work() {
        let blocks = make_blocks(60, 300, 3);
        let truth = sum_blocks(&blocks);
        let input = VecSource::new(blocks);
        let config = JobConfig {
            map_slots: 8,
            ..Default::default()
        };
        let result = AggregationJob::sum(|x: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *x))
            .spec(ApproxSpec::target(0.05, 0.95))
            .config(config)
            .run(&input)
            .unwrap();
        let iv = result.outputs[0].1;
        assert!(
            iv.relative_error() <= 0.05 + 1e-9,
            "bound {} exceeds target",
            iv.relative_error()
        );
        assert!(
            iv.contains(truth) || iv.actual_error(truth) < 0.05,
            "estimate {} ± {} vs truth {truth}",
            iv.estimate,
            iv.half_width
        );
        assert!(
            result.metrics.executed_maps < 60 || result.metrics.effective_sampling_ratio() < 1.0,
            "target mode should approximate something"
        );
    }

    #[test]
    fn tight_target_runs_precise() {
        // An impossible target (0.0001%) on noisy data: the controller
        // must fall back to (near-)precise execution and the bound
        // reported must reflect whatever was achieved.
        let blocks = make_blocks(10, 50, 4);
        let truth = sum_blocks(&blocks);
        let input = VecSource::new(blocks);
        let result = AggregationJob::sum(|x: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *x))
            .spec(ApproxSpec::target(0.000001, 0.95))
            .run(&input)
            .unwrap();
        // Everything ran precisely → exact result.
        assert_eq!(result.metrics.executed_maps, 10);
        assert!((result.outputs[0].1.estimate - truth).abs() < 1e-9);
    }

    #[test]
    fn count_and_mean_aggregations() {
        let blocks: Vec<Vec<f64>> = (0..4).map(|_| vec![2.0; 25]).collect();
        let input = VecSource::new(blocks);
        let result = AggregationJob::count(|_x: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, 1.0))
            .run(&input)
            .unwrap();
        assert_eq!(result.outputs[0].1.estimate, 100.0);

        let input = VecSource::new((0..4).map(|_| vec![2.0f64; 25]).collect::<Vec<_>>());
        let result = AggregationJob::mean(|x: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *x))
            .run(&input)
            .unwrap();
        assert!((result.outputs[0].1.estimate - 2.0).abs() < 1e-12);
    }

    #[test]
    fn extreme_job_precise_and_target() {
        let blocks: Vec<Vec<f64>> = (0..30)
            .map(|b| {
                (0..100)
                    .map(|i| 50.0 + ((b * 13 + i * 7) % 101) as f64)
                    .collect()
            })
            .collect();
        let true_min = blocks
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let input = VecSource::new(blocks);
        let result = ExtremeJob::min(|v: &f64, emit: &mut dyn FnMut(f64)| emit(*v))
            .run(&input)
            .unwrap();
        assert_eq!(result.outputs[0].observed, true_min);

        let result = ExtremeJob::min(|v: &f64, emit: &mut dyn FnMut(f64)| emit(*v))
            .spec(ApproxSpec::target(0.5, 0.95))
            .run(&input)
            .unwrap();
        assert!(result.outputs[0].samples >= 8);
    }

    #[test]
    fn extreme_job_rejects_absolute_target() {
        let input = VecSource::new(vec![vec![1.0f64]]);
        let spec = ApproxSpec::Target {
            target: ErrorTarget::Absolute(1.0),
            confidence: 0.95,
            pilot: None,
        };
        let r = ExtremeJob::min(|v: &f64, emit: &mut dyn FnMut(f64)| emit(*v))
            .spec(spec)
            .run(&input);
        assert!(r.is_err());
    }

    #[test]
    fn distinct_keys_estimate_extrapolates_missed_keys() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // 500 keys, Zipf-ish: sampling misses the rare ones; the Chao1
        // estimate must land far closer to 500 than the observed count.
        let mut rng = StdRng::seed_from_u64(3);
        let blocks: Vec<Vec<u64>> = (0..20)
            .map(|_| {
                (0..400)
                    .map(|_| {
                        let u: f64 = rng.gen();
                        (u * u * u * 500.0) as u64 // skew towards low keys
                    })
                    .collect()
            })
            .collect();
        let mut all = std::collections::HashSet::new();
        for b in &blocks {
            all.extend(b.iter().copied());
        }
        let true_distinct = all.len() as f64;
        let input = VecSource::new(blocks);
        let r = AggregationJob::count(|k: &u64, emit: &mut dyn FnMut(u64, f64)| emit(*k, 1.0))
            .spec(ApproxSpec::ratios(0.5, 0.1))
            .run(&input)
            .unwrap();
        let observed = r.outputs.len() as f64;
        let est = r.distinct_keys_estimate.expect("estimate available");
        assert!(observed < true_distinct, "sampling must miss keys");
        assert!(
            est > observed,
            "extrapolation must exceed the observed count"
        );
        assert!(
            (est - true_distinct).abs() < (observed - true_distinct).abs(),
            "Chao1 {est} should beat observed {observed} against truth {true_distinct}"
        );
    }

    #[test]
    fn invalid_spec_is_rejected_before_running() {
        let input = VecSource::new(vec![vec![1.0f64]]);
        let r = AggregationJob::sum(|x: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *x))
            .spec(ApproxSpec::ratios(2.0, 0.5))
            .run(&input);
        assert!(matches!(r, Err(CoreError::InvalidSpec { .. })));
    }
}
