//! Approximation specifications — how the user directs an approximate
//! job (paper Section 4.2).

use crate::{CoreError, Result};

/// The error bound the user wants, at a confidence level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorTarget {
    /// Maximum relative error, e.g. `0.01` = ±1% of the estimate (for the
    /// key with the largest predicted absolute error).
    Relative(f64),
    /// Maximum absolute error in output units.
    Absolute(f64),
}

impl ErrorTarget {
    fn validate(&self) -> Result<()> {
        let v = match self {
            ErrorTarget::Relative(v) | ErrorTarget::Absolute(v) => *v,
        };
        if !(v.is_finite() && v > 0.0) {
            return Err(CoreError::invalid(format!(
                "error target must be positive and finite, got {v}"
            )));
        }
        Ok(())
    }
}

/// Configuration of a pilot wave (paper Section 4.4): a small number of
/// maps run first at a fixed sampling ratio purely to gather statistics,
/// so even single-wave jobs can be approximated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PilotSpec {
    /// Number of pilot map tasks.
    pub tasks: usize,
    /// Sampling ratio used by the pilot maps.
    pub sampling_ratio: f64,
}

impl Default for PilotSpec {
    fn default() -> Self {
        PilotSpec {
            tasks: 4,
            sampling_ratio: 0.01,
        }
    }
}

/// How a job should approximate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ApproxSpec {
    /// Run everything precisely (error bounds are exact zeros).
    #[default]
    Precise,
    /// User-specified ratios: drop `drop_ratio` of the map tasks and
    /// sample each executed block at `sampling_ratio`; error bounds are
    /// computed for the chosen ratios.
    Ratios {
        /// Fraction of map tasks to drop, in `[0, 1)`.
        drop_ratio: f64,
        /// Within-block input sampling ratio, in `(0, 1]`.
        sampling_ratio: f64,
    },
    /// User-specified target error bound at a confidence level;
    /// ApproxHadoop chooses the dropping/sampling ratios itself.
    ///
    /// Contract: if the job stops early (maps dropped or killed), the
    /// reported interval is the one that met the target — the reduce
    /// freezes its estimate at that moment. If even executing every
    /// remaining map at the planned sampling ratio cannot meet the
    /// target (possible on small, highly heterogeneous inputs, since a
    /// sampled block cannot be re-read), the job runs to completion and
    /// reports the best achievable bound.
    Target {
        /// The desired maximum error.
        target: ErrorTarget,
        /// Confidence level in `(0, 1)`, e.g. `0.95`.
        confidence: f64,
        /// Optional pilot wave.
        pilot: Option<PilotSpec>,
    },
}

impl ApproxSpec {
    /// User-specified ratios (paper mode 1).
    ///
    /// See [`ApproxSpec::Ratios`] for the ranges.
    pub fn ratios(drop_ratio: f64, sampling_ratio: f64) -> Self {
        ApproxSpec::Ratios {
            drop_ratio,
            sampling_ratio,
        }
    }

    /// Target relative error bound at a confidence level (paper mode 2).
    pub fn target(relative_error: f64, confidence: f64) -> Self {
        ApproxSpec::Target {
            target: ErrorTarget::Relative(relative_error),
            confidence,
            pilot: None,
        }
    }

    /// Adds a pilot wave to a target-error spec.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not [`ApproxSpec::Target`].
    pub fn with_pilot(self, pilot: PilotSpec) -> Self {
        match self {
            ApproxSpec::Target {
                target, confidence, ..
            } => ApproxSpec::Target {
                target,
                confidence,
                pilot: Some(pilot),
            },
            _ => panic!("with_pilot requires a Target spec"),
        }
    }

    /// The confidence level at which bounds should be computed
    /// (`0.95` unless a target spec overrides it).
    pub fn confidence(&self) -> f64 {
        match self {
            ApproxSpec::Target { confidence, .. } => *confidence,
            _ => 0.95,
        }
    }

    /// Validates every field.
    pub fn validate(&self) -> Result<()> {
        match self {
            ApproxSpec::Precise => Ok(()),
            ApproxSpec::Ratios {
                drop_ratio,
                sampling_ratio,
            } => {
                if !(0.0..1.0).contains(drop_ratio) {
                    return Err(CoreError::invalid(format!(
                        "drop_ratio must lie in [0, 1), got {drop_ratio}"
                    )));
                }
                if !(*sampling_ratio > 0.0 && *sampling_ratio <= 1.0) {
                    return Err(CoreError::invalid(format!(
                        "sampling_ratio must lie in (0, 1], got {sampling_ratio}"
                    )));
                }
                Ok(())
            }
            ApproxSpec::Target {
                target,
                confidence,
                pilot,
            } => {
                target.validate()?;
                if !(0.0 < *confidence && *confidence < 1.0) {
                    return Err(CoreError::invalid(format!(
                        "confidence must lie in (0, 1), got {confidence}"
                    )));
                }
                if let Some(p) = pilot {
                    if p.tasks == 0 {
                        return Err(CoreError::invalid("pilot must run at least one task"));
                    }
                    if !(p.sampling_ratio > 0.0 && p.sampling_ratio <= 1.0) {
                        return Err(CoreError::invalid(format!(
                            "pilot sampling_ratio must lie in (0, 1], got {}",
                            p.sampling_ratio
                        )));
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_precise() {
        assert_eq!(ApproxSpec::default(), ApproxSpec::Precise);
        assert!(ApproxSpec::Precise.validate().is_ok());
    }

    #[test]
    fn ratios_validation() {
        assert!(ApproxSpec::ratios(0.25, 0.1).validate().is_ok());
        assert!(ApproxSpec::ratios(1.0, 0.1).validate().is_err());
        assert!(ApproxSpec::ratios(-0.1, 0.1).validate().is_err());
        assert!(ApproxSpec::ratios(0.0, 0.0).validate().is_err());
        assert!(ApproxSpec::ratios(0.0, 1.1).validate().is_err());
    }

    #[test]
    fn target_validation() {
        assert!(ApproxSpec::target(0.01, 0.95).validate().is_ok());
        assert!(ApproxSpec::target(0.0, 0.95).validate().is_err());
        assert!(ApproxSpec::target(0.01, 1.0).validate().is_err());
        let t = ApproxSpec::Target {
            target: ErrorTarget::Absolute(100.0),
            confidence: 0.99,
            pilot: None,
        };
        assert!(t.validate().is_ok());
    }

    #[test]
    fn pilot_validation() {
        let ok = ApproxSpec::target(0.01, 0.95).with_pilot(PilotSpec::default());
        assert!(ok.validate().is_ok());
        let bad = ApproxSpec::target(0.01, 0.95).with_pilot(PilotSpec {
            tasks: 0,
            sampling_ratio: 0.1,
        });
        assert!(bad.validate().is_err());
        let bad = ApproxSpec::target(0.01, 0.95).with_pilot(PilotSpec {
            tasks: 2,
            sampling_ratio: 0.0,
        });
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn with_pilot_requires_target() {
        let _ = ApproxSpec::Precise.with_pilot(PilotSpec::default());
    }

    #[test]
    fn confidence_default() {
        assert_eq!(ApproxSpec::Precise.confidence(), 0.95);
        assert_eq!(ApproxSpec::target(0.01, 0.9).confidence(), 0.9);
    }
}
