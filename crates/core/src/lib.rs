//! ApproxHadoop-RS core: the approximation mechanisms and error-bounded
//! MapReduce templates of the ASPLOS'15 paper.
//!
//! Three approximation mechanisms (paper Section 3):
//!
//! 1. **Input data sampling** — map tasks process a random subset of
//!    their block's records (mechanism provided by the runtime's input
//!    sources; policy set here).
//! 2. **Task dropping** — only a subset of map tasks executes; the rest
//!    are dropped up front or killed mid-flight.
//! 3. **User-defined approximation** ([`userdef`]) — the user supplies a
//!    precise and an approximate version of the map code.
//!
//! Error bounds come from two statistical theories:
//!
//! * [`multistage`] — templates for **aggregation** reduces (sum, count,
//!   mean): [`multistage::MultiStageMapper`] gathers per-block/per-key
//!   statistics, [`multistage::MultiStageReducer`] applies two-stage
//!   cluster sampling (paper Eq. 1–3) and emits `τ̂ ± ε` per key.
//! * [`extreme`] — templates for **min/max** reduces using Generalized
//!   Extreme Value fitting (paper Section 3.2).
//!
//! Two usage modes (paper Section 4.2), expressed as an [`ApproxSpec`]:
//!
//! * user-specified dropping/sampling **ratios** — ApproxHadoop computes
//!   the resulting error bounds;
//! * a **target error bound** at a confidence level — the
//!   [`target::TargetErrorCoordinator`] runs a first (or pilot) wave,
//!   fits the task timing model `t_map(M,m) = t0 + M·t_r + m·t_p`
//!   (Eq. 5), solves the runtime-minimisation problem (Eq. 4–7), and
//!   drops all remaining maps the moment every reduce task reports the
//!   target met.
//!
//! The easiest entry points are the [`job`] builders:
//!
//! ```
//! use approxhadoop_core::job::AggregationJob;
//! use approxhadoop_core::spec::ApproxSpec;
//! use approxhadoop_runtime::input::VecSource;
//!
//! // Approximate word count: 25% of maps dropped, 50% of lines sampled.
//! let blocks: Vec<Vec<String>> = (0..8)
//!     .map(|b| (0..100).map(|i| format!("w{} w{}", i % 7, (b + i) % 3)).collect())
//!     .collect();
//! let input = VecSource::new(blocks);
//! let result = AggregationJob::sum(|line: &String, emit: &mut dyn FnMut(String, f64)| {
//!     for w in line.split_whitespace() {
//!         emit(w.to_string(), 1.0);
//!     }
//! })
//! .spec(ApproxSpec::ratios(0.25, 0.5))
//! .run(&input)
//! .unwrap();
//! for (_word, interval) in &result.outputs {
//!     assert!(interval.half_width.is_finite());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod extreme;
pub mod job;
pub mod keystat;
pub mod multistage;
pub mod ratio;
pub mod spec;
pub mod target;
pub mod threestage;
pub mod userdef;

pub use error::CoreError;
pub use keystat::{KeyStat, KeyStatCombiner};
pub use spec::{ApproxSpec, ErrorTarget, PilotSpec};

/// Result alias for core operations.
pub type Result<T> = std::result::Result<T, CoreError>;
