//! The target-error-bound controller (paper Section 4.4).
//!
//! When the user specifies a target error bound instead of explicit
//! ratios, ApproxHadoop must *choose* the dropping/sampling ratios. The
//! pieces:
//!
//! * [`SharedApproxState`] — reduce tasks publish the worst key's
//!   [`WaveStatistics`] here (the JobTracker "collecting error estimates
//!   from all reduce tasks");
//! * [`TimingModel`] — a fit of `t_map(M, m) = t0 + M·t_r + m·t_p`
//!   (Eq. 5) from completed-map measurements;
//! * [`plan`] — the optimisation problem: minimise the remaining
//!   execution time `RET = n₂ · t_map(M̄, m)` subject to the predicted
//!   bound meeting the target (Eq. 4, 6–7), solved by scanning `n₂` with
//!   a binary search over `m` and a lower-bound prune;
//! * [`TargetErrorCoordinator`] — the [`Coordinator`] gluing it together:
//!   first (or pilot) wave, re-planning as statistics arrive, dropping
//!   the tail once the plan is exhausted or every reducer meets the
//!   target.

use std::sync::Arc;

use parking_lot::Mutex;

use approxhadoop_runtime::control::{Coordinator, JobControl, MapDirective};
use approxhadoop_runtime::input::SplitMeta;
use approxhadoop_runtime::metrics::MapStats;
use approxhadoop_runtime::types::TaskId;
use approxhadoop_stats::dist::cached_two_sided_critical_value;
use approxhadoop_stats::multistage::WaveStatistics;

use crate::spec::{ErrorTarget, PilotSpec};

/// One reduce task's published view of its worst key.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveReport {
    /// Maps (completed + dropped) the reducer had seen when publishing.
    pub maps_seen: usize,
    /// Largest absolute half-width across the reducer's keys.
    pub worst_abs: f64,
    /// The corresponding relative bound.
    pub worst_rel: f64,
    /// The worst key's statistics, for the planner.
    pub wave: WaveStatistics,
}

/// Shared state through which reduce tasks feed the planner.
#[derive(Debug)]
pub struct SharedApproxState {
    slots: Mutex<Vec<Option<WaveReport>>>,
}

impl SharedApproxState {
    /// Creates state for `reduce_tasks` reducers.
    pub fn new(reduce_tasks: usize) -> Self {
        SharedApproxState {
            slots: Mutex::new(vec![None; reduce_tasks]),
        }
    }

    /// Publishes reducer `partition`'s latest report.
    pub fn publish(&self, partition: usize, report: WaveReport) {
        let mut slots = self.slots.lock();
        if partition < slots.len() {
            slots[partition] = Some(report);
        }
    }

    /// Snapshot of every reducer's latest report.
    pub fn reports(&self) -> Vec<Option<WaveReport>> {
        self.slots.lock().clone()
    }

    /// The globally worst report (largest absolute half-width), provided
    /// **every** reducer has published one; `None` otherwise.
    pub fn worst_report(&self) -> Option<WaveReport> {
        let slots = self.slots.lock();
        let mut worst: Option<WaveReport> = None;
        for slot in slots.iter() {
            let r = slot.as_ref()?;
            if worst.as_ref().is_none_or(|w| r.worst_abs > w.worst_abs) {
                worst = Some(r.clone());
            }
        }
        worst
    }
}

/// The paper's map-task running-time model (Eq. 5):
/// `t_map(M, m) = t0 + M·t_r + m·t_p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Base task start-up time (seconds).
    pub t0: f64,
    /// Per-record read time (seconds).
    pub tr: f64,
    /// Per-record processing time (seconds).
    pub tp: f64,
}

impl TimingModel {
    /// Predicted duration of a map over a block of `m_total` records
    /// processing `m_sampled` of them.
    pub fn t_map(&self, m_total: f64, m_sampled: f64) -> f64 {
        self.t0 + m_total * self.tr + m_sampled * self.tp
    }

    /// Fits the model from completed-map measurements.
    ///
    /// Read time scales with `M` (every record is read even when not
    /// processed — the paper's observation about why sampling saves less
    /// than dropping), processing time with `m`:
    /// `t_r = Σ read / ΣM`, `t_p = Σ(duration − read) / Σm`, and `t0`
    /// absorbs the residual mean (clamped at 0).
    ///
    /// Returns `None` if `stats` is empty or degenerate.
    pub fn fit(stats: &[MapStats]) -> Option<TimingModel> {
        if stats.is_empty() {
            return None;
        }
        let n = stats.len() as f64;
        let sum_m_total: f64 = stats.iter().map(|s| s.total_records as f64).sum();
        let sum_m_sampled: f64 = stats.iter().map(|s| s.sampled_records as f64).sum();
        let sum_read: f64 = stats.iter().map(|s| s.read_secs).sum();
        let sum_proc: f64 = stats
            .iter()
            .map(|s| (s.duration_secs - s.read_secs).max(0.0))
            .sum();
        if sum_m_total <= 0.0 {
            return None;
        }
        let tr = sum_read / sum_m_total;
        let tp = if sum_m_sampled > 0.0 {
            sum_proc / sum_m_sampled
        } else {
            0.0
        };
        let mean_dur: f64 = stats.iter().map(|s| s.duration_secs).sum::<f64>() / n;
        let t0 = (mean_dur - tr * sum_m_total / n - tp * sum_m_sampled / n).max(0.0);
        Some(TimingModel { t0, tr, tp })
    }
}

/// A chosen continuation: run `additional_tasks` more maps at
/// `sampling_ratio`, then drop the rest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// `n₂` — further map tasks to execute.
    pub additional_tasks: u64,
    /// Sampling ratio `m / M̄` for those tasks.
    pub sampling_ratio: f64,
    /// Whether the target is predicted to be met. When `false` the plan
    /// degenerates to "run everything remaining precisely" (the paper's
    /// "no approximation is possible" outcome).
    pub feasible: bool,
}

/// The default planning safety margin (see [`plan_with_margin`]).
pub const DEFAULT_PLANNING_MARGIN: f64 = 0.8;

/// Solves the Section 4.4 optimisation problem with the default safety
/// margin; see [`plan_with_margin`].
pub fn plan(
    wave: &WaveStatistics,
    timing: &TimingModel,
    target: ErrorTarget,
    confidence: f64,
    remaining: u64,
) -> Plan {
    plan_with_margin(
        wave,
        timing,
        target,
        confidence,
        remaining,
        DEFAULT_PLANNING_MARGIN,
    )
}

/// Solves the Section 4.4 optimisation problem.
///
/// Minimises `RET = n₂ · t_map(M̄, m)` over `(n₂, m)` subject to the
/// predicted bound (Eq. 4, 6–7) meeting `margin × target` at
/// `confidence`. `remaining` caps `n₂`.
///
/// `margin < 1` plans for a tighter bound than requested: the prediction
/// comes from noisy first-wave statistics, and once a block has been
/// sampled it cannot be re-read — without headroom, a job that runs its
/// whole plan can land just above the target with no way back. The
/// ablation benches measure the effect (`--bin ablation`).
pub fn plan_with_margin(
    wave: &WaveStatistics,
    timing: &TimingModel,
    target: ErrorTarget,
    confidence: f64,
    remaining: u64,
    margin: f64,
) -> Plan {
    let mbar = wave.mean_cluster_size.max(1.0);
    let allowed = margin
        * match target {
            ErrorTarget::Relative(x) => x * wave.estimate.abs(),
            ErrorTarget::Absolute(x) => x,
        };
    if allowed <= 0.0 {
        return Plan {
            additional_tasks: remaining,
            sampling_ratio: 1.0,
            feasible: false,
        };
    }
    let n1 = wave.completed_clusters;

    // meets(n2, m): predicted variance within the allowance at the
    // t-quantile for n = n1 + n2 (cached per n2).
    let allowed_var = |n2: u64| -> f64 {
        let n = n1 + n2;
        if n < 2 {
            return -1.0;
        }
        let t = cached_two_sided_critical_value((n - 1) as f64, confidence);
        (allowed / t) * (allowed / t)
    };

    // Already met without any further task?
    if n1 >= 2 && wave.predicted_variance(0, mbar) <= allowed_var(0) {
        return Plan {
            additional_tasks: 0,
            sampling_ratio: 1.0,
            feasible: true,
        };
    }

    let mut best: Option<(u64, f64, f64)> = None; // (n2, m, ret)
    for n2 in 1..=remaining {
        // Prune: even the cheapest possible per-task time rules this out.
        let t_cheapest = timing.t_map(mbar, 1.0).max(1e-12);
        if let Some((_, _, ret)) = best {
            if n2 as f64 * t_cheapest >= ret {
                break;
            }
        }
        let av = allowed_var(n2);
        if av < 0.0 || wave.predicted_variance(n2, mbar) > av {
            continue; // infeasible even running these tasks precisely
        }
        // Smallest m meeting the bound (variance is decreasing in m).
        let mut lo = 1u64;
        let mut hi = mbar.ceil() as u64;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if wave.predicted_variance(n2, mid as f64) <= av {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let m = lo as f64;
        let ret = n2 as f64 * timing.t_map(mbar, m);
        if best.is_none_or(|(_, _, b)| ret < b) {
            best = Some((n2, m, ret));
        }
    }
    match best {
        Some((n2, m, _)) => Plan {
            additional_tasks: n2,
            sampling_ratio: (m / mbar).clamp(1e-6, 1.0),
            feasible: true,
        },
        None => Plan {
            additional_tasks: remaining,
            sampling_ratio: 1.0,
            feasible: false,
        },
    }
}

/// The [`Coordinator`] implementing target-error mode.
pub struct TargetErrorCoordinator {
    total: usize,
    target: ErrorTarget,
    confidence: f64,
    wave1_count: usize,
    wave1_ratio: f64,
    shared: Arc<SharedApproxState>,
    completed: Vec<MapStats>,
    scheduled_run: usize,
    current_plan: Option<Plan>,
    allowed_total: usize,
    replan_every: usize,
    completions_since_plan: usize,
    margin: f64,
}

impl TargetErrorCoordinator {
    /// Creates a coordinator.
    ///
    /// * `total` — total map tasks;
    /// * `wave_size` — tasks per wave (usually the cluster's map slots);
    /// * `pilot` — optional pilot wave replacing the precise first wave.
    pub fn new(
        total: usize,
        target: ErrorTarget,
        confidence: f64,
        wave_size: usize,
        pilot: Option<PilotSpec>,
        shared: Arc<SharedApproxState>,
    ) -> Self {
        let (wave1_count, wave1_ratio) = match pilot {
            Some(p) => (p.tasks.min(total), p.sampling_ratio),
            None => (wave_size.max(2).min(total), 1.0),
        };
        TargetErrorCoordinator {
            total,
            target,
            confidence,
            wave1_count,
            wave1_ratio,
            shared,
            completed: Vec::new(),
            scheduled_run: 0,
            current_plan: None,
            allowed_total: total,
            replan_every: (total / 100).max(1),
            completions_since_plan: 0,
            margin: DEFAULT_PLANNING_MARGIN,
        }
    }

    /// Overrides the planning safety margin (default
    /// [`DEFAULT_PLANNING_MARGIN`]); `1.0` plans to the exact target, as
    /// the paper describes.
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(margin > 0.0 && margin <= 1.0, "margin must lie in (0, 1]");
        self.margin = margin;
        self
    }

    /// The latest plan, if any (for instrumentation).
    pub fn current_plan(&self) -> Option<Plan> {
        self.current_plan
    }

    /// The first-wave size: completions required before any early stop.
    pub fn wave1_count(&self) -> usize {
        self.wave1_count
    }

    /// Whether the reduce tasks' latest reports already meet the target.
    ///
    /// The reports must be *current*: each reducer must have digested at
    /// least as many map events as the tracker has seen completions,
    /// otherwise an in-flight map output could still move the bound
    /// after the drop decision.
    fn reported_bound_met(&self) -> bool {
        match self.shared.worst_report() {
            Some(r) => {
                if r.maps_seen < self.completed.len() {
                    return false;
                }
                let (achieved, wanted) = match self.target {
                    ErrorTarget::Relative(x) => (r.worst_rel, x),
                    ErrorTarget::Absolute(x) => (r.worst_abs, x),
                };
                achieved <= wanted
            }
            None => false,
        }
    }

    fn replan(&mut self) {
        // Need the first wave done and reducer statistics available.
        if self.completed.len() < self.wave1_count.min(self.total) {
            return;
        }
        let Some(report) = self.shared.worst_report() else {
            return;
        };
        let Some(timing) = TimingModel::fit(&self.completed) else {
            return;
        };
        // Plan from what has actually been scheduled: tasks already
        // dispatched will complete regardless.
        let observed = report.wave;
        let remaining = (self.total - self.scheduled_run.min(self.total)) as u64;
        if remaining == 0 {
            return;
        }
        let p = plan_with_margin(
            &observed,
            &timing,
            self.target,
            self.confidence,
            remaining,
            self.margin,
        );
        self.allowed_total = (self.scheduled_run + p.additional_tasks as usize).min(self.total);
        // Never stop below two executed clusters.
        self.allowed_total = self.allowed_total.max(2.min(self.total));
        self.current_plan = Some(p);
    }
}

impl Coordinator for TargetErrorCoordinator {
    fn directive(&mut self, _task: TaskId, _meta: &SplitMeta) -> MapDirective {
        if self.scheduled_run < self.wave1_count {
            self.scheduled_run += 1;
            return MapDirective::Run {
                sampling_ratio: self.wave1_ratio,
            };
        }
        if self.current_plan.is_none() {
            self.replan();
        }
        match self.current_plan {
            None => {
                // Statistics not ready yet: keep the first-wave policy.
                self.scheduled_run += 1;
                MapDirective::Run {
                    sampling_ratio: self.wave1_ratio,
                }
            }
            Some(p) => {
                if self.scheduled_run < self.allowed_total {
                    self.scheduled_run += 1;
                    return MapDirective::Run {
                        sampling_ratio: if p.feasible { p.sampling_ratio } else { 1.0 },
                    };
                }
                // Plan exhausted. The plan was a *prediction* from noisy
                // first-wave statistics; only drop the tail once the
                // reducers confirm the achieved bound (the paper keeps
                // re-planning wave after wave otherwise).
                if self.reported_bound_met() {
                    return MapDirective::Drop;
                }
                self.replan();
                let ratio = match self.current_plan {
                    Some(p) if p.feasible => p.sampling_ratio,
                    _ => 1.0,
                };
                self.scheduled_run += 1;
                MapDirective::Run {
                    sampling_ratio: ratio,
                }
            }
        }
    }

    fn on_map_complete(&mut self, stats: &MapStats) {
        self.completed.push(*stats);
        self.completions_since_plan += 1;
        if self.completions_since_plan >= self.replan_every {
            self.completions_since_plan = 0;
            self.replan();
        }
    }

    fn want_drop_remaining(&mut self, control: &JobControl) -> bool {
        // All reducers must have reported a bound meeting the target,
        // with reports covering everything the tracker knows completed
        // (a stale report could be invalidated by in-flight outputs).
        let threshold = match self.target {
            ErrorTarget::Relative(x) | ErrorTarget::Absolute(x) => x,
        };
        let min_completed = self.wave1_count.min(self.total).max(2);
        if self.completed.len() < min_completed {
            return false;
        }
        let min_maps = self.completed.len().max(2);
        match control.worst_bound_across_reducers(min_maps) {
            Some(worst) => worst <= threshold,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n1: u64, total: u64, su2: f64, within: f64, estimate: f64) -> WaveStatistics {
        WaveStatistics {
            total_clusters: total,
            completed_clusters: n1,
            inter_cluster_var: su2,
            mean_cluster_size: 1000.0,
            mean_within_var: within,
            completed_within_term: 0.0,
            estimate,
        }
    }

    fn timing() -> TimingModel {
        TimingModel {
            t0: 0.5,
            tr: 1e-4,
            tp: 1e-3,
        }
    }

    #[test]
    fn shared_state_worst_report() {
        let s = SharedApproxState::new(2);
        assert!(s.worst_report().is_none());
        let mk = |abs: f64| WaveReport {
            maps_seen: 3,
            worst_abs: abs,
            worst_rel: abs / 100.0,
            wave: wave(3, 10, 1.0, 1.0, 100.0),
        };
        s.publish(0, mk(5.0));
        assert!(s.worst_report().is_none(), "reducer 1 has not reported");
        s.publish(1, mk(9.0));
        assert_eq!(s.worst_report().unwrap().worst_abs, 9.0);
        s.publish(1, mk(2.0));
        assert_eq!(s.worst_report().unwrap().worst_abs, 5.0);
    }

    #[test]
    fn timing_model_fit_recovers_components() {
        let stats: Vec<MapStats> = (0..10)
            .map(|i| MapStats {
                task: TaskId(i),
                dataset: Default::default(),
                total_records: 1000,
                sampled_records: 100,
                emitted: 0,
                shuffled: 0,
                // read = 1000·1e-4 = 0.1; process = 100·2e-3 = 0.2
                read_secs: 0.1,
                duration_secs: 0.1 + 0.2,
            })
            .collect();
        let t = TimingModel::fit(&stats).unwrap();
        assert!((t.tr - 1e-4).abs() < 1e-8);
        assert!((t.tp - 2e-3).abs() < 1e-8);
        assert!((t.t_map(1000.0, 100.0) - 0.3).abs() < 1e-6);
        assert!(TimingModel::fit(&[]).is_none());
    }

    #[test]
    fn plan_prefers_no_extra_tasks_when_bound_met() {
        // Tiny variance: the bound is already met with the completed wave.
        let w = wave(20, 100, 1e-9, 1e-9, 1_000_000.0);
        let p = plan(&w, &timing(), ErrorTarget::Relative(0.01), 0.95, 80);
        assert!(p.feasible);
        assert_eq!(p.additional_tasks, 0);
    }

    #[test]
    fn plan_runs_everything_when_no_approximation_possible() {
        // Huge variance and a very tight target: the only way to meet it
        // is the census — run every remaining task precisely (the
        // paper's "no approximation is possible" outcome).
        let w = wave(10, 100, 1e12, 1e12, 1.0);
        let p = plan(&w, &timing(), ErrorTarget::Relative(0.0001), 0.95, 90);
        assert!(p.feasible, "census always meets the bound");
        assert_eq!(p.additional_tasks, 90);
        assert_eq!(p.sampling_ratio, 1.0);
    }

    #[test]
    fn plan_infeasible_when_zero_estimate() {
        // A relative target around a zero estimate can never be met.
        let w = wave(10, 100, 1e3, 1e2, 0.0);
        let p = plan(&w, &timing(), ErrorTarget::Relative(0.01), 0.95, 90);
        assert!(!p.feasible);
        assert_eq!(p.additional_tasks, 90);
        assert_eq!(p.sampling_ratio, 1.0);
    }

    #[test]
    fn plan_trades_tasks_against_sampling() {
        // Moderate inter-cluster variance dominated by the between term:
        // some additional clusters needed, each samplable.
        let w = wave(8, 200, 5e4, 50.0, 1e5);
        let p = plan(&w, &timing(), ErrorTarget::Relative(0.05), 0.95, 192);
        assert!(p.feasible);
        assert!(p.additional_tasks > 0);
        assert!(p.additional_tasks < 192, "should not need everything");
        assert!(p.sampling_ratio > 0.0 && p.sampling_ratio <= 1.0);
        // The plan must actually satisfy the predicted bound.
        let bound = w.predicted_relative_bound(
            p.additional_tasks,
            p.sampling_ratio * w.mean_cluster_size,
            0.95,
        );
        assert!(bound <= 0.05 + 1e-9, "plan violates target: {bound}");
    }

    #[test]
    fn plan_handles_absolute_targets() {
        let w = wave(8, 50, 100.0, 10.0, 500.0);
        let p = plan(&w, &timing(), ErrorTarget::Absolute(200.0), 0.95, 42);
        assert!(p.feasible);
        let bound = w.predicted_bound(
            p.additional_tasks,
            p.sampling_ratio * w.mean_cluster_size,
            0.95,
        );
        assert!(bound <= 200.0 + 1e-6);
    }

    #[test]
    fn coordinator_first_wave_is_precise() {
        let shared = Arc::new(SharedApproxState::new(1));
        let mut c =
            TargetErrorCoordinator::new(100, ErrorTarget::Relative(0.01), 0.95, 8, None, shared);
        let meta = SplitMeta {
            index: 0,
            dataset: Default::default(),
            records: 100,
            bytes: 0,
            locations: vec![],
        };
        for t in 0..8 {
            match c.directive(TaskId(t), &meta) {
                MapDirective::Run { sampling_ratio } => assert_eq!(sampling_ratio, 1.0),
                MapDirective::Drop => panic!("first wave must run"),
            }
        }
    }

    #[test]
    fn coordinator_pilot_wave_uses_pilot_ratio() {
        let shared = Arc::new(SharedApproxState::new(1));
        let mut c = TargetErrorCoordinator::new(
            100,
            ErrorTarget::Relative(0.01),
            0.95,
            8,
            Some(PilotSpec {
                tasks: 3,
                sampling_ratio: 0.05,
            }),
            shared,
        );
        let meta = SplitMeta {
            index: 0,
            dataset: Default::default(),
            records: 100,
            bytes: 0,
            locations: vec![],
        };
        for t in 0..3 {
            match c.directive(TaskId(t), &meta) {
                MapDirective::Run { sampling_ratio } => {
                    assert!((sampling_ratio - 0.05).abs() < 1e-12)
                }
                MapDirective::Drop => panic!("pilot must run"),
            }
        }
    }

    #[test]
    fn coordinator_plans_and_drops_after_wave() {
        let shared = Arc::new(SharedApproxState::new(1));
        let mut c = TargetErrorCoordinator::new(
            50,
            ErrorTarget::Relative(0.05),
            0.95,
            4,
            None,
            Arc::clone(&shared),
        );
        let meta = SplitMeta {
            index: 0,
            dataset: Default::default(),
            records: 1000,
            bytes: 0,
            locations: vec![],
        };
        // First wave: 4 precise tasks.
        for t in 0..4 {
            assert!(matches!(
                c.directive(TaskId(t), &meta),
                MapDirective::Run { .. }
            ));
        }
        for t in 0..4 {
            c.on_map_complete(&MapStats {
                task: TaskId(t),
                dataset: Default::default(),
                total_records: 1000,
                sampled_records: 1000,
                emitted: 10,
                shuffled: 10,
                duration_secs: 0.5,
                read_secs: 0.1,
            });
        }
        // Reducer publishes a wave needing a handful more tasks.
        shared.publish(
            0,
            WaveReport {
                maps_seen: 4,
                worst_abs: 5e4,
                worst_rel: 0.5,
                wave: WaveStatistics {
                    total_clusters: 50,
                    completed_clusters: 4,
                    inter_cluster_var: 1e4,
                    mean_cluster_size: 1000.0,
                    mean_within_var: 4.0,
                    completed_within_term: 0.0,
                    estimate: 1e5,
                },
            },
        );
        // Subsequent directives follow the plan; while the reducers still
        // report a bound above the target, nothing is dropped.
        let mut ran = 0;
        for t in 4..20 {
            match c.directive(TaskId(t), &meta) {
                MapDirective::Run { sampling_ratio } => {
                    ran += 1;
                    assert!(sampling_ratio > 0.0 && sampling_ratio <= 1.0);
                }
                MapDirective::Drop => panic!("must not drop before the bound is met"),
            }
        }
        assert!(c.current_plan().is_some());
        assert!(ran > 0);
        // Once the reducers confirm the bound, the tail is dropped.
        shared.publish(
            0,
            WaveReport {
                maps_seen: 20,
                worst_abs: 1e3,
                worst_rel: 0.01,
                wave: WaveStatistics {
                    total_clusters: 50,
                    completed_clusters: 20,
                    inter_cluster_var: 1e2,
                    mean_cluster_size: 1000.0,
                    mean_within_var: 4.0,
                    completed_within_term: 0.0,
                    estimate: 1e5,
                },
            },
        );
        let mut dropped = 0;
        for t in 20..50 {
            if matches!(c.directive(TaskId(t), &meta), MapDirective::Drop) {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "tail should be dropped once the bound is met");
    }
}
