//! Ratio-estimation template — the paper's fourth supported aggregate
//! (`sum`, `count`, `average`, **`ratio`**).
//!
//! The user map emits `(key, (y, x))` pairs; the job estimates
//! `R = Σy / Σx` per key with the linearised two-stage ratio variance
//! (e.g. bytes-per-request per project, where `y` = bytes and `x` = 1
//! per request — or click-through rates, cache hit ratios, …).

use std::collections::HashMap;
use std::marker::PhantomData;

use approxhadoop_runtime::combine::Combiner;
use approxhadoop_runtime::mapper::{MapTaskContext, Mapper};
use approxhadoop_runtime::reducer::{MapOutputMeta, ReduceContext, Reducer};
use approxhadoop_runtime::types::{Key, TaskId};
use approxhadoop_stats::multistage::{PairedClusterObservation, RatioEstimator};
use approxhadoop_stats::Interval;

/// Per-task per-key paired statistics (`y` numerator, `x` denominator).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PairStat {
    /// `Σy` over emitting items.
    pub sum_y: f64,
    /// `Σy²`.
    pub sum_y_sq: f64,
    /// `Σx`.
    pub sum_x: f64,
    /// `Σx²`.
    pub sum_x_sq: f64,
    /// `Σxy`.
    pub sum_xy: f64,
}

impl PairStat {
    /// Folds one item's `(y, x)` pair in.
    pub fn add(&mut self, y: f64, x: f64) {
        self.sum_y += y;
        self.sum_y_sq += y * y;
        self.sum_x += x;
        self.sum_x_sq += x * x;
        self.sum_xy += x * y;
    }

    /// Merges another statistic.
    pub fn merge(&mut self, other: &PairStat) {
        self.sum_y += other.sum_y;
        self.sum_y_sq += other.sum_y_sq;
        self.sum_x += other.sum_x;
        self.sum_x_sq += other.sum_x_sq;
        self.sum_xy += other.sum_xy;
    }
}

/// Map-side combiner for [`PairStat`] values: merging is component-wise
/// addition of the paired sums the ratio estimator consumes, so
/// pre-combining preserves the reported intervals exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairStatCombiner;

impl<K> Combiner<K, PairStat> for PairStatCombiner {
    fn combine(&self, _key: &K, acc: &mut PairStat, incoming: PairStat) {
        acc.merge(&incoming);
    }
}

/// Map-side template: the user `f(item, emit)` emits `(key, (y, x))`;
/// per-item emissions for the same key are summed (one paired value per
/// unit), and one [`PairStat`] per key per task is shuffled.
pub struct RatioMapper<I, K, F> {
    f: F,
    _marker: PhantomData<fn(I) -> K>,
}

impl<I, K, F> RatioMapper<I, K, F>
where
    F: Fn(&I, &mut dyn FnMut(K, (f64, f64))) + Send + Sync,
{
    /// Wraps the user map function.
    pub fn new(f: F) -> Self {
        RatioMapper {
            f,
            _marker: PhantomData,
        }
    }
}

/// Per-task state of [`RatioMapper`].
pub struct RatioTaskState<K> {
    per_key: HashMap<K, PairStat>,
    scratch: Vec<(K, (f64, f64))>,
}

impl<I, K, F> Mapper for RatioMapper<I, K, F>
where
    I: Send + 'static,
    K: Key,
    F: Fn(&I, &mut dyn FnMut(K, (f64, f64))) + Send + Sync,
{
    type Item = I;
    type Key = K;
    type Value = PairStat;
    type TaskState = RatioTaskState<K>;

    fn begin_task(&self, _ctx: &MapTaskContext) -> Self::TaskState {
        RatioTaskState {
            per_key: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    fn map(&self, state: &mut Self::TaskState, item: I, _emit: &mut dyn FnMut(K, PairStat)) {
        state.scratch.clear();
        let scratch = &mut state.scratch;
        (self.f)(&item, &mut |k, (y, x)| {
            if let Some(entry) = scratch.iter_mut().find(|(ek, _)| *ek == k) {
                entry.1 .0 += y;
                entry.1 .1 += x;
            } else {
                scratch.push((k, (y, x)));
            }
        });
        for (k, (y, x)) in state.scratch.drain(..) {
            state.per_key.entry(k).or_default().add(y, x);
        }
    }

    fn end_task(&self, state: Self::TaskState, emit: &mut dyn FnMut(K, PairStat)) {
        for (k, stat) in state.per_key {
            emit(k, stat);
        }
    }

    fn combiner(&self) -> Option<&dyn Combiner<K, PairStat>> {
        Some(&PairStatCombiner)
    }
}

/// Reduce-side template computing `R̂ ± ε` per key with the linearised
/// two-stage ratio estimator.
pub struct RatioReducer<K: Key> {
    confidence: f64,
    clusters: Vec<(TaskId, u64, u64)>,
    keys: HashMap<K, HashMap<u32, PairStat>>,
}

impl<K: Key> RatioReducer<K> {
    /// Creates a reducer estimating ratios at `confidence`.
    pub fn new(confidence: f64) -> Self {
        RatioReducer {
            confidence,
            clusters: Vec::new(),
            keys: HashMap::new(),
        }
    }

    fn estimate_key(&self, stats: &HashMap<u32, PairStat>, total_maps: u64) -> Option<Interval> {
        let mut est = RatioEstimator::new(total_maps);
        for (ci, (task, m_total, m_sampled)) in self.clusters.iter().enumerate() {
            let s = stats.get(&(ci as u32)).copied().unwrap_or_default();
            est.push(PairedClusterObservation {
                cluster_id: task.0 as u64,
                total_units: *m_total,
                sampled_units: *m_sampled,
                sum_y: s.sum_y,
                sum_y_sq: s.sum_y_sq,
                sum_x: s.sum_x,
                sum_x_sq: s.sum_x_sq,
                sum_xy: s.sum_xy,
            });
        }
        est.estimate(self.confidence).ok()
    }
}

impl<K: Key> Reducer for RatioReducer<K> {
    type Key = K;
    type Value = PairStat;
    type Output = (K, Interval);

    fn on_map_output(
        &mut self,
        meta: &MapOutputMeta,
        pairs: Vec<(K, PairStat)>,
        _ctx: &mut ReduceContext,
    ) {
        let ci = self.clusters.len() as u32;
        self.clusters
            .push((meta.task, meta.total_records, meta.sampled_records));
        for (k, stat) in pairs {
            self.keys
                .entry(k)
                .or_default()
                .entry(ci)
                .or_default()
                .merge(&stat);
        }
    }

    fn finish(&mut self, ctx: &mut ReduceContext) -> Vec<(K, Interval)> {
        let total_maps = ctx.total_maps() as u64;
        let mut out: Vec<(K, Interval)> = self
            .keys
            .iter()
            .filter_map(|(k, stats)| {
                self.estimate_key(stats, total_maps)
                    .map(|iv| (k.clone(), iv))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_runtime::control::JobControl;
    use std::sync::Arc;

    fn ctx(total: usize) -> ReduceContext {
        ReduceContext::new(0, total, Arc::new(JobControl::new(1)))
    }

    fn meta(task: usize, total: u64, sampled: u64) -> MapOutputMeta {
        MapOutputMeta {
            task: TaskId(task),
            dataset: Default::default(),
            total_records: total,
            sampled_records: sampled,
            duration_secs: 0.0,
        }
    }

    #[test]
    fn pair_stat_accumulates() {
        let mut s = PairStat::default();
        s.add(10.0, 2.0);
        s.add(20.0, 3.0);
        assert_eq!(s.sum_y, 30.0);
        assert_eq!(s.sum_x, 5.0);
        assert_eq!(s.sum_xy, 80.0);
        let mut t = PairStat::default();
        t.merge(&s);
        assert_eq!(t.sum_y_sq, 500.0);
    }

    #[test]
    fn mapper_sums_per_item_emissions() {
        let m = RatioMapper::new(|item: &Vec<(f64, f64)>, emit| {
            for &(y, x) in item {
                emit("k".to_string(), (y, x));
            }
        });
        let mctx = MapTaskContext {
            task: TaskId(0),
            dataset: Default::default(),
            sampling_ratio: 1.0,
            attempt: 0,
        };
        let mut state = m.begin_task(&mctx);
        // Item with two emissions: y = 3+1 = 4, x = 1+1 = 2.
        m.map(&mut state, vec![(3.0, 1.0), (1.0, 1.0)], &mut |_, _| {});
        let mut out = Vec::new();
        m.end_task(state, &mut |k, v| out.push((k, v)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.sum_y, 4.0);
        assert_eq!(out[0].1.sum_x, 2.0);
        assert_eq!(out[0].1.sum_y_sq, 16.0);
    }

    #[test]
    fn census_ratio_is_exact() {
        let mut r = RatioReducer::<String>::new(0.95);
        let mut c = ctx(2);
        // Cluster 0: y = 30 over x = 3; cluster 1: y = 10 over x = 2.
        let mut s0 = PairStat::default();
        s0.add(10.0, 1.0);
        s0.add(20.0, 2.0);
        let mut s1 = PairStat::default();
        s1.add(4.0, 1.0);
        s1.add(6.0, 1.0);
        r.on_map_output(&meta(0, 2, 2), vec![("k".into(), s0)], &mut c);
        r.on_map_output(&meta(1, 2, 2), vec![("k".into(), s1)], &mut c);
        let out = r.finish(&mut c);
        assert_eq!(out.len(), 1);
        assert!((out[0].1.estimate - 40.0 / 5.0).abs() < 1e-12);
        assert_eq!(out[0].1.half_width, 0.0);
    }

    #[test]
    fn sampled_ratio_has_finite_bound() {
        let mut r = RatioReducer::<String>::new(0.95);
        let mut c = ctx(10);
        for t in 0..4 {
            let mut s = PairStat::default();
            for i in 0..5 {
                s.add(10.0 + (t + i) as f64, 1.0);
            }
            r.on_map_output(&meta(t, 20, 5), vec![("k".into(), s)], &mut c);
        }
        let out = r.finish(&mut c);
        let iv = out[0].1;
        assert!((10.0..20.0).contains(&iv.estimate), "ratio {}", iv.estimate);
        assert!(iv.half_width.is_finite() && iv.half_width > 0.0);
    }
}
