//! User-defined approximation (the paper's third mechanism): the user
//! supplies a precise and an approximate version of the map code, and
//! the framework chooses per task which one to run.
//!
//! Error estimation for user-defined approximation is, by definition,
//! user-defined: the job's output carries which fraction of tasks ran
//! approximately so application code can attach its own quality metric
//! (e.g. PSNR for video encoding, inertia for k-means).

use approxhadoop_runtime::mapper::{MapTaskContext, Mapper};
use approxhadoop_runtime::types::TaskId;

/// Per-task choice between the precise and the approximate code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// Run the precise implementation.
    Precise,
    /// Run the user's approximate implementation.
    Approximate,
}

/// Deterministically picks the version for a task: a seeded hash of the
/// task id is compared against `approx_fraction`, so the *same* tasks
/// approximate on every attempt (speculative duplicates must agree).
pub fn version_for(task: TaskId, approx_fraction: f64, seed: u64) -> Version {
    if approx_fraction <= 0.0 {
        return Version::Precise;
    }
    if approx_fraction >= 1.0 {
        return Version::Approximate;
    }
    // SplitMix64 of (task ^ seed) → uniform in [0, 1).
    let mut z = (task.0 as u64)
        .wrapping_add(seed)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    if u < approx_fraction {
        Version::Approximate
    } else {
        Version::Precise
    }
}

/// A mapper pairing a precise and an approximate implementation with the
/// same input/output types; `approx_fraction` of the tasks run the
/// approximate version.
pub struct UserDefinedMapper<P, A> {
    precise: P,
    approx: A,
    approx_fraction: f64,
    seed: u64,
}

impl<P, A> UserDefinedMapper<P, A> {
    /// Pairs the two implementations.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= approx_fraction <= 1`.
    pub fn new(precise: P, approx: A, approx_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&approx_fraction),
            "approx_fraction must lie in [0, 1], got {approx_fraction}"
        );
        UserDefinedMapper {
            precise,
            approx,
            approx_fraction,
            seed,
        }
    }

    /// The configured approximate fraction.
    pub fn approx_fraction(&self) -> f64 {
        self.approx_fraction
    }
}

/// Task state of a [`UserDefinedMapper`]: whichever inner state matches
/// the chosen version.
pub enum UserDefinedState<PS, AS> {
    /// State of the precise implementation.
    Precise(PS),
    /// State of the approximate implementation.
    Approximate(AS),
}

impl<P, A> Mapper for UserDefinedMapper<P, A>
where
    P: Mapper,
    A: Mapper<Item = P::Item, Key = P::Key, Value = P::Value>,
{
    type Item = P::Item;
    type Key = P::Key;
    type Value = P::Value;
    type TaskState = UserDefinedState<P::TaskState, A::TaskState>;

    fn begin_task(&self, ctx: &MapTaskContext) -> Self::TaskState {
        match version_for(ctx.task, self.approx_fraction, self.seed) {
            Version::Precise => UserDefinedState::Precise(self.precise.begin_task(ctx)),
            Version::Approximate => UserDefinedState::Approximate(self.approx.begin_task(ctx)),
        }
    }

    fn map(
        &self,
        state: &mut Self::TaskState,
        item: Self::Item,
        emit: &mut dyn FnMut(Self::Key, Self::Value),
    ) {
        match state {
            UserDefinedState::Precise(s) => self.precise.map(s, item, emit),
            UserDefinedState::Approximate(s) => self.approx.map(s, item, emit),
        }
    }

    fn end_task(&self, state: Self::TaskState, emit: &mut dyn FnMut(Self::Key, Self::Value)) {
        match state {
            UserDefinedState::Precise(s) => self.precise.end_task(s, emit),
            UserDefinedState::Approximate(s) => self.approx.end_task(s, emit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_runtime::engine::{run_job, JobConfig};
    use approxhadoop_runtime::input::VecSource;
    use approxhadoop_runtime::mapper::FnMapper;
    use approxhadoop_runtime::reducer::GroupedReducer;

    #[test]
    fn version_for_extremes() {
        assert_eq!(version_for(TaskId(3), 0.0, 1), Version::Precise);
        assert_eq!(version_for(TaskId(3), 1.0, 1), Version::Approximate);
    }

    #[test]
    fn version_for_is_deterministic_and_calibrated() {
        let mut approx = 0;
        for t in 0..10_000 {
            let v = version_for(TaskId(t), 0.3, 42);
            assert_eq!(v, version_for(TaskId(t), 0.3, 42));
            if v == Version::Approximate {
                approx += 1;
            }
        }
        let frac = approx as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn user_defined_job_mixes_versions() {
        // Precise doubles, approximate zeroes: the output reveals which
        // tasks ran which version.
        let blocks: Vec<Vec<u32>> = (0..40).map(|_| vec![1]).collect();
        let input = VecSource::new(blocks);
        let precise =
            FnMapper::new(|i: &u32, emit: &mut dyn FnMut(u8, u64)| emit(0, (*i as u64) * 2));
        let approx = FnMapper::new(|_: &u32, emit: &mut dyn FnMut(u8, u64)| emit(0, 0));
        let mapper = UserDefinedMapper::new(precise, approx, 0.5, 7);
        let result = run_job(
            &input,
            &mapper,
            |_| {
                GroupedReducer::new(|_: &u8, vs: &[u64]| {
                    Some((vs.iter().filter(|v| **v == 2).count(), vs.len()))
                })
            },
            JobConfig::default(),
        )
        .unwrap();
        let (precise_count, total) = result.outputs[0];
        assert_eq!(total, 40);
        assert!(
            precise_count > 5 && precise_count < 35,
            "mix: {precise_count}/40"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_bad_fraction() {
        let m1 = FnMapper::new(|_: &u32, _: &mut dyn FnMut(u8, u8)| {});
        let m2 = FnMapper::new(|_: &u32, _: &mut dyn FnMut(u8, u8)| {});
        UserDefinedMapper::new(m1, m2, 1.5, 0);
    }
}
