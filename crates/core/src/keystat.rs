//! Per-task per-key statistics shipped through the shuffle.

use approxhadoop_ipc::{Decoder, Wire, WireError};
use approxhadoop_runtime::combine::Combiner;

/// The statistics a map task accumulates for one intermediate key over
/// the input data items it processed: exactly what the two-stage
/// estimators need (`Σv`, `Σv²`, and how many items emitted).
///
/// The task's `(m_i, M_i)` counts travel separately in the map output
/// metadata; items that emitted nothing for the key are implicit zeros.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KeyStat {
    /// Sum of the key's per-item values.
    pub sum: f64,
    /// Sum of squares of the per-item values.
    pub sum_sq: f64,
    /// Number of items that emitted at least one value for the key.
    pub emitting_units: u64,
}

impl KeyStat {
    /// A statistic from a single item's value.
    pub fn from_value(v: f64) -> Self {
        KeyStat {
            sum: v,
            sum_sq: v * v,
            emitting_units: 1,
        }
    }

    /// Folds another item's value into the statistic.
    pub fn add_value(&mut self, v: f64) {
        self.sum += v;
        self.sum_sq += v * v;
        self.emitting_units += 1;
    }

    /// Merges two statistics (e.g. from combiner-style pre-aggregation).
    pub fn merge(&mut self, other: &KeyStat) {
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.emitting_units += other.emitting_units;
    }
}

impl Wire for KeyStat {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sum.encode(out);
        self.sum_sq.encode(out);
        self.emitting_units.encode(out);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(KeyStat {
            sum: f64::decode(d)?,
            sum_sq: f64::decode(d)?,
            emitting_units: u64::decode(d)?,
        })
    }
}

/// Map-side combiner for [`KeyStat`] values.
///
/// [`KeyStat`] carries exactly the per-cluster `Σv`/`Σv²`/emitting-unit
/// sums the two-stage estimators consume, and merging is plain addition,
/// so pre-combining in the map task leaves every confidence interval
/// identical to the uncombined run.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyStatCombiner;

impl<K> Combiner<K, KeyStat> for KeyStatCombiner {
    fn combine(&self, _key: &K, acc: &mut KeyStat, incoming: KeyStat) {
        acc.merge(&incoming);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_values() {
        let mut s = KeyStat::from_value(2.0);
        s.add_value(3.0);
        assert_eq!(s.sum, 5.0);
        assert_eq!(s.sum_sq, 13.0);
        assert_eq!(s.emitting_units, 2);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = KeyStat::from_value(1.0);
        let b = KeyStat::from_value(4.0);
        a.merge(&b);
        assert_eq!(a.sum, 5.0);
        assert_eq!(a.sum_sq, 17.0);
        assert_eq!(a.emitting_units, 2);
    }

    #[test]
    fn default_is_zero() {
        let z = KeyStat::default();
        assert_eq!(z.sum, 0.0);
        assert_eq!(z.emitting_units, 0);
    }

    #[test]
    fn combiner_matches_merge() {
        let mut a = KeyStat::from_value(1.0);
        let b = KeyStat::from_value(4.0);
        KeyStatCombiner.combine(&"k", &mut a, b);
        assert_eq!(a.sum, 5.0);
        assert_eq!(a.sum_sq, 17.0);
        assert_eq!(a.emitting_units, 2);
    }
}
