//! Error type for the approximation layer.

use std::fmt;

use approxhadoop_runtime::RuntimeError;
use approxhadoop_stats::StatsError;

/// Errors produced while configuring or running approximate jobs.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The approximation specification is invalid.
    InvalidSpec {
        /// Description of the problem.
        reason: String,
    },
    /// The underlying MapReduce engine failed.
    Runtime(RuntimeError),
    /// Statistical estimation failed.
    Stats(StatsError),
}

impl CoreError {
    /// Convenience constructor for [`CoreError::InvalidSpec`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        CoreError::InvalidSpec {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidSpec { reason } => write!(f, "invalid approximation spec: {reason}"),
            CoreError::Runtime(e) => write!(f, "runtime error: {e}"),
            CoreError::Stats(e) => write!(f, "estimation error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Runtime(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::InvalidSpec { .. } => None,
        }
    }
}

impl From<RuntimeError> for CoreError {
    fn from(e: RuntimeError) -> Self {
        CoreError::Runtime(e)
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = RuntimeError::invalid("x").into();
        assert!(e.to_string().contains("runtime"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = StatsError::invalid("p", "bad").into();
        assert!(e.to_string().contains("estimation"));
        let e = CoreError::invalid("no");
        assert!(e.to_string().contains("no"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
