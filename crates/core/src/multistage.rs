//! Approximation-aware templates for aggregation jobs — the paper's
//! `MultiStageSamplingMapper` / `MultiStageSamplingReducer` classes.
//!
//! The user writes an ordinary `map()` that emits `(key, f64)` pairs per
//! input item; the template does the rest:
//!
//! * the **mapper wrapper** aggregates the emissions of each input item
//!   (so each item contributes one value `v_ij` per key), accumulates a
//!   [`KeyStat`] per key across the task, and ships exactly one
//!   `(key, KeyStat)` pair per key per task — the information the
//!   two-stage estimator needs, at negligible shuffle cost;
//! * the **reducer** collects each executed map's `(M_i, m_i)` counts and
//!   per-key statistics, treats non-emitting sampled items as zeros
//!   (the paper's one assumption), and produces `τ̂ ± ε` per key via
//!   two-stage cluster sampling;
//! * in target-error mode the reducer re-evaluates bounds as maps arrive
//!   (barrier-less), publishes the worst key's statistics to the
//!   [`crate::target::SharedApproxState`], and the coordinator ends the
//!   job once every reducer meets the target.

use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

use approxhadoop_runtime::combine::Combiner;
use approxhadoop_runtime::mapper::{MapTaskContext, Mapper};
use approxhadoop_runtime::reducer::{MapOutputMeta, ReduceContext, Reducer};
use approxhadoop_runtime::types::{Key, TaskId};
use approxhadoop_stats::multistage::{
    ClusterObservation, MeanEstimator, TwoStageEstimator, WaveStatistics,
};
use approxhadoop_stats::Interval;

use crate::keystat::KeyStat;
use crate::target::{SharedApproxState, WaveReport};

/// The aggregation computed per key.
///
/// `Count` is the sum of `1.0`-valued emissions and is provided for
/// readability; it estimates identically to `Sum`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Estimate the population total of the emitted values.
    Sum,
    /// Estimate the number of emissions (emit `1.0` per occurrence).
    Count,
    /// Estimate the mean emitted value per input item.
    Mean,
}

/// Map-side template: wraps a user `map()` emitting `(K, f64)` and ships
/// one [`KeyStat`] per key per task.
pub struct MultiStageMapper<I, K, F> {
    f: F,
    _marker: PhantomData<fn(I) -> K>,
}

impl<I, K, F> MultiStageMapper<I, K, F>
where
    F: Fn(&I, &mut dyn FnMut(K, f64)) + Send + Sync,
{
    /// Wraps the user map function.
    pub fn new(f: F) -> Self {
        MultiStageMapper {
            f,
            _marker: PhantomData,
        }
    }
}

/// Per-task accumulation state of [`MultiStageMapper`].
pub struct MultiStageTaskState<K> {
    per_key: HashMap<K, KeyStat>,
    scratch: Vec<(K, f64)>,
}

impl<I, K, F> Mapper for MultiStageMapper<I, K, F>
where
    I: Send + 'static,
    K: Key,
    F: Fn(&I, &mut dyn FnMut(K, f64)) + Send + Sync,
{
    type Item = I;
    type Key = K;
    type Value = KeyStat;
    type TaskState = MultiStageTaskState<K>;

    fn begin_task(&self, _ctx: &MapTaskContext) -> Self::TaskState {
        MultiStageTaskState {
            per_key: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    fn map(&self, state: &mut Self::TaskState, item: I, _emit: &mut dyn FnMut(K, KeyStat)) {
        // Collect this item's emissions, summing repeats of the same key
        // so each item contributes a single v_ij per key.
        state.scratch.clear();
        let scratch = &mut state.scratch;
        (self.f)(&item, &mut |k, v| {
            if let Some(entry) = scratch.iter_mut().find(|(ek, _)| *ek == k) {
                entry.1 += v;
            } else {
                scratch.push((k, v));
            }
        });
        for (k, v) in state.scratch.drain(..) {
            state.per_key.entry(k).or_default().add_value(v);
        }
    }

    fn end_task(&self, state: Self::TaskState, emit: &mut dyn FnMut(K, KeyStat)) {
        for (k, stat) in state.per_key {
            emit(k, stat);
        }
    }

    fn combiner(&self) -> Option<&dyn Combiner<K, KeyStat>> {
        Some(&crate::keystat::KeyStatCombiner)
    }
}

/// Configuration of the online bound monitor inside
/// [`MultiStageReducer`] (target-error mode only).
pub struct BoundMonitor {
    /// Where to publish the worst key's wave statistics.
    pub shared: Arc<SharedApproxState>,
    /// `true` to report absolute half-widths instead of relative bounds
    /// (for [`crate::spec::ErrorTarget::Absolute`]).
    pub report_absolute: bool,
    /// Re-evaluate bounds every this many map outputs (≥ 1).
    pub check_every: usize,
    /// Freeze threshold in the reported metric's units: once the worst
    /// bound reaches it, the reducer stops incorporating further map
    /// outputs, so the *final* interval is exactly the one that met the
    /// target (map kills are asynchronous; without freezing, an output
    /// racing the kill could move the bound back above the target).
    pub freeze_threshold: Option<f64>,
    /// Minimum executed clusters before the freeze may engage. A bound
    /// computed from a couple of clusters is unreliable (the variance
    /// estimate has almost no degrees of freedom); the paper waits for
    /// the first wave. Typically set to the wave size.
    pub min_maps_before_freeze: usize,
}

/// Where reducers publish their partition's distinct-key estimate at
/// job end (one slot per reducer; keys are hash-partitioned so the
/// global estimate is the sum over partitions).
pub type DistinctSink = Arc<parking_lot::Mutex<Vec<Option<f64>>>>;

/// Reduce-side template computing `τ̂ ± ε` per key with two-stage
/// sampling (paper Eq. 1–3).
pub struct MultiStageReducer<K: Key> {
    agg: Aggregation,
    confidence: f64,
    /// `(M_i, m_i)` of each executed map seen by this reducer.
    clusters: Vec<(TaskId, u64, u64)>,
    /// Per key: statistics per executed-cluster index.
    keys: HashMap<K, HashMap<u32, KeyStat>>,
    monitor: Option<BoundMonitor>,
    since_check: usize,
    distinct_sink: Option<DistinctSink>,
    /// Set once the target is met: `(metric, interval, wave)` locked in.
    frozen: Option<(f64, Interval, WaveStatistics)>,
}

impl<K: Key> MultiStageReducer<K> {
    /// Creates a reducer computing `agg` at `confidence`.
    pub fn new(agg: Aggregation, confidence: f64) -> Self {
        MultiStageReducer {
            agg,
            confidence,
            clusters: Vec::new(),
            keys: HashMap::new(),
            monitor: None,
            since_check: 0,
            distinct_sink: None,
            frozen: None,
        }
    }

    /// Publishes this reducer's distinct-key estimate into `sink` at job
    /// end (slot = partition index).
    pub fn with_distinct_sink(mut self, sink: DistinctSink) -> Self {
        self.distinct_sink = Some(sink);
        self
    }

    /// Enables online bound monitoring (target-error mode).
    pub fn with_monitor(mut self, monitor: BoundMonitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Estimates the total number of distinct keys in the population,
    /// including keys the sampling never observed, by extrapolating from
    /// the frequency of singleton/doubleton keys (Chao1 — the paper's
    /// §3.1 extension citing Haas et al.). `None` with no keys.
    pub fn estimate_distinct_keys(&self) -> Option<f64> {
        use approxhadoop_stats::distinct::{chao1, FrequencyCounts};
        let fc = FrequencyCounts::from_counts(
            self.keys
                .values()
                .map(|stats| stats.values().map(|s| s.emitting_units).sum::<u64>()),
        );
        chao1(&fc).ok()
    }

    /// Builds the interval for one key from the collected statistics.
    fn estimate_key(&self, stats: &HashMap<u32, KeyStat>, total_maps: u64) -> Option<Interval> {
        match self.agg {
            Aggregation::Sum | Aggregation::Count => {
                let mut est = TwoStageEstimator::new(total_maps);
                for obs in self.observations(stats) {
                    est.push(obs);
                }
                est.estimate(self.confidence).ok()
            }
            Aggregation::Mean => {
                let mut est = MeanEstimator::new(total_maps);
                for obs in self.observations(stats) {
                    est.push(obs);
                }
                est.estimate(self.confidence).ok()
            }
        }
    }

    /// Expands a key's sparse per-cluster stats to one observation per
    /// executed cluster (absent clusters are all-zero observations).
    fn observations<'a>(
        &'a self,
        stats: &'a HashMap<u32, KeyStat>,
    ) -> impl Iterator<Item = ClusterObservation> + 'a {
        self.clusters
            .iter()
            .enumerate()
            .map(move |(ci, (task, m_total, m_sampled))| {
                let stat = stats.get(&(ci as u32)).copied().unwrap_or_default();
                ClusterObservation {
                    cluster_id: task.0 as u64,
                    total_units: *m_total,
                    sampled_units: *m_sampled,
                    sum: stat.sum,
                    sum_sq: stat.sum_sq,
                }
            })
    }

    /// Estimated variance of one key's total — used to *rank* keys when
    /// hunting for the worst one. All keys share the cluster count `n`,
    /// so ranking by variance is ranking by half-width without paying a
    /// Student-t inversion per key. (For `Mean`, the numerator variance
    /// is used as the ranking proxy; the reported interval is exact.)
    fn key_ranking_variance(&self, stats: &HashMap<u32, KeyStat>, total_maps: u64) -> f64 {
        let mut est = TwoStageEstimator::new(total_maps);
        for obs in self.observations(stats) {
            est.push(obs);
        }
        est.variance().unwrap_or(f64::INFINITY)
    }

    /// Evaluates all keys, returning the worst (largest absolute
    /// half-width) key's interval and wave statistics.
    fn evaluate_worst(&self, total_maps: u64) -> Option<(Interval, WaveStatistics)> {
        let worst = self
            .keys
            .values()
            .map(|stats| (self.key_ranking_variance(stats, total_maps), stats))
            .max_by(|a, b| a.0.total_cmp(&b.0))?;
        let stats = worst.1;
        let iv = self.estimate_key(stats, total_maps)?;
        Some((iv, self.wave_statistics(stats, total_maps, &iv)))
    }

    /// Builds the [`WaveStatistics`] of one key for the planner.
    fn wave_statistics(
        &self,
        stats: &HashMap<u32, KeyStat>,
        total_maps: u64,
        iv: &Interval,
    ) -> WaveStatistics {
        let mut est = TwoStageEstimator::new(total_maps);
        for obs in self.observations(stats) {
            est.push(obs);
        }
        let n = self.clusters.len().max(1) as f64;
        let mean_cluster_size = self.clusters.iter().map(|(_, m, _)| *m as f64).sum::<f64>() / n;
        let mut mean_within = 0.0;
        let mut completed_within = 0.0;
        for obs in self.observations(stats) {
            let within = obs.within_variance();
            mean_within += within / n;
            let m = obs.sampled_units as f64;
            let mm = obs.total_units as f64;
            if m > 0.0 {
                completed_within += mm * (mm - m) * within / m;
            }
        }
        WaveStatistics {
            total_clusters: total_maps,
            completed_clusters: self.clusters.len() as u64,
            inter_cluster_var: est.inter_cluster_variance(),
            mean_cluster_size,
            mean_within_var: mean_within,
            completed_within_term: completed_within,
            estimate: iv.estimate,
        }
    }

    fn monitor_tick(&mut self, ctx: &mut ReduceContext) {
        let Some(monitor) = &self.monitor else { return };
        self.since_check += 1;
        if self.since_check < monitor.check_every && self.clusters.len() > 2 {
            return;
        }
        self.since_check = 0;
        let total_maps = ctx.total_maps() as u64;
        if let Some((iv, wave)) = self.evaluate_worst(total_maps) {
            let metric = if monitor.report_absolute {
                iv.half_width
            } else {
                iv.relative_error()
            };
            ctx.report_bound(metric);
            if let Some(threshold) = monitor.freeze_threshold {
                if metric <= threshold && self.clusters.len() >= monitor.min_maps_before_freeze {
                    self.frozen = Some((metric, iv, wave));
                }
            }
            monitor.shared.publish(
                ctx.partition(),
                WaveReport {
                    maps_seen: ctx.maps_seen(),
                    worst_abs: iv.half_width,
                    worst_rel: iv.relative_error(),
                    wave,
                },
            );
        } else if self.keys.is_empty() && !self.clusters.is_empty() {
            // No keys routed here: this reducer imposes no bound.
            ctx.report_bound(0.0);
            monitor.shared.publish(
                ctx.partition(),
                WaveReport {
                    maps_seen: ctx.maps_seen(),
                    worst_abs: 0.0,
                    worst_rel: 0.0,
                    wave: WaveStatistics {
                        total_clusters: ctx.total_maps() as u64,
                        completed_clusters: self.clusters.len() as u64,
                        inter_cluster_var: 0.0,
                        mean_cluster_size: 0.0,
                        mean_within_var: 0.0,
                        completed_within_term: 0.0,
                        estimate: 0.0,
                    },
                },
            );
        }
    }
}

impl<K: Key> Reducer for MultiStageReducer<K> {
    type Key = K;
    type Value = KeyStat;
    type Output = (K, Interval);

    fn on_map_output(
        &mut self,
        meta: &MapOutputMeta,
        pairs: Vec<(K, KeyStat)>,
        ctx: &mut ReduceContext,
    ) {
        if let Some((metric, iv, wave)) = &self.frozen {
            // Target already met: the interval is locked in; any output
            // racing the JobTracker's kill is discarded like a drop. The
            // report is refreshed so the tracker sees it as current.
            let (metric, iv, wave) = (*metric, *iv, *wave);
            ctx.report_bound(metric);
            if let Some(monitor) = &self.monitor {
                monitor.shared.publish(
                    ctx.partition(),
                    WaveReport {
                        maps_seen: ctx.maps_seen(),
                        worst_abs: iv.half_width,
                        worst_rel: iv.relative_error(),
                        wave,
                    },
                );
            }
            return;
        }
        let ci = self.clusters.len() as u32;
        self.clusters
            .push((meta.task, meta.total_records, meta.sampled_records));
        debug_assert!(
            meta.sampled_records <= meta.total_records,
            "map reported m_i > M_i"
        );
        for (k, stat) in pairs {
            self.keys
                .entry(k)
                .or_default()
                .entry(ci)
                .or_default()
                .merge(&stat);
        }
        self.monitor_tick(ctx);
    }

    fn finish(&mut self, ctx: &mut ReduceContext) -> Vec<(K, Interval)> {
        if let Some(sink) = &self.distinct_sink {
            let est = self.estimate_distinct_keys();
            let mut slots = sink.lock();
            let p = ctx.partition();
            if p < slots.len() {
                slots[p] = est;
            }
        }
        let total_maps = ctx.total_maps() as u64;
        let mut out: Vec<(K, Interval)> = self
            .keys
            .iter()
            .filter_map(|(k, stats)| {
                self.estimate_key(stats, total_maps)
                    .map(|iv| (k.clone(), iv))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxhadoop_runtime::control::JobControl;

    fn ctx(total_maps: usize) -> ReduceContext {
        ReduceContext::new(0, total_maps, Arc::new(JobControl::new(1)))
    }

    fn run_mapper<I: Send + 'static + Clone>(
        mapper: &MultiStageMapper<
            I,
            String,
            impl Fn(&I, &mut dyn FnMut(String, f64)) + Send + Sync,
        >,
        items: &[I],
    ) -> Vec<(String, KeyStat)> {
        let mctx = MapTaskContext {
            task: TaskId(0),
            dataset: Default::default(),
            sampling_ratio: 1.0,
            attempt: 0,
        };
        let mut state = mapper.begin_task(&mctx);
        for item in items {
            mapper.map(&mut state, item.clone(), &mut |_k, _v| {});
        }
        let mut out = Vec::new();
        mapper.end_task(state, &mut |k, v| out.push((k, v)));
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    #[test]
    fn mapper_aggregates_per_item_then_per_task() {
        // Each item may emit the same key several times: per-item values
        // are summed first (v_ij), then squared into the task statistic.
        let mapper = MultiStageMapper::new(|item: &Vec<(&str, f64)>, emit| {
            for (k, v) in item {
                emit(k.to_string(), *v);
            }
        });
        let items = vec![
            vec![("a", 1.0), ("a", 2.0)], // item 0: v_a = 3
            vec![("a", 4.0), ("b", 5.0)], // item 1: v_a = 4, v_b = 5
        ];
        let out = run_mapper(&mapper, &items);
        assert_eq!(out.len(), 2);
        let (k, stat) = &out[0];
        assert_eq!(k, "a");
        assert_eq!(stat.sum, 7.0);
        assert_eq!(stat.sum_sq, 9.0 + 16.0);
        assert_eq!(stat.emitting_units, 2);
        let (k, stat) = &out[1];
        assert_eq!(k, "b");
        assert_eq!(stat.sum, 5.0);
        assert_eq!(stat.emitting_units, 1);
    }

    fn meta(task: usize, total: u64, sampled: u64) -> MapOutputMeta {
        MapOutputMeta {
            task: TaskId(task),
            dataset: Default::default(),
            total_records: total,
            sampled_records: sampled,
            duration_secs: 0.01,
        }
    }

    #[test]
    fn reducer_census_is_exact() {
        let mut r = MultiStageReducer::<String>::new(Aggregation::Sum, 0.95);
        let mut c = ctx(2);
        r.on_map_output(
            &meta(0, 3, 3),
            vec![(
                "x".into(),
                KeyStat {
                    sum: 6.0,
                    sum_sq: 14.0,
                    emitting_units: 3,
                },
            )],
            &mut c,
        );
        r.on_map_output(
            &meta(1, 2, 2),
            vec![(
                "x".into(),
                KeyStat {
                    sum: 9.0,
                    sum_sq: 41.0,
                    emitting_units: 2,
                },
            )],
            &mut c,
        );
        let out = r.finish(&mut c);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.estimate, 15.0);
        assert_eq!(out[0].1.half_width, 0.0);
    }

    #[test]
    fn reducer_scales_sampled_clusters() {
        // 4 total maps, 2 executed, each block 10 items with 5 sampled
        // summing to 10 → per-cluster total est 20 → τ̂ = 4/2·(20+20)=80.
        let mut r = MultiStageReducer::<String>::new(Aggregation::Sum, 0.95);
        let mut c = ctx(4);
        for t in 0..2 {
            r.on_map_output(
                &meta(t, 10, 5),
                vec![(
                    "x".into(),
                    KeyStat {
                        sum: 10.0,
                        sum_sq: 20.5,
                        emitting_units: 5,
                    },
                )],
                &mut c,
            );
        }
        let out = r.finish(&mut c);
        assert_eq!(out[0].1.estimate, 80.0);
        assert!(out[0].1.half_width > 0.0);
    }

    #[test]
    fn key_missing_from_one_cluster_counts_zeros() {
        // Key appears only in cluster 0; cluster 1 contributes zeros,
        // which must still widen the inter-cluster variance.
        let mut r = MultiStageReducer::<String>::new(Aggregation::Sum, 0.95);
        let mut c = ctx(4);
        r.on_map_output(
            &meta(0, 10, 10),
            vec![(
                "rare".into(),
                KeyStat {
                    sum: 5.0,
                    sum_sq: 25.0,
                    emitting_units: 1,
                },
            )],
            &mut c,
        );
        r.on_map_output(&meta(1, 10, 10), vec![], &mut c);
        let out = r.finish(&mut c);
        assert_eq!(out.len(), 1);
        // τ̂ = 4/2 · (5 + 0) = 10.
        assert_eq!(out[0].1.estimate, 10.0);
        assert!(out[0].1.half_width > 0.0);
    }

    #[test]
    fn mean_aggregation_estimates_per_item_mean() {
        let mut r = MultiStageReducer::<String>::new(Aggregation::Mean, 0.95);
        let mut c = ctx(1);
        // One block, census: items [2, 4, 6] → mean 4.
        r.on_map_output(
            &meta(0, 3, 3),
            vec![(
                "x".into(),
                KeyStat {
                    sum: 12.0,
                    sum_sq: 56.0,
                    emitting_units: 3,
                },
            )],
            &mut c,
        );
        let out = r.finish(&mut c);
        assert!((out[0].1.estimate - 4.0).abs() < 1e-12);
        assert_eq!(out[0].1.half_width, 0.0);
    }

    #[test]
    fn monitor_publishes_worst_key() {
        let shared = Arc::new(SharedApproxState::new(1));
        let mut r =
            MultiStageReducer::<String>::new(Aggregation::Sum, 0.95).with_monitor(BoundMonitor {
                shared: Arc::clone(&shared),
                report_absolute: false,
                check_every: 1,
                freeze_threshold: None,
                min_maps_before_freeze: 0,
            });
        let mut c = ctx(10);
        for t in 0..3 {
            c.note_map();
            r.on_map_output(
                &meta(t, 100, 10),
                vec![
                    (
                        "big".into(),
                        KeyStat {
                            sum: 100.0 + t as f64 * 17.0,
                            sum_sq: 5000.0,
                            emitting_units: 10,
                        },
                    ),
                    (
                        "small".into(),
                        KeyStat {
                            sum: 1.0,
                            sum_sq: 0.5,
                            emitting_units: 2,
                        },
                    ),
                ],
                &mut c,
            );
        }
        let report = shared.reports()[0].clone().expect("monitor published");
        assert_eq!(report.maps_seen, 3);
        assert!(report.worst_abs > 0.0);
        assert!(report.wave.completed_clusters == 3);
        assert!(report.wave.estimate > 100.0, "worst key is the big one");
    }

    #[test]
    fn empty_blocks_are_tolerated() {
        let mut r = MultiStageReducer::<String>::new(Aggregation::Sum, 0.95);
        let mut c = ctx(2);
        r.on_map_output(
            &meta(0, 5, 5),
            vec![(
                "x".into(),
                KeyStat {
                    sum: 5.0,
                    sum_sq: 5.0,
                    emitting_units: 5,
                },
            )],
            &mut c,
        );
        r.on_map_output(&meta(1, 0, 0), vec![], &mut c);
        let out = r.finish(&mut c);
        assert_eq!(out[0].1.estimate, 5.0);
    }
}
