//! Combiner equivalence properties: map-side combining is a pure
//! shuffle-volume optimisation, so enabling it must leave every
//! reported confidence interval **bit-identical** across the sum /
//! count / mean / ratio templates, for any sampling and dropping
//! ratios.
//!
//! Both runs pin `map_slots: 1` so that map outputs arrive at the
//! reducers in the same cluster order — the estimators fold per-cluster
//! statistics in arrival order, and float addition is not associative,
//! so a thread-timing difference (not combining) would otherwise be
//! able to perturb the last ulp.

use approxhadoop_core::job::{AggregationJob, ApproxResult, RatioJob};
use approxhadoop_core::spec::ApproxSpec;
use approxhadoop_runtime::engine::JobConfig;
use approxhadoop_runtime::input::VecSource;
use approxhadoop_stats::Interval;
use proptest::prelude::*;

fn blocks_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..100, 0..25), 1..10)
}

/// Asserts two job results agree key-for-key with bitwise-equal
/// intervals.
fn assert_bit_identical<K: std::fmt::Debug + PartialEq>(
    with: &ApproxResult<(K, Interval)>,
    without: &ApproxResult<(K, Interval)>,
) {
    assert_eq!(with.outputs.len(), without.outputs.len());
    for ((ka, iva), (kb, ivb)) in with.outputs.iter().zip(&without.outputs) {
        assert_eq!(ka, kb);
        assert_eq!(
            iva.estimate.to_bits(),
            ivb.estimate.to_bits(),
            "estimate drifted: {} vs {}",
            iva.estimate,
            ivb.estimate
        );
        assert_eq!(
            iva.half_width.to_bits(),
            ivb.half_width.to_bits(),
            "half-width drifted: {} vs {}",
            iva.half_width,
            ivb.half_width
        );
        assert_eq!(iva.confidence.to_bits(), ivb.confidence.to_bits());
    }
    // Combining can only shrink the shuffle, never grow it.
    assert!(with.metrics.shuffled_pairs <= with.metrics.emitted_pairs);
    assert_eq!(
        without.metrics.shuffled_pairs,
        without.metrics.emitted_pairs
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sum / count / mean aggregations report bit-identical intervals
    /// with combining on and off.
    #[test]
    fn combining_is_interval_invariant_for_aggregations(
        blocks in blocks_strategy(),
        sample_pct in 1u32..=100,
        drop_pct in 0u32..60,
        seed in 0u64..50,
        which in 0usize..3,
    ) {
        let spec = ApproxSpec::ratios(drop_pct as f64 / 100.0, sample_pct as f64 / 100.0);
        let run = |combining: bool| {
            let input = VecSource::new(blocks.clone());
            let config = JobConfig { combining, map_slots: 1, seed, ..Default::default() };
            let map_fn =
                |v: &u32, emit: &mut dyn FnMut(u32, f64)| emit(v % 5, f64::from(*v) * 0.5);
            let job = match which {
                0 => AggregationJob::sum(map_fn),
                1 => AggregationJob::count(map_fn),
                _ => AggregationJob::mean(map_fn),
            };
            job.spec(spec).config(config).run(&input).unwrap()
        };
        assert_bit_identical(&run(true), &run(false));
    }

    /// Ratio jobs (`R = Σy / Σx` per key) report bit-identical
    /// intervals with combining on and off.
    #[test]
    fn combining_is_interval_invariant_for_ratios(
        blocks in blocks_strategy(),
        sample_pct in 1u32..=100,
        drop_pct in 0u32..60,
        seed in 0u64..50,
    ) {
        let spec = ApproxSpec::ratios(drop_pct as f64 / 100.0, sample_pct as f64 / 100.0);
        let run = |combining: bool| {
            let input = VecSource::new(blocks.clone());
            let config = JobConfig { combining, map_slots: 1, seed, ..Default::default() };
            RatioJob::new(|v: &u32, emit: &mut dyn FnMut(u8, (f64, f64))| {
                emit((v % 3) as u8, (f64::from(*v), 1.0 + f64::from(v % 7)))
            })
            .spec(spec)
            .config(config)
            .run(&input)
            .unwrap()
        };
        assert_bit_identical(&run(true), &run(false));
    }
}
