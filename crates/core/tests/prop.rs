//! Property-based tests for the approximation layer: estimates must be
//! statistically sound for arbitrary synthetic populations.

use approxhadoop_core::job::AggregationJob;
use approxhadoop_core::spec::ApproxSpec;
use approxhadoop_core::userdef::{version_for, Version};
use approxhadoop_runtime::engine::JobConfig;
use approxhadoop_runtime::input::VecSource;
use approxhadoop_runtime::types::TaskId;
use proptest::prelude::*;

fn population() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..100.0f64, 4..40), 4..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Precise aggregation equals the arithmetic ground truth for any
    /// population.
    #[test]
    fn precise_sum_matches_truth(blocks in population()) {
        let truth: f64 = blocks.iter().flatten().sum();
        let input = VecSource::new(blocks);
        let r = AggregationJob::sum(|v: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *v))
            .run(&input)
            .unwrap();
        prop_assert!((r.outputs[0].1.estimate - truth).abs() <= 1e-6 * (1.0 + truth));
        prop_assert_eq!(r.outputs[0].1.half_width, 0.0);
    }

    /// Approximate estimates carry finite bounds and non-crazy values
    /// (within an order of magnitude of the truth) for any ratios.
    #[test]
    fn ratio_estimates_are_sane(
        blocks in population(),
        drop_pct in 0u32..60,
        sample_pct in 10u32..=100,
        seed in 0u64..20,
    ) {
        let truth: f64 = blocks.iter().flatten().sum();
        prop_assume!(truth > 1.0);
        let input = VecSource::new(blocks);
        let spec = ApproxSpec::ratios(drop_pct as f64 / 100.0, sample_pct as f64 / 100.0);
        let r = AggregationJob::sum(|v: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *v))
            .spec(spec)
            .config(JobConfig { seed, ..Default::default() })
            .run(&input)
            .unwrap();
        let iv = r.outputs[0].1;
        prop_assert!(iv.estimate.is_finite());
        prop_assert!(iv.estimate >= 0.0);
        prop_assert!(iv.estimate < truth * 10.0 + 1.0);
        // Executed ≥ 2 clusters → finite bound.
        if r.metrics.executed_maps >= 2 {
            prop_assert!(iv.half_width.is_finite());
        }
    }

    /// The mean estimator always lands inside the value range of the
    /// population (a mean cannot escape its support).
    #[test]
    fn mean_respects_support(
        blocks in population(),
        sample_pct in 20u32..=100,
        seed in 0u64..20,
    ) {
        let lo = blocks.iter().flatten().copied().fold(f64::INFINITY, f64::min);
        let hi = blocks.iter().flatten().copied().fold(f64::NEG_INFINITY, f64::max);
        let input = VecSource::new(blocks);
        let r = AggregationJob::mean(|v: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *v))
            .spec(ApproxSpec::ratios(0.0, sample_pct as f64 / 100.0))
            .config(JobConfig { seed, ..Default::default() })
            .run(&input)
            .unwrap();
        let est = r.outputs[0].1.estimate;
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "mean {est} outside [{lo}, {hi}]");
    }

    /// Target mode's contract: whenever the controller *chooses* to stop
    /// early (some maps dropped/killed), the reported bound meets the
    /// target — the estimate is frozen at the moment the target was met.
    /// When every map runs (the controller could not stop), the bound is
    /// best-effort: sampled blocks cannot be re-read, so a plan built on
    /// noisy first-wave statistics may land slightly above the target on
    /// adversarial tiny populations (at the paper's block counts the
    /// planning margin absorbs this).
    #[test]
    fn target_mode_early_stop_never_violates(
        blocks in population(),
        target_pct in 1u32..30,
        seed in 0u64..10,
    ) {
        let truth: f64 = blocks.iter().flatten().sum();
        prop_assume!(truth > 1.0);
        let target = target_pct as f64 / 100.0;
        let input = VecSource::new(blocks);
        let r = AggregationJob::sum(|v: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *v))
            .spec(ApproxSpec::target(target, 0.95))
            .config(JobConfig { map_slots: 4, seed, ..Default::default() })
            .run(&input)
            .unwrap();
        let iv = r.outputs[0].1;
        let stopped_early = r.metrics.dropped_maps + r.metrics.killed_maps > 0;
        if stopped_early {
            prop_assert!(
                iv.relative_error() <= target + 1e-9,
                "early stop with bound {} above target {target}",
                iv.relative_error()
            );
        } else {
            // Ran everything: bound must at least be finite and the
            // point estimate honest.
            prop_assert!(iv.relative_error().is_finite());
            prop_assert!(iv.estimate.is_finite());
        }
    }

    /// User-defined version selection is deterministic and respects the
    /// extreme fractions.
    #[test]
    fn version_selection_properties(task in 0usize..10_000, seed in 0u64..100, frac in 0.0..=1.0f64) {
        let v1 = version_for(TaskId(task), frac, seed);
        let v2 = version_for(TaskId(task), frac, seed);
        prop_assert_eq!(v1, v2);
        prop_assert_eq!(version_for(TaskId(task), 0.0, seed), Version::Precise);
        prop_assert_eq!(version_for(TaskId(task), 1.0, seed), Version::Approximate);
    }
}
