//! Property-based tests for the DFS substrate.

use approxhadoop_dfs::{DfsCluster, DfsConfig};
use proptest::prelude::*;

proptest! {
    /// Writing lines and reading every block back reconstructs the file
    /// exactly, for any block size and content.
    #[test]
    fn write_read_roundtrip(
        lines in prop::collection::vec("[a-zA-Z0-9 ]{0,40}", 1..300),
        block_records in 1u64..64,
        datanodes in 1usize..6,
    ) {
        // Empty lines are dropped by the line codec; filter them from the
        // expectation.
        let expected: Vec<&String> = lines.iter().filter(|l| !l.is_empty()).collect();
        let mut dfs = DfsCluster::new(DfsConfig {
            datanodes,
            replication: 2,
            block_records,
        });
        let handle = dfs.write_lines("f", &lines).unwrap();
        let mut read_back = Vec::new();
        for b in &handle.blocks {
            read_back.extend(dfs.read_block_lines(b.id).unwrap());
        }
        prop_assert_eq!(read_back.len(), expected.len());
        for (got, want) in read_back.iter().zip(expected) {
            prop_assert_eq!(got, want);
        }
    }

    /// Block partition invariants: record counts per block sum to the
    /// total, every block except the last is full, and replica lists are
    /// valid.
    #[test]
    fn block_partition_invariants(
        num_lines in 1usize..500,
        block_records in 1u64..50,
        datanodes in 1usize..8,
        replication in 1usize..5,
    ) {
        let lines: Vec<String> = (0..num_lines).map(|i| format!("l{i}")).collect();
        let mut dfs = DfsCluster::new(DfsConfig {
            datanodes,
            replication,
            block_records,
        });
        let handle = dfs.write_lines("f", &lines).unwrap();
        prop_assert_eq!(handle.total_records(), num_lines as u64);
        let expected_blocks = num_lines.div_ceil(block_records as usize);
        prop_assert_eq!(handle.blocks.len(), expected_blocks);
        for (i, b) in handle.blocks.iter().enumerate() {
            if i + 1 < handle.blocks.len() {
                prop_assert_eq!(b.records, block_records);
            } else {
                prop_assert!(b.records >= 1 && b.records <= block_records);
            }
            prop_assert_eq!(b.index as usize, i);
        }
        let effective_replication = replication.min(datanodes);
        for locs in &handle.locations {
            prop_assert_eq!(locs.len(), effective_replication);
            let mut distinct = locs.clone();
            distinct.sort();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), locs.len());
            prop_assert!(locs.iter().all(|n| n.0 < datanodes));
        }
    }

    /// Generated files materialise identical content on repeated reads.
    #[test]
    fn generated_blocks_are_stable(blocks in 1u64..20, seed in 0u64..1000) {
        let mut dfs = DfsCluster::new(DfsConfig::default());
        let handle = dfs
            .write_generated(
                "gen",
                blocks,
                |_| 3,
                |_| 30,
                move |i| {
                    bytes::Bytes::from(format!("{}a\n{}b\n{}c\n", i ^ seed, i, seed))
                },
            )
            .unwrap();
        for b in &handle.blocks {
            let first = dfs.read_block_lines(b.id).unwrap();
            let second = dfs.read_block_lines(b.id).unwrap();
            prop_assert_eq!(&first, &second);
            prop_assert_eq!(first.len(), 3);
        }
    }
}
