//! Block storage backends.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::block::BlockId;
use crate::{DfsError, Result};

/// A source of block contents.
///
/// Implementations must be cheap to clone/share and thread-safe: map
/// tasks read blocks concurrently.
pub trait BlockStore: Send + Sync {
    /// Reads the full contents of a block.
    fn read(&self, id: BlockId) -> Result<Bytes>;

    /// Whether the store holds (or can produce) the block.
    fn contains(&self, id: BlockId) -> bool;
}

/// In-memory block store: blocks are explicit byte buffers.
#[derive(Debug, Default, Clone)]
pub struct MemoryStore {
    blocks: Arc<RwLock<HashMap<BlockId, Bytes>>>,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a block.
    pub fn put(&self, id: BlockId, data: Bytes) {
        self.blocks.write().insert(id, data);
    }

    /// Removes a block, returning whether it was present.
    pub fn remove(&self, id: BlockId) -> bool {
        self.blocks.write().remove(&id).is_some()
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.read().is_empty()
    }
}

impl BlockStore for MemoryStore {
    fn read(&self, id: BlockId) -> Result<Bytes> {
        self.blocks
            .read()
            .get(&id)
            .cloned()
            .ok_or(DfsError::BlockNotFound { block: id })
    }

    fn contains(&self, id: BlockId) -> bool {
        self.blocks.read().contains_key(&id)
    }
}

/// Generator-backed block store: block contents are produced
/// deterministically on every read by a user-supplied function.
///
/// This is how the repo handles the paper's multi-terabyte inputs on a
/// laptop: a year of synthetic Wikipedia access logs is "stored" as a
/// seed plus a generator, and each map task materialises only the block
/// it processes.
pub struct GeneratorStore {
    generator: Arc<dyn Fn(BlockId) -> Option<Bytes> + Send + Sync>,
}

impl GeneratorStore {
    /// Creates a store backed by `generator`; the function must return
    /// `Some(bytes)` for every block it claims to hold and must be
    /// deterministic (the same block may be read several times, e.g. by
    /// a straggler duplicate).
    pub fn new(generator: impl Fn(BlockId) -> Option<Bytes> + Send + Sync + 'static) -> Self {
        GeneratorStore {
            generator: Arc::new(generator),
        }
    }
}

impl std::fmt::Debug for GeneratorStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeneratorStore").finish_non_exhaustive()
    }
}

impl Clone for GeneratorStore {
    fn clone(&self) -> Self {
        GeneratorStore {
            generator: Arc::clone(&self.generator),
        }
    }
}

impl BlockStore for GeneratorStore {
    fn read(&self, id: BlockId) -> Result<Bytes> {
        (self.generator)(id).ok_or(DfsError::BlockNotFound { block: id })
    }

    fn contains(&self, id: BlockId) -> bool {
        (self.generator)(id).is_some()
    }
}

/// A store that dispatches to one of several child stores (memory blocks
/// and generated blocks can coexist in one namespace).
#[derive(Clone)]
pub struct CompositeStore {
    children: Vec<Arc<dyn BlockStore>>,
}

impl CompositeStore {
    /// Creates an empty composite.
    pub fn new() -> Self {
        CompositeStore {
            children: Vec::new(),
        }
    }

    /// Adds a child store; children are consulted in insertion order.
    pub fn push(&mut self, store: Arc<dyn BlockStore>) {
        self.children.push(store);
    }
}

impl Default for CompositeStore {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CompositeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeStore")
            .field("children", &self.children.len())
            .finish()
    }
}

impl BlockStore for CompositeStore {
    fn read(&self, id: BlockId) -> Result<Bytes> {
        for c in &self.children {
            if c.contains(id) {
                return c.read(id);
            }
        }
        Err(DfsError::BlockNotFound { block: id })
    }

    fn contains(&self, id: BlockId) -> bool {
        self.children.iter().any(|c| c.contains(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_roundtrip() {
        let store = MemoryStore::new();
        assert!(store.is_empty());
        store.put(BlockId(1), Bytes::from_static(b"hello"));
        assert_eq!(store.len(), 1);
        assert!(store.contains(BlockId(1)));
        assert_eq!(
            store.read(BlockId(1)).unwrap(),
            Bytes::from_static(b"hello")
        );
        assert!(store.remove(BlockId(1)));
        assert!(!store.remove(BlockId(1)));
        assert!(matches!(
            store.read(BlockId(1)),
            Err(DfsError::BlockNotFound { .. })
        ));
    }

    #[test]
    fn memory_store_clones_share_state() {
        let a = MemoryStore::new();
        let b = a.clone();
        a.put(BlockId(9), Bytes::from_static(b"x"));
        assert!(b.contains(BlockId(9)));
    }

    #[test]
    fn generator_store_is_deterministic() {
        let store = GeneratorStore::new(|id| {
            if id.0 < 10 {
                Some(Bytes::from(format!("block {}", id.0)))
            } else {
                None
            }
        });
        assert_eq!(
            store.read(BlockId(3)).unwrap(),
            store.read(BlockId(3)).unwrap()
        );
        assert!(store.contains(BlockId(9)));
        assert!(!store.contains(BlockId(10)));
        assert!(store.read(BlockId(99)).is_err());
    }

    #[test]
    fn composite_store_dispatches() {
        let mem = MemoryStore::new();
        mem.put(BlockId(1), Bytes::from_static(b"mem"));
        let gen = GeneratorStore::new(|id| (id.0 == 2).then(|| Bytes::from_static(b"gen")));
        let mut comp = CompositeStore::new();
        comp.push(Arc::new(mem));
        comp.push(Arc::new(gen));
        assert_eq!(comp.read(BlockId(1)).unwrap(), Bytes::from_static(b"mem"));
        assert_eq!(comp.read(BlockId(2)).unwrap(), Bytes::from_static(b"gen"));
        assert!(comp.read(BlockId(3)).is_err());
    }
}
