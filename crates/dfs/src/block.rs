//! Block identifiers and metadata.

/// Globally unique identifier of a data block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk_{:016x}", self.0)
    }
}

/// Metadata the namenode keeps per block.
///
/// `records` is the per-block record count `M_i` — a first-class quantity
/// here because the two-stage sampling estimators need it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// The block's identifier.
    pub id: BlockId,
    /// Number of records (input data items) in the block.
    pub records: u64,
    /// Size of the block in bytes.
    pub bytes: u64,
    /// Index of this block within its file.
    pub index: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_display_is_stable() {
        assert_eq!(BlockId(255).to_string(), "blk_00000000000000ff");
    }

    #[test]
    fn block_ids_order_by_value() {
        assert!(BlockId(1) < BlockId(2));
        let mut v = vec![BlockId(3), BlockId(1), BlockId(2)];
        v.sort();
        assert_eq!(v, vec![BlockId(1), BlockId(2), BlockId(3)]);
    }
}
