//! Deterministic read-path fault injection.
//!
//! [`ReadFaults`] describes which replica reads should fail or stall:
//! whole datanodes can be declared dead, and per-replica read errors and
//! slow reads are drawn from a seeded hash of `(block, node)` so a given
//! plan always fails the *same* replicas — runs are reproducible and a
//! failed read stays failed on retry (the retrying layer must fail over
//! to another replica or give up, exactly like a real datanode outage).
//!
//! [`DfsCluster::read_block`](crate::DfsCluster::read_block) consults an
//! installed plan before touching the store: replicas are tried in
//! namenode placement order and the read only errors once *every*
//! replica has failed. [`FaultStats`] counts what the injection did so
//! tests and telemetry can assert failover actually happened.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::block::BlockId;
use crate::namenode::NodeId;

/// `splitmix64` — a tiny, high-quality mixing function.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic hash of `(seed, a, b, salt)` mapped to `[0, 1)`.
///
/// This is the shared coin for every fault-injection decision in the
/// workspace: the same inputs always yield the same value, so injected
/// faults are reproducible from the plan seed alone.
pub fn unit_hash(seed: u64, a: u64, b: u64, salt: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(a ^ splitmix64(b ^ salt)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// What the fault plan decides for one replica of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaOutcome {
    /// The replica serves the read normally.
    Healthy,
    /// The replica serves the read after the given delay (slow disk or
    /// congested datanode).
    Slow(Duration),
    /// The replica read fails (dead datanode or injected I/O error).
    Fail,
}

/// A seedable description of read-path faults to inject.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadFaults {
    /// Seed for all per-replica decisions.
    pub seed: u64,
    /// Datanodes considered dead: every replica read on them fails.
    pub dead_nodes: Vec<usize>,
    /// Probability that a given `(block, node)` replica read fails.
    pub replica_error_prob: f64,
    /// Probability that a given `(block, node)` replica read is slow.
    pub slow_replica_prob: f64,
    /// Delay applied to slow replica reads.
    pub slow_replica_delay: Duration,
}

impl Default for ReadFaults {
    fn default() -> Self {
        ReadFaults {
            seed: 0,
            dead_nodes: Vec::new(),
            replica_error_prob: 0.0,
            slow_replica_prob: 0.0,
            slow_replica_delay: Duration::from_millis(10),
        }
    }
}

impl ReadFaults {
    /// Validates probability ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("replica_error_prob", self.replica_error_prob),
            ("slow_replica_prob", self.slow_replica_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must lie in [0, 1], got {p}"));
            }
        }
        Ok(())
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        !self.dead_nodes.is_empty() || self.replica_error_prob > 0.0 || self.slow_replica_prob > 0.0
    }

    /// The (deterministic) fate of reading `block` from `node`.
    pub fn replica_outcome(&self, block: BlockId, node: NodeId) -> ReplicaOutcome {
        if self.dead_nodes.contains(&node.0) {
            return ReplicaOutcome::Fail;
        }
        if self.replica_error_prob > 0.0
            && unit_hash(self.seed, block.0, node.0 as u64, 0xFA17) < self.replica_error_prob
        {
            return ReplicaOutcome::Fail;
        }
        if self.slow_replica_prob > 0.0
            && unit_hash(self.seed, block.0, node.0 as u64, 0x510E) < self.slow_replica_prob
        {
            return ReplicaOutcome::Slow(self.slow_replica_delay);
        }
        ReplicaOutcome::Healthy
    }
}

/// Cluster-wide counters of what fault injection did on the read path.
#[derive(Debug, Default)]
pub struct FaultStats {
    failed_replica_reads: AtomicU64,
    failovers: AtomicU64,
    slow_reads: AtomicU64,
    exhausted_reads: AtomicU64,
}

impl FaultStats {
    pub(crate) fn record_failed_replica(&self) {
        self.failed_replica_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_slow_read(&self) {
        self.slow_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_exhausted(&self) {
        self.exhausted_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            failed_replica_reads: self.failed_replica_reads.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            slow_reads: self.slow_reads.load(Ordering::Relaxed),
            exhausted_reads: self.exhausted_reads.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time values of the [`FaultStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStatsSnapshot {
    /// Replica reads that failed (dead node or injected error).
    pub failed_replica_reads: u64,
    /// Reads that failed over to a subsequent replica after a failure.
    pub failovers: u64,
    /// Replica reads that were delayed by the plan.
    pub slow_reads: u64,
    /// Block reads that failed on *every* replica.
    pub exhausted_reads: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_hash_is_deterministic_and_in_range() {
        for a in 0..50u64 {
            for b in 0..4u64 {
                let v = unit_hash(7, a, b, 0xFA17);
                assert!((0.0..1.0).contains(&v));
                assert_eq!(v, unit_hash(7, a, b, 0xFA17));
            }
        }
        // Different salts decorrelate the streams.
        assert_ne!(unit_hash(7, 1, 1, 0xFA17), unit_hash(7, 1, 1, 0x510E));
    }

    #[test]
    fn unit_hash_rate_roughly_matches_probability() {
        let p = 0.3;
        let hits = (0..10_000u64)
            .filter(|&a| unit_hash(42, a, 0, 0xFA17) < p)
            .count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - p).abs() < 0.03, "rate {rate} too far from {p}");
    }

    #[test]
    fn dead_nodes_always_fail() {
        let f = ReadFaults {
            dead_nodes: vec![1],
            ..Default::default()
        };
        assert!(f.is_active());
        for b in 0..20 {
            assert_eq!(
                f.replica_outcome(BlockId(b), NodeId(1)),
                ReplicaOutcome::Fail
            );
            assert_eq!(
                f.replica_outcome(BlockId(b), NodeId(0)),
                ReplicaOutcome::Healthy
            );
        }
    }

    #[test]
    fn outcomes_are_stable_per_replica() {
        let f = ReadFaults {
            seed: 3,
            replica_error_prob: 0.5,
            slow_replica_prob: 0.5,
            ..Default::default()
        };
        for b in 0..50 {
            for n in 0..4 {
                let once = f.replica_outcome(BlockId(b), NodeId(n));
                assert_eq!(once, f.replica_outcome(BlockId(b), NodeId(n)));
            }
        }
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut f = ReadFaults::default();
        assert!(f.validate().is_ok());
        f.replica_error_prob = 1.5;
        assert!(f.validate().is_err());
        f.replica_error_prob = 0.0;
        f.slow_replica_prob = -0.1;
        assert!(f.validate().is_err());
    }

    #[test]
    fn stats_snapshot_counts() {
        let s = FaultStats::default();
        s.record_failed_replica();
        s.record_failed_replica();
        s.record_failover();
        s.record_slow_read();
        s.record_exhausted();
        let snap = s.snapshot();
        assert_eq!(snap.failed_replica_reads, 2);
        assert_eq!(snap.failovers, 1);
        assert_eq!(snap.slow_reads, 1);
        assert_eq!(snap.exhausted_reads, 1);
    }
}
