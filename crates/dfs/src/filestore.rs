//! A file-backed, memory-mapped block store.
//!
//! The process worker backend materialises a job's input blocks into
//! one **spool file** on the parent side, then each worker opens the
//! spool read-only via `mmap` ([`approxhadoop_ipc::Mmap`]) and decodes
//! only the blocks of the map tasks it is assigned. This keeps block
//! payloads out of the command pipe entirely and lets the kernel page
//! a spool far larger than RAM in and out on demand — the same role
//! HDFS-local short-circuit reads play for a real TaskTracker.
//!
//! ## On-disk format (all integers little-endian)
//!
//! ```text
//! [magic  8B = "AHSPOOL1"]
//! [block payloads, back to back]
//! [index: count u64, then per block: id u64, offset u64, len u64, records u64]
//! [index offset u64]
//! [magic  8B = "AHSPOOL1"]
//! ```
//!
//! The index lives at the end so [`FileStoreWriter`] can stream blocks
//! of unknown sizes without seeking; the trailing magic + offset let
//! [`FileStore::open`] validate the file before trusting any length.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use approxhadoop_ipc::Mmap;
use bytes::Bytes;

use crate::block::BlockId;
use crate::store::BlockStore;
use crate::{DfsError, Result};

const MAGIC: &[u8; 8] = b"AHSPOOL1";

fn corrupt(path: &Path, reason: &str) -> DfsError {
    DfsError::InvalidConfig {
        reason: format!("spool file {}: {reason}", path.display()),
    }
}

fn io_err(path: &Path, op: &str, e: std::io::Error) -> DfsError {
    DfsError::InvalidConfig {
        reason: format!("spool file {} ({op}): {e}", path.display()),
    }
}

/// Streams blocks into a new spool file.
pub struct FileStoreWriter {
    path: PathBuf,
    out: BufWriter<File>,
    offset: u64,
    index: Vec<(u64, u64, u64, u64)>,
}

impl FileStoreWriter {
    /// Creates (truncating) the spool at `path` and writes the header.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = File::create(&path).map_err(|e| io_err(&path, "create", e))?;
        let mut out = BufWriter::new(file);
        out.write_all(MAGIC)
            .map_err(|e| io_err(&path, "write", e))?;
        Ok(FileStoreWriter {
            path,
            out,
            offset: MAGIC.len() as u64,
            index: Vec::new(),
        })
    }

    /// Appends one block's payload; `records` is the block's record
    /// count (the cluster size `M_i` of the sampling theory).
    pub fn append(&mut self, id: BlockId, records: u64, payload: &[u8]) -> Result<()> {
        self.out
            .write_all(payload)
            .map_err(|e| io_err(&self.path, "write", e))?;
        self.index
            .push((id.0, self.offset, payload.len() as u64, records));
        self.offset += payload.len() as u64;
        Ok(())
    }

    /// Writes the index and footer and syncs the file to disk.
    pub fn finish(mut self) -> Result<()> {
        let index_offset = self.offset;
        let mut tail = Vec::with_capacity(8 + self.index.len() * 32 + 16);
        tail.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        for (id, off, len, records) in &self.index {
            tail.extend_from_slice(&id.to_le_bytes());
            tail.extend_from_slice(&off.to_le_bytes());
            tail.extend_from_slice(&len.to_le_bytes());
            tail.extend_from_slice(&records.to_le_bytes());
        }
        tail.extend_from_slice(&index_offset.to_le_bytes());
        tail.extend_from_slice(MAGIC);
        self.out
            .write_all(&tail)
            .map_err(|e| io_err(&self.path, "write", e))?;
        self.out
            .flush()
            .map_err(|e| io_err(&self.path, "flush", e))?;
        self.out
            .get_ref()
            .sync_all()
            .map_err(|e| io_err(&self.path, "sync", e))?;
        Ok(())
    }
}

/// A read-only, memory-mapped spool of blocks.
pub struct FileStore {
    map: Mmap,
    /// id → (offset, len, records)
    index: HashMap<u64, (usize, usize, u64)>,
}

impl FileStore {
    /// Opens and validates a spool written by [`FileStoreWriter`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let map = Mmap::open(path).map_err(|e| io_err(path, "open", e))?;
        let bytes: &[u8] = &map;
        if bytes.len() < MAGIC.len() * 2 + 16 {
            return Err(corrupt(path, "too short for header and footer"));
        }
        if &bytes[..MAGIC.len()] != MAGIC || &bytes[bytes.len() - MAGIC.len()..] != MAGIC {
            return Err(corrupt(path, "bad magic"));
        }
        let foot = bytes.len() - MAGIC.len() - 8;
        let index_offset = u64::from_le_bytes(bytes[foot..foot + 8].try_into().unwrap()) as usize;
        if index_offset < MAGIC.len() || index_offset >= foot {
            return Err(corrupt(path, "index offset out of range"));
        }
        let mut cur = index_offset;
        let read_u64 = |cur: &mut usize| -> Result<u64> {
            if *cur + 8 > foot {
                return Err(corrupt(path, "index truncated"));
            }
            let v = u64::from_le_bytes(bytes[*cur..*cur + 8].try_into().unwrap());
            *cur += 8;
            Ok(v)
        };
        let count = read_u64(&mut cur)? as usize;
        if count.saturating_mul(32) != foot - cur {
            return Err(corrupt(path, "index size mismatch"));
        }
        let mut index = HashMap::with_capacity(count);
        for _ in 0..count {
            let id = read_u64(&mut cur)?;
            let off = read_u64(&mut cur)? as usize;
            let len = read_u64(&mut cur)? as usize;
            let records = read_u64(&mut cur)?;
            if off < MAGIC.len() || off.saturating_add(len) > index_offset {
                return Err(corrupt(path, "block extent out of range"));
            }
            index.insert(id, (off, len, records));
        }
        Ok(FileStore { map, index })
    }

    /// Borrows a block's payload straight from the mapping (zero copy).
    pub fn slice(&self, id: BlockId) -> Option<&[u8]> {
        let &(off, len, _) = self.index.get(&id.0)?;
        Some(&self.map[off..off + len])
    }

    /// The record count recorded for a block.
    pub fn records(&self, id: BlockId) -> Option<u64> {
        self.index.get(&id.0).map(|&(_, _, r)| r)
    }

    /// Number of blocks in the spool.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the spool holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("blocks", &self.index.len())
            .field("bytes", &self.map.len())
            .finish()
    }
}

impl BlockStore for FileStore {
    fn read(&self, id: BlockId) -> Result<Bytes> {
        self.slice(id)
            .map(|s| Bytes::from(s.to_vec()))
            .ok_or(DfsError::BlockNotFound { block: id })
    }

    fn contains(&self, id: BlockId) -> bool {
        self.index.contains_key(&id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "approxhadoop-spool-test-{}-{name}",
            std::process::id()
        ))
    }

    fn write_spool(path: &Path, blocks: &[(u64, u64, &[u8])]) {
        let mut w = FileStoreWriter::create(path).unwrap();
        for &(id, records, payload) in blocks {
            w.append(BlockId(id), records, payload).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn roundtrips_blocks_and_metadata() {
        let path = temp_path("roundtrip");
        write_spool(&path, &[(0, 3, b"abc"), (7, 0, b""), (2, 1, b"zzzz")]);
        let store = FileStore::open(&path).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.slice(BlockId(0)).unwrap(), b"abc");
        assert_eq!(store.slice(BlockId(7)).unwrap(), b"");
        assert_eq!(store.slice(BlockId(2)).unwrap(), b"zzzz");
        assert_eq!(store.records(BlockId(0)), Some(3));
        assert_eq!(store.records(BlockId(2)), Some(1));
        assert!(store.contains(BlockId(7)));
        assert!(!store.contains(BlockId(9)));
        assert_eq!(
            store.read(BlockId(2)).unwrap(),
            Bytes::from(b"zzzz".to_vec())
        );
        assert!(matches!(
            store.read(BlockId(9)),
            Err(DfsError::BlockNotFound { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_spool_opens() {
        let path = temp_path("empty");
        write_spool(&path, &[]);
        let store = FileStore::open(&path).unwrap();
        assert!(store.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_spool_is_rejected() {
        let path = temp_path("truncated");
        write_spool(&path, &[(1, 2, b"payload")]);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let path = temp_path("badmagic");
        write_spool(&path, &[(1, 2, b"payload")]);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_index_offset_is_rejected() {
        let path = temp_path("badoffset");
        write_spool(&path, &[(1, 2, b"payload")]);
        let mut bytes = std::fs::read(&path).unwrap();
        let foot = bytes.len() - 16;
        bytes[foot..foot + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
