//! Block-structured distributed file system substrate for ApproxHadoop-RS.
//!
//! This crate plays HDFS's role in the paper: datasets are split into
//! fixed-size **blocks**, each block is placed (with replication) on a set
//! of **datanodes**, and a cluster-wide **namenode** maps file names to
//! block locations. The MapReduce runtime schedules one map task per
//! block, preferring servers that hold the block locally.
//!
//! Only the properties the paper depends on are modelled:
//!
//! * the block partition — blocks are the *clusters* of the two-stage
//!   sampling theory, so block boundaries and per-block record counts
//!   must be first class;
//! * locality metadata — the JobTracker prefers local slots;
//! * replication — block loss/recovery is out of scope.
//!
//! Storage is in-process. Two backends are provided: [`store::MemoryStore`]
//! for real data and [`store::GeneratorStore`] for synthetic datasets that
//! are far larger than RAM (blocks are regenerated deterministically from
//! a seed on each read).
//!
//! # Example
//!
//! ```
//! use approxhadoop_dfs::{DfsCluster, DfsConfig};
//!
//! let mut dfs = DfsCluster::new(DfsConfig {
//!     datanodes: 4,
//!     replication: 2,
//!     block_records: 100,
//! });
//! let records: Vec<String> = (0..250).map(|i| format!("record {i}")).collect();
//! dfs.write_lines("logs/day1", &records).unwrap();
//!
//! let file = dfs.open("logs/day1").unwrap();
//! assert_eq!(file.blocks.len(), 3); // 100 + 100 + 50 records
//! let bytes = dfs.read_block(file.blocks[2].id).unwrap();
//! assert_eq!(bytes.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod cluster;
pub mod error;
pub mod fault;
pub mod filestore;
pub mod namenode;
pub mod store;

pub use block::{BlockId, BlockMeta};
pub use cluster::{DfsCluster, DfsConfig, FileHandle};
pub use error::DfsError;
pub use fault::{FaultStats, FaultStatsSnapshot, ReadFaults, ReplicaOutcome};
pub use filestore::{FileStore, FileStoreWriter};
pub use namenode::{NameNode, NodeId};

/// Result alias for DFS operations.
pub type Result<T> = std::result::Result<T, DfsError>;
