//! Error type for DFS operations.

use std::fmt;

use crate::block::BlockId;
use crate::namenode::NodeId;

/// Errors produced by the DFS substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DfsError {
    /// The named file does not exist.
    FileNotFound {
        /// The requested path.
        path: String,
    },
    /// A file with this name already exists.
    FileExists {
        /// The conflicting path.
        path: String,
    },
    /// The block id is unknown to the namenode or its datanodes.
    BlockNotFound {
        /// The requested block.
        block: BlockId,
    },
    /// An invalid configuration value was supplied.
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
    /// One replica of a block could not be read (dead or faulty
    /// datanode). The read path normally fails over to the next replica;
    /// this error surfaces directly only from per-replica probes.
    ReplicaUnavailable {
        /// The block being read.
        block: BlockId,
        /// The datanode whose replica failed.
        node: NodeId,
    },
    /// Every replica of a block failed to read — the block is
    /// effectively lost until a datanode recovers.
    AllReplicasFailed {
        /// The block being read.
        block: BlockId,
        /// How many replicas were tried.
        replicas: usize,
    },
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::FileNotFound { path } => write!(f, "file not found: {path}"),
            DfsError::FileExists { path } => write!(f, "file already exists: {path}"),
            DfsError::BlockNotFound { block } => write!(f, "block not found: {block:?}"),
            DfsError::InvalidConfig { reason } => write!(f, "invalid DFS config: {reason}"),
            DfsError::ReplicaUnavailable { block, node } => {
                write!(f, "replica of {block:?} on {node} unavailable")
            }
            DfsError::AllReplicasFailed { block, replicas } => {
                write!(f, "all {replicas} replica(s) of {block:?} failed to read")
            }
        }
    }
}

impl std::error::Error for DfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_path() {
        let e = DfsError::FileNotFound { path: "a/b".into() };
        assert!(e.to_string().contains("a/b"));
        let e = DfsError::BlockNotFound { block: BlockId(7) };
        assert!(e.to_string().contains('7'));
    }
}
