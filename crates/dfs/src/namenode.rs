//! The namenode: file namespace and block placement.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::block::{BlockId, BlockMeta};
use crate::{DfsError, Result};

/// Identifier of a datanode (equal to the hosting server's index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A file's entry in the namespace.
#[derive(Debug, Clone)]
struct FileEntry {
    blocks: Vec<BlockMeta>,
}

/// The namenode: tracks the file → blocks mapping and block → datanode
/// placement, mirroring HDFS's NameNode process.
#[derive(Debug)]
pub struct NameNode {
    datanodes: usize,
    replication: usize,
    files: HashMap<String, FileEntry>,
    placement: HashMap<BlockId, Vec<NodeId>>,
    next_block: u64,
    rng: StdRng,
}

impl NameNode {
    /// Creates a namenode managing `datanodes` nodes with the given
    /// replication factor (clamped to the node count).
    ///
    /// # Panics
    ///
    /// Panics if `datanodes == 0` or `replication == 0`.
    pub fn new(datanodes: usize, replication: usize) -> Self {
        assert!(datanodes > 0, "need at least one datanode");
        assert!(replication > 0, "replication must be at least 1");
        NameNode {
            datanodes,
            replication: replication.min(datanodes),
            files: HashMap::new(),
            placement: HashMap::new(),
            next_block: 0,
            rng: StdRng::seed_from_u64(0x5eed_d00d),
        }
    }

    /// Number of managed datanodes.
    pub fn datanodes(&self) -> usize {
        self.datanodes
    }

    /// Effective replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Allocates `count` fresh block ids for a new file and records their
    /// metadata and placement. `records_per_block(i)` and
    /// `bytes_per_block(i)` provide the per-block sizes.
    ///
    /// Placement policy: the first replica rotates round-robin across
    /// datanodes (even load), remaining replicas go to distinct random
    /// nodes — close enough to HDFS's default policy for scheduling
    /// purposes.
    pub fn create_file(
        &mut self,
        path: &str,
        count: u64,
        mut records_per_block: impl FnMut(u64) -> u64,
        mut bytes_per_block: impl FnMut(u64) -> u64,
    ) -> Result<Vec<BlockMeta>> {
        if self.files.contains_key(path) {
            return Err(DfsError::FileExists { path: path.into() });
        }
        if count == 0 {
            return Err(DfsError::InvalidConfig {
                reason: format!("file `{path}` must contain at least one block"),
            });
        }
        let mut blocks = Vec::with_capacity(count as usize);
        for i in 0..count {
            let id = BlockId(self.next_block);
            self.next_block += 1;
            let meta = BlockMeta {
                id,
                records: records_per_block(i),
                bytes: bytes_per_block(i),
                index: i,
            };
            let primary = NodeId((id.0 as usize) % self.datanodes);
            let mut replicas = vec![primary];
            while replicas.len() < self.replication {
                let candidate = NodeId(self.rng.gen_range(0..self.datanodes));
                if !replicas.contains(&candidate) {
                    replicas.push(candidate);
                }
            }
            self.placement.insert(id, replicas);
            blocks.push(meta);
        }
        self.files.insert(
            path.into(),
            FileEntry {
                blocks: blocks.clone(),
            },
        );
        Ok(blocks)
    }

    /// Removes a file from the namespace, returning its blocks so the
    /// caller can free the stores.
    pub fn delete_file(&mut self, path: &str) -> Result<Vec<BlockMeta>> {
        let entry = self
            .files
            .remove(path)
            .ok_or_else(|| DfsError::FileNotFound { path: path.into() })?;
        for b in &entry.blocks {
            self.placement.remove(&b.id);
        }
        Ok(entry.blocks)
    }

    /// The blocks of a file, in order.
    pub fn blocks_of(&self, path: &str) -> Result<Vec<BlockMeta>> {
        self.files
            .get(path)
            .map(|e| e.blocks.clone())
            .ok_or_else(|| DfsError::FileNotFound { path: path.into() })
    }

    /// Whether the namespace contains `path`.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// All file paths in the namespace (unordered).
    pub fn list_files(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// The datanodes holding replicas of `block`.
    pub fn locate(&self, block: BlockId) -> Result<&[NodeId]> {
        self.placement
            .get(&block)
            .map(Vec::as_slice)
            .ok_or(DfsError::BlockNotFound { block })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_locate() {
        let mut nn = NameNode::new(4, 2);
        let blocks = nn.create_file("f", 8, |_| 100, |_| 6400).unwrap();
        assert_eq!(blocks.len(), 8);
        for b in &blocks {
            let nodes = nn.locate(b.id).unwrap();
            assert_eq!(nodes.len(), 2);
            assert_ne!(nodes[0], nodes[1]);
            assert!(nodes.iter().all(|n| n.0 < 4));
        }
        // Primary replica is round-robin: even initial distribution.
        let primaries: Vec<usize> = blocks
            .iter()
            .map(|b| nn.locate(b.id).unwrap()[0].0)
            .collect();
        assert_eq!(primaries, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_file_rejected() {
        let mut nn = NameNode::new(2, 1);
        nn.create_file("f", 1, |_| 1, |_| 1).unwrap();
        assert!(matches!(
            nn.create_file("f", 1, |_| 1, |_| 1),
            Err(DfsError::FileExists { .. })
        ));
    }

    #[test]
    fn empty_file_rejected() {
        let mut nn = NameNode::new(2, 1);
        assert!(matches!(
            nn.create_file("f", 0, |_| 1, |_| 1),
            Err(DfsError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn replication_clamped_to_nodes() {
        let nn = NameNode::new(2, 5);
        assert_eq!(nn.replication(), 2);
    }

    #[test]
    fn delete_clears_placement() {
        let mut nn = NameNode::new(3, 1);
        let blocks = nn.create_file("f", 3, |_| 1, |_| 1).unwrap();
        assert!(nn.exists("f"));
        let removed = nn.delete_file("f").unwrap();
        assert_eq!(removed.len(), 3);
        assert!(!nn.exists("f"));
        assert!(nn.locate(blocks[0].id).is_err());
        assert!(nn.delete_file("f").is_err());
    }

    #[test]
    fn block_metadata_carries_sizes() {
        let mut nn = NameNode::new(1, 1);
        let blocks = nn
            .create_file("f", 3, |i| 10 * (i + 1), |i| 1000 * (i + 1))
            .unwrap();
        assert_eq!(blocks[1].records, 20);
        assert_eq!(blocks[2].bytes, 3000);
        assert_eq!(blocks[2].index, 2);
    }

    #[test]
    fn block_ids_unique_across_files() {
        let mut nn = NameNode::new(2, 1);
        let a = nn.create_file("a", 2, |_| 1, |_| 1).unwrap();
        let b = nn.create_file("b", 2, |_| 1, |_| 1).unwrap();
        let mut ids: Vec<u64> = a.iter().chain(&b).map(|m| m.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn list_files_reflects_namespace() {
        let mut nn = NameNode::new(1, 1);
        nn.create_file("x", 1, |_| 1, |_| 1).unwrap();
        nn.create_file("y", 1, |_| 1, |_| 1).unwrap();
        let mut files = nn.list_files();
        files.sort();
        assert_eq!(files, vec!["x", "y"]);
    }
}
