//! A convenience façade wiring a namenode to block stores — the whole
//! "HDFS cluster" in one object.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::block::{BlockId, BlockMeta};
use crate::error::DfsError;
use crate::fault::{FaultStats, FaultStatsSnapshot, ReadFaults, ReplicaOutcome};
use crate::namenode::{NameNode, NodeId};
use crate::store::{BlockStore, CompositeStore, GeneratorStore, MemoryStore};
use crate::Result;

/// Configuration of a [`DfsCluster`].
#[derive(Debug, Clone, Copy)]
pub struct DfsConfig {
    /// Number of datanodes (normally one per simulated server).
    pub datanodes: usize,
    /// Replication factor.
    pub replication: usize,
    /// Records per block (the analogue of HDFS's 64 MB block size,
    /// expressed in records because the sampling theory counts units).
    pub block_records: u64,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            datanodes: 4,
            replication: 3,
            block_records: 10_000,
        }
    }
}

/// An open file: its ordered blocks plus their replica locations.
#[derive(Debug, Clone)]
pub struct FileHandle {
    /// The file path.
    pub path: String,
    /// Ordered block metadata.
    pub blocks: Vec<BlockMeta>,
    /// Replica locations, parallel to `blocks`.
    pub locations: Vec<Vec<NodeId>>,
}

impl FileHandle {
    /// Total records across all blocks.
    pub fn total_records(&self) -> u64 {
        self.blocks.iter().map(|b| b.records).sum()
    }

    /// Total bytes across all blocks.
    pub fn total_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.bytes).sum()
    }
}

/// An in-process DFS cluster: namenode + storage.
///
/// Shared handles are cheap: the cluster clones as an `Arc` internally so
/// the runtime's task trackers can read blocks concurrently.
pub struct DfsCluster {
    namenode: Arc<Mutex<NameNode>>,
    memory: MemoryStore,
    store: Arc<Mutex<CompositeStore>>,
    config: DfsConfig,
    faults: Arc<Mutex<Option<ReadFaults>>>,
    fault_stats: Arc<FaultStats>,
}

impl std::fmt::Debug for DfsCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DfsCluster")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Clone for DfsCluster {
    fn clone(&self) -> Self {
        DfsCluster {
            namenode: Arc::clone(&self.namenode),
            memory: self.memory.clone(),
            store: Arc::clone(&self.store),
            config: self.config,
            faults: Arc::clone(&self.faults),
            fault_stats: Arc::clone(&self.fault_stats),
        }
    }
}

impl DfsCluster {
    /// Creates a cluster with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `datanodes`, `replication` or `block_records` is zero.
    pub fn new(config: DfsConfig) -> Self {
        assert!(config.block_records > 0, "block_records must be positive");
        let memory = MemoryStore::new();
        let mut composite = CompositeStore::new();
        composite.push(Arc::new(memory.clone()));
        DfsCluster {
            namenode: Arc::new(Mutex::new(NameNode::new(
                config.datanodes,
                config.replication,
            ))),
            memory,
            store: Arc::new(Mutex::new(composite)),
            config,
            faults: Arc::new(Mutex::new(None)),
            fault_stats: Arc::new(FaultStats::default()),
        }
    }

    /// Installs (or, with `None`, clears) a read-path fault-injection
    /// plan. Applies to all clones of this cluster — the plan lives on
    /// the shared cluster state, like a real datanode outage would.
    pub fn set_read_faults(&self, faults: Option<ReadFaults>) {
        *self.faults.lock() = faults.filter(ReadFaults::is_active);
    }

    /// Snapshot of the fault-injection counters (failed replica reads,
    /// failovers, slow reads, exhausted blocks).
    pub fn fault_stats(&self) -> FaultStatsSnapshot {
        self.fault_stats.snapshot()
    }

    /// The cluster configuration.
    pub fn config(&self) -> DfsConfig {
        self.config
    }

    /// Writes `lines` as a text file, splitting into blocks of
    /// `block_records` lines (the last block may be short).
    pub fn write_lines<S: AsRef<str>>(&mut self, path: &str, lines: &[S]) -> Result<FileHandle> {
        let per = self.config.block_records as usize;
        let chunks: Vec<&[S]> = if lines.is_empty() {
            vec![&[]]
        } else {
            lines.chunks(per).collect()
        };
        let payloads: Vec<Bytes> = chunks
            .iter()
            .map(|c| {
                let mut s = String::new();
                for l in c.iter() {
                    s.push_str(l.as_ref());
                    s.push('\n');
                }
                Bytes::from(s)
            })
            .collect();
        let blocks = self.namenode.lock().create_file(
            path,
            payloads.len() as u64,
            |i| chunks[i as usize].len() as u64,
            |i| payloads[i as usize].len() as u64,
        )?;
        for (meta, payload) in blocks.iter().zip(payloads) {
            self.memory.put(meta.id, payload);
        }
        self.open(path)
    }

    /// Registers a *generated* file: `num_blocks` blocks whose contents
    /// are produced on demand by `generator(block_index)`, with
    /// `records(block_index)` records and `bytes(block_index)` bytes per
    /// block. Nothing is materialised until a block is read.
    pub fn write_generated(
        &mut self,
        path: &str,
        num_blocks: u64,
        records: impl Fn(u64) -> u64 + Send + Sync + 'static,
        bytes: impl Fn(u64) -> u64 + Send + Sync + 'static,
        generator: impl Fn(u64) -> Bytes + Send + Sync + 'static,
    ) -> Result<FileHandle> {
        let blocks = self
            .namenode
            .lock()
            .create_file(path, num_blocks, records, bytes)?;
        let first = blocks[0].id.0;
        let last = blocks[blocks.len() - 1].id.0;
        let gen_store = GeneratorStore::new(move |id: BlockId| {
            (first..=last)
                .contains(&id.0)
                .then(|| generator(id.0 - first))
        });
        self.store.lock().push(Arc::new(gen_store));
        self.open(path)
    }

    /// Opens a file, returning its blocks and replica locations.
    pub fn open(&self, path: &str) -> Result<FileHandle> {
        let nn = self.namenode.lock();
        let blocks = nn.blocks_of(path)?;
        let locations = blocks
            .iter()
            .map(|b| nn.locate(b.id).map(|s| s.to_vec()))
            .collect::<Result<Vec<_>>>()?;
        Ok(FileHandle {
            path: path.into(),
            blocks,
            locations,
        })
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.namenode.lock().exists(path)
    }

    /// Deletes a file and frees its in-memory blocks.
    pub fn delete(&mut self, path: &str) -> Result<()> {
        let blocks = self.namenode.lock().delete_file(path)?;
        for b in blocks {
            self.memory.remove(b.id);
        }
        Ok(())
    }

    /// Reads the contents of one block.
    ///
    /// With a fault plan installed (see [`DfsCluster::set_read_faults`])
    /// the read walks the block's replicas in namenode placement order,
    /// failing over past dead or faulty replicas, and only errors with
    /// [`DfsError::AllReplicasFailed`] once every replica has failed.
    pub fn read_block(&self, id: BlockId) -> Result<Bytes> {
        let faults = self.faults.lock().clone();
        let Some(faults) = faults else {
            return self.store.lock().read(id);
        };
        // Blocks the namenode cannot locate (e.g. deleted files) keep
        // their fault-free error behaviour.
        let Ok(replicas) = self.namenode.lock().locate(id).map(<[NodeId]>::to_vec) else {
            return self.store.lock().read(id);
        };
        let total = replicas.len();
        for (i, node) in replicas.into_iter().enumerate() {
            match faults.replica_outcome(id, node) {
                ReplicaOutcome::Fail => {
                    self.fault_stats.record_failed_replica();
                    if i + 1 < total {
                        self.fault_stats.record_failover();
                    }
                }
                ReplicaOutcome::Slow(delay) => {
                    self.fault_stats.record_slow_read();
                    std::thread::sleep(delay);
                    return self.store.lock().read(id);
                }
                ReplicaOutcome::Healthy => return self.store.lock().read(id),
            }
        }
        self.fault_stats.record_exhausted();
        Err(DfsError::AllReplicasFailed {
            block: id,
            replicas: total,
        })
    }

    /// Reads a block and splits it into text lines (records).
    pub fn read_block_lines(&self, id: BlockId) -> Result<Vec<String>> {
        let bytes = self.read_block(id)?;
        Ok(split_lines(&bytes))
    }
}

/// Splits a byte buffer into newline-terminated records.
pub fn split_lines(bytes: &Bytes) -> Vec<String> {
    bytes
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("line {i}")).collect()
    }

    #[test]
    fn write_and_read_lines() {
        let mut dfs = DfsCluster::new(DfsConfig {
            datanodes: 3,
            replication: 2,
            block_records: 10,
        });
        let handle = dfs.write_lines("f", &lines(25)).unwrap();
        assert_eq!(handle.blocks.len(), 3);
        assert_eq!(handle.blocks[0].records, 10);
        assert_eq!(handle.blocks[2].records, 5);
        assert_eq!(handle.total_records(), 25);
        let rec = dfs.read_block_lines(handle.blocks[1].id).unwrap();
        assert_eq!(rec.len(), 10);
        assert_eq!(rec[0], "line 10");
    }

    #[test]
    fn empty_file_becomes_single_empty_block() {
        let mut dfs = DfsCluster::new(DfsConfig::default());
        let handle = dfs.write_lines::<String>("empty", &[]).unwrap();
        assert_eq!(handle.blocks.len(), 1);
        assert_eq!(handle.total_records(), 0);
        assert!(dfs
            .read_block_lines(handle.blocks[0].id)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn generated_file_materialises_on_read() {
        let mut dfs = DfsCluster::new(DfsConfig {
            datanodes: 2,
            replication: 1,
            block_records: 100,
        });
        let handle = dfs
            .write_generated(
                "gen",
                5,
                |_| 100,
                |_| 1000,
                |i| Bytes::from((0..100).map(|j| format!("g{i}:{j}\n")).collect::<String>()),
            )
            .unwrap();
        assert_eq!(handle.blocks.len(), 5);
        let rec = dfs.read_block_lines(handle.blocks[3].id).unwrap();
        assert_eq!(rec.len(), 100);
        assert_eq!(rec[0], "g3:0");
        // Deterministic regeneration.
        let again = dfs.read_block_lines(handle.blocks[3].id).unwrap();
        assert_eq!(rec, again);
    }

    #[test]
    fn generated_and_memory_files_coexist() {
        let mut dfs = DfsCluster::new(DfsConfig {
            datanodes: 2,
            replication: 1,
            block_records: 4,
        });
        let mem = dfs.write_lines("mem", &lines(4)).unwrap();
        let gen = dfs
            .write_generated("gen", 1, |_| 1, |_| 2, |_| Bytes::from_static(b"x\n"))
            .unwrap();
        assert_eq!(dfs.read_block_lines(mem.blocks[0].id).unwrap().len(), 4);
        assert_eq!(dfs.read_block_lines(gen.blocks[0].id).unwrap(), vec!["x"]);
    }

    #[test]
    fn delete_frees_blocks() {
        let mut dfs = DfsCluster::new(DfsConfig {
            datanodes: 1,
            replication: 1,
            block_records: 10,
        });
        let handle = dfs.write_lines("f", &lines(5)).unwrap();
        assert!(dfs.exists("f"));
        dfs.delete("f").unwrap();
        assert!(!dfs.exists("f"));
        assert!(dfs.read_block(handle.blocks[0].id).is_err());
    }

    #[test]
    fn locations_match_replication() {
        let mut dfs = DfsCluster::new(DfsConfig {
            datanodes: 5,
            replication: 3,
            block_records: 1,
        });
        let handle = dfs.write_lines("f", &lines(7)).unwrap();
        for locs in &handle.locations {
            assert_eq!(locs.len(), 3);
        }
    }

    #[test]
    fn clone_shares_namespace() {
        let mut dfs = DfsCluster::new(DfsConfig::default());
        let other = dfs.clone();
        dfs.write_lines("shared", &lines(3)).unwrap();
        assert!(other.exists("shared"));
    }

    #[test]
    fn dead_datanode_fails_over_to_live_replica() {
        let mut dfs = DfsCluster::new(DfsConfig {
            datanodes: 3,
            replication: 2,
            block_records: 5,
        });
        let handle = dfs.write_lines("f", &lines(30)).unwrap();
        // Kill whichever node hosts the primary replica of block 0 so at
        // least one read must fail over.
        let primary = handle.locations[0][0].0;
        dfs.set_read_faults(Some(ReadFaults {
            dead_nodes: vec![primary],
            ..Default::default()
        }));
        for b in &handle.blocks {
            // Every block still reads: replication 2 over 3 nodes leaves
            // a live replica for every block.
            assert!(dfs.read_block(b.id).is_ok(), "block {:?}", b.id);
        }
        let stats = dfs.fault_stats();
        assert!(stats.failed_replica_reads > 0);
        assert!(stats.failovers > 0, "stats: {stats:?}");
        assert_eq!(stats.exhausted_reads, 0);
    }

    #[test]
    fn all_replicas_dead_exhausts_the_read() {
        let mut dfs = DfsCluster::new(DfsConfig {
            datanodes: 2,
            replication: 2,
            block_records: 5,
        });
        let handle = dfs.write_lines("f", &lines(5)).unwrap();
        dfs.set_read_faults(Some(ReadFaults {
            dead_nodes: vec![0, 1],
            ..Default::default()
        }));
        let err = dfs.read_block(handle.blocks[0].id).unwrap_err();
        assert!(
            matches!(err, DfsError::AllReplicasFailed { replicas: 2, .. }),
            "got {err:?}"
        );
        assert_eq!(dfs.fault_stats().exhausted_reads, 1);
        // Clearing the plan restores the read.
        dfs.set_read_faults(None);
        assert!(dfs.read_block(handle.blocks[0].id).is_ok());
    }

    #[test]
    fn slow_replica_delays_but_succeeds() {
        let mut dfs = DfsCluster::new(DfsConfig {
            datanodes: 2,
            replication: 1,
            block_records: 50,
        });
        let handle = dfs.write_lines("f", &lines(100)).unwrap();
        dfs.set_read_faults(Some(ReadFaults {
            slow_replica_prob: 1.0,
            slow_replica_delay: std::time::Duration::from_millis(5),
            ..Default::default()
        }));
        let t0 = std::time::Instant::now();
        for b in &handle.blocks {
            assert!(dfs.read_block(b.id).is_ok());
        }
        assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
        assert_eq!(dfs.fault_stats().slow_reads, 2);
    }

    #[test]
    fn fault_plan_is_shared_across_clones() {
        let mut dfs = DfsCluster::new(DfsConfig {
            datanodes: 1,
            replication: 1,
            block_records: 10,
        });
        let handle = dfs.write_lines("f", &lines(3)).unwrap();
        let clone = dfs.clone();
        dfs.set_read_faults(Some(ReadFaults {
            dead_nodes: vec![0],
            ..Default::default()
        }));
        assert!(clone.read_block(handle.blocks[0].id).is_err());
        // An inactive plan is treated as no plan.
        dfs.set_read_faults(Some(ReadFaults::default()));
        assert!(clone.read_block(handle.blocks[0].id).is_ok());
    }

    #[test]
    fn split_lines_handles_trailing_newline_and_empties() {
        let b = Bytes::from_static(b"a\n\nb\n");
        assert_eq!(split_lines(&b), vec!["a", "b"]);
        assert!(split_lines(&Bytes::new()).is_empty());
    }
}
