//! Ablation studies for the design choices called out in `DESIGN.md` /
//! `EXPERIMENTS.md`:
//!
//! 1. **Student-t vs normal quantile** in the CI (Eq. 2 uses t with
//!    `n-1` degrees of freedom — how much coverage does the normal
//!    approximation lose at realistic cluster counts?);
//! 2. **Planning safety margin** (0.8× vs the paper's exact-target
//!    planning): violation rate vs extra work;
//! 3. **Estimate freezing** on early stop: violation rate without it;
//! 4. **Pilot wave** vs a precise first wave on single-wave jobs:
//!    precisely processed records.

use approxhadoop_bench::header;
use approxhadoop_core::multistage::{
    Aggregation, BoundMonitor, MultiStageMapper, MultiStageReducer,
};
use approxhadoop_core::spec::{ApproxSpec, ErrorTarget, PilotSpec};
use approxhadoop_core::target::{SharedApproxState, TargetErrorCoordinator};
use approxhadoop_runtime::engine::{run_job_with_coordinator, JobConfig};
use approxhadoop_runtime::input::VecSource;
use approxhadoop_stats::dist::{cached_two_sided_critical_value, ContinuousDistribution, Normal};
use approxhadoop_stats::multistage::{ClusterObservation, TwoStageEstimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Synthetic population: `blocks × per_block` values with block-level
/// locality.
fn population(blocks: usize, per_block: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..blocks)
        .map(|_| {
            let base = 50.0 + rng.gen_range(-5.0..5.0);
            (0..per_block)
                .map(|_| base + rng.gen_range(-20.0..20.0))
                .collect()
        })
        .collect()
}

/// Ablation 1: CI coverage with t vs z quantiles at small n.
fn ablate_quantile() {
    println!("\n--- Ablation 1: Student-t vs normal quantile (Eq. 2) ---");
    println!(
        "{:>10} | {:>12} | {:>12}",
        "clusters n", "t coverage", "z coverage"
    );
    let mut rng = StdRng::seed_from_u64(1);
    for n in [3usize, 5, 10, 30] {
        let mut covered_t = 0;
        let mut covered_z = 0;
        let reps = 600;
        for _ in 0..reps {
            let blocks = population(40, 50, rng.gen());
            let truth: f64 = blocks.iter().flatten().sum();
            let mut est = TwoStageEstimator::new(40);
            // Sample n random blocks fully.
            let mut ids: Vec<usize> = (0..40).collect();
            for i in 0..n {
                let j = rng.gen_range(i..40);
                ids.swap(i, j);
            }
            for &b in ids.iter().take(n) {
                est.push(ClusterObservation {
                    cluster_id: b as u64,
                    total_units: 50,
                    sampled_units: 50,
                    sum: blocks[b].iter().sum(),
                    sum_sq: blocks[b].iter().map(|v| v * v).sum(),
                });
            }
            let var = est.variance().unwrap();
            let tau = est.estimated_total().unwrap();
            let t = cached_two_sided_critical_value((n - 1) as f64, 0.95);
            let z = Normal::standard().quantile(0.975);
            if (tau - truth).abs() <= t * var.sqrt() {
                covered_t += 1;
            }
            if (tau - truth).abs() <= z * var.sqrt() {
                covered_z += 1;
            }
        }
        println!(
            "{:>10} | {:>11.1}% | {:>11.1}%",
            n,
            covered_t as f64 / reps as f64 * 100.0,
            covered_z as f64 / reps as f64 * 100.0
        );
    }
    println!("(the normal approximation under-covers at small n — Eq. 2's t is load-bearing)");
}

/// One target-mode run with explicit margin/freeze knobs; returns
/// `(reported_rel_bound, executed_maps, avg_sampling)`.
fn run_target(
    blocks: &[Vec<f64>],
    target: f64,
    margin: f64,
    freeze: bool,
    seed: u64,
) -> (f64, usize, f64) {
    let total = blocks.len();
    let input = VecSource::new(blocks.to_vec());
    let mapper = MultiStageMapper::new(|v: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *v));
    let config = JobConfig {
        map_slots: 4,
        reduce_tasks: 1,
        seed,
        ..Default::default()
    };
    let shared = Arc::new(SharedApproxState::new(1));
    let mut coordinator = TargetErrorCoordinator::new(
        total,
        ErrorTarget::Relative(target),
        0.95,
        config.map_slots,
        None,
        Arc::clone(&shared),
    )
    .with_margin(margin);
    let wave1 = coordinator.wave1_count();
    let job = run_job_with_coordinator(
        &input,
        &mapper,
        |_| {
            MultiStageReducer::<u8>::new(Aggregation::Sum, 0.95).with_monitor(BoundMonitor {
                shared: Arc::clone(&shared),
                report_absolute: false,
                check_every: 1,
                freeze_threshold: if freeze { Some(target) } else { None },
                min_maps_before_freeze: wave1,
            })
        },
        config,
        &mut coordinator,
    )
    .expect("target job");
    let bound = job
        .outputs
        .first()
        .map(|(_, iv)| iv.relative_error())
        .unwrap_or(f64::INFINITY);
    (
        bound,
        job.metrics.executed_maps,
        job.metrics.effective_sampling_ratio(),
    )
}

/// Ablations 2 & 3: margin and freeze.
fn ablate_margin_and_freeze() {
    println!("\n--- Ablations 2 & 3: planning margin and estimate freezing ---");
    println!(
        "{:>18} | {:>11} | {:>10} | {:>9}",
        "variant", "violations", "avg maps", "avg smpl"
    );
    let target = 0.02;
    let reps = 40;
    for (name, margin, freeze) in [
        ("margin 1.0, -frz", 1.0, false),
        ("margin 0.8, -frz", 0.8, false),
        ("margin 1.0, +frz", 1.0, true),
        ("margin 0.8, +frz", 0.8, true),
    ] {
        let mut violations = 0;
        let mut maps = 0usize;
        let mut sampling = 0.0;
        for seed in 0..reps {
            let blocks = population(48, 120, 1000 + seed);
            let (bound, m, s) = run_target(&blocks, target, margin, freeze, seed);
            if bound > target + 1e-9 {
                violations += 1;
            }
            maps += m;
            sampling += s;
        }
        println!(
            "{:>18} | {:>8}/{:<2} | {:>10.1} | {:>8.2}",
            name,
            violations,
            reps,
            maps as f64 / reps as f64,
            sampling / reps as f64
        );
    }
    println!("(margin+freeze buy a deterministic early-stop guarantee for a little extra work)");
}

/// Ablation 4: pilot wave on a single-wave job.
fn ablate_pilot() {
    println!("\n--- Ablation 4: pilot wave on a single-wave job ---");
    // 16 blocks on 16 slots: without a pilot, everything runs precisely
    // before statistics exist.
    let blocks = population(16, 400, 7);
    let input = VecSource::new(blocks);
    let config = JobConfig {
        map_slots: 16,
        reduce_tasks: 1,
        ..Default::default()
    };
    for (name, pilot) in [
        ("no pilot", None),
        (
            "pilot 3 maps @5%",
            Some(PilotSpec {
                tasks: 3,
                sampling_ratio: 0.05,
            }),
        ),
    ] {
        let spec = match pilot {
            None => ApproxSpec::target(0.05, 0.95),
            Some(p) => ApproxSpec::target(0.05, 0.95).with_pilot(p),
        };
        let r = approxhadoop_core::job::AggregationJob::sum(
            |v: &f64, emit: &mut dyn FnMut(u8, f64)| emit(0, *v),
        )
        .spec(spec)
        .config(config.clone())
        .run(&input)
        .expect("pilot job");
        println!(
            "{:>18}: {:>6} of {} records processed precisely-equivalent (ratio {:.2}), bound {:.2}%",
            name,
            r.metrics.sampled_records,
            r.metrics.total_records,
            r.metrics.effective_sampling_ratio(),
            r.outputs[0].1.relative_error() * 100.0
        );
    }
    println!("(the pilot replaces the mandatory precise wave with a 5% sample)");
}

fn main() {
    header(
        "Ablations",
        "Design-choice studies: t vs z quantiles, planning margin, freezing, pilot waves",
    );
    ablate_quantile();
    ablate_margin_and_freeze();
    ablate_pilot();
}
