//! Figure 10: departmental web-server log results — (a) hourly request
//! rates across a week, (b) hourly rates in descending order, (c) attack
//! frequencies per client — precise vs 10% input sampling.

use approxhadoop_bench::header;
use approxhadoop_core::spec::ApproxSpec;
use approxhadoop_runtime::engine::JobConfig;
use approxhadoop_workloads::apps;
use approxhadoop_workloads::deptlog::DeptLog;

fn main() {
    header(
        "Figure 10",
        "Departmental web-server log, precise vs 10% input sampling",
    );
    let log = DeptLog {
        weeks: 80,
        requests_per_week: 5_000,
        clients: 20_000,
        attack_fraction: 1e-3,
        seed: 10,
    };
    let config = JobConfig {
        reduce_tasks: 2,
        ..Default::default()
    };
    let spec = ApproxSpec::ratios(0.0, 0.10);

    // (a) Request rate per hour of the week (print every 12th hour).
    let precise = apps::dept_request_rate(&log, ApproxSpec::Precise, config.clone()).unwrap();
    let approx = apps::dept_request_rate(&log, spec, config.clone()).unwrap();
    println!("\n--- (a) Requests per hour-of-week (every 12th hour) ---");
    println!(
        "{:>5} | {:>9} | {:>20} | {:>7}",
        "hour", "precise", "approx (95% CI)", "err%"
    );
    for (hour, truth) in precise.outputs.iter().step_by(12) {
        if let Some((_, iv)) = approx.outputs.iter().find(|(h, _)| h == hour) {
            println!(
                "{:>5} | {:>9.0} | {:>10.0} ± {:>7.0} | {:>6.2}%",
                hour,
                truth.estimate,
                iv.estimate,
                iv.half_width,
                iv.actual_error(truth.estimate) * 100.0
            );
        }
    }

    // (b) Hourly rates in descending order: stable distribution.
    let mut sorted: Vec<f64> = precise.outputs.iter().map(|(_, iv)| iv.estimate).collect();
    sorted.sort_by(|a, b| b.total_cmp(a));
    println!("\n--- (b) Hourly rates, descending ---");
    println!(
        "max {:.0}, median {:.0}, min {:.0}  (spread {:.0}% — a stable distribution,\n\
         unlike the Zipf page popularity of Figure 5)",
        sorted[0],
        sorted[sorted.len() / 2],
        sorted[sorted.len() - 1],
        (sorted[0] / sorted[sorted.len() - 1] - 1.0) * 100.0
    );

    // (c) Attack frequencies: rare values, wide intervals.
    let precise = apps::attack_frequencies(&log, ApproxSpec::Precise, config.clone()).unwrap();
    let approx = apps::attack_frequencies(&log, spec, config).unwrap();
    println!("\n--- (c) Attacks per client (top attackers) ---");
    println!(
        "{:>8} | {:>9} | {:>20} | {:>7}",
        "client", "precise", "approx (95% CI)", "err%"
    );
    let mut top: Vec<_> = precise.outputs.iter().collect();
    top.sort_by(|a, b| b.1.estimate.total_cmp(&a.1.estimate));
    for (client, truth) in top.into_iter().take(8) {
        match approx.outputs.iter().find(|(c, _)| c == client) {
            Some((_, iv)) => println!(
                "{:>8} | {:>9.0} | {:>10.0} ± {:>7.0} | {:>6.1}%",
                client,
                truth.estimate,
                iv.estimate,
                iv.half_width,
                iv.actual_error(truth.estimate) * 100.0
            ),
            None => println!(
                "{:>8} | {:>9.0} | {:>20} |     n/a",
                client, truth.estimate, "(missed by sampling)"
            ),
        }
    }
    println!(
        "\nShape check (paper Fig. 10): request rates estimate tightly; attack counts\n\
         are rare values with visibly larger errors and wider intervals."
    );
}
