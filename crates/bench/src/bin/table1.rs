//! Table 1: the evaluated applications, their approximation mechanisms
//! and error-estimation approaches.

use approxhadoop_bench::header;
use approxhadoop_workloads::APPLICATIONS;

fn main() {
    header(
        "Table 1",
        "List of evaluated applications (S = sample input data, \
         D = drop computation, U = user-defined; MS = multi-stage, GEV)",
    );
    println!(
        "{:<20} {:<22} {:<14} {:^7} {:^5}",
        "Application", "Input data", "Size", "Approx.", "Err."
    );
    for app in APPLICATIONS {
        let mut mech = String::new();
        if app.mechanisms.sampling {
            mech.push('S');
        }
        if app.mechanisms.dropping {
            mech.push('D');
        }
        if app.mechanisms.user_defined {
            mech.push('U');
        }
        println!(
            "{:<20} {:<22} {:<14} {:^7} {:^5}",
            app.name,
            app.input,
            app.paper_size,
            mech,
            app.error.to_string()
        );
    }
}
