//! Shuffle fast-path benchmark: map-side combining on vs off.
//!
//! Runs two raw-pair workloads through the real engine — word count
//! (`(word, 1)` folded by [`SumCombiner`]) and a log-ratio aggregation
//! (`(server, (bytes, 1))` folded by [`PairSumCombiner`]) — first with
//! combining disabled, then enabled, and reports shuffle volume
//! (pre-/post-combine pairs, approximate bytes), throughput
//! (records/s), and p50/p99 map task times.
//!
//! The approximation templates (`MultiStageMapper`, `RatioMapper`)
//! already ship one statistic per key per task, so they gain nothing
//! here — this benchmark exercises the raw-emission path those
//! templates bypass.
//!
//! Human-readable narration goes to stdout; one JSON document lands in
//! `BENCH_shuffle.json` (or `--out PATH`).
//!
//! ```text
//! shuffle [--smoke] [--check] [--out PATH]
//! ```
//!
//! * `--smoke` shrinks the datasets for CI;
//! * `--check` exits non-zero unless combining cut wordcount shuffle
//!   pairs by ≥10× and both variants agreed on every output.

use approxhadoop_bench::{header, reps, timed, Summary};
use approxhadoop_runtime::combine::{Combined, PairSumCombiner, SumCombiner};
use approxhadoop_runtime::engine::{run_job, JobConfig};
use approxhadoop_runtime::input::VecSource;
use approxhadoop_runtime::mapper::FnMapper;
use approxhadoop_runtime::metrics::JobMetrics;
use approxhadoop_runtime::reducer::GroupedReducer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Measurements of one engine variant (combining on or off).
#[derive(Debug, Clone, Copy, serde::Serialize)]
struct VariantReport {
    combining: bool,
    wall_secs_mean: f64,
    wall_secs_min: f64,
    records_per_sec: f64,
    emitted_pairs: u64,
    shuffled_pairs: u64,
    approx_shuffled_bytes: u64,
    map_p50_secs: f64,
    map_p99_secs: f64,
}

/// Side-by-side comparison for one workload.
#[derive(Debug, Clone, serde::Serialize)]
struct WorkloadReport {
    name: String,
    records: u64,
    uncombined: VariantReport,
    combined: VariantReport,
    /// `emitted / shuffled` of the combined run.
    pair_reduction: f64,
    /// Uncombined mean wall over combined mean wall.
    speedup: f64,
    /// Whether both variants produced the same reduce outputs.
    outputs_match: bool,
}

#[derive(Debug, Clone, serde::Serialize)]
struct Report {
    reps: usize,
    smoke: bool,
    workloads: Vec<WorkloadReport>,
}

/// Zipf-ish text corpus: frequent words dominate, so per-task
/// combining collapses many `(word, 1)` pairs per key.
fn wordcount_corpus(blocks: usize, lines: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..blocks)
        .map(|_| {
            (0..lines)
                .map(|_| {
                    let n = rng.gen_range(6..12);
                    (0..n)
                        .map(|_| {
                            let u: f64 = rng.gen();
                            format!("w{}", (u * u * 800.0) as u32)
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect()
        })
        .collect()
}

/// Synthetic access log: `(server, response_bytes)` per request.
fn log_corpus(blocks: usize, entries: usize, seed: u64) -> Vec<Vec<(u32, f64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..blocks)
        .map(|_| {
            (0..entries)
                .map(|_| (rng.gen_range(0..64u32), rng.gen_range(200.0..20_000.0)))
                .collect()
        })
        .collect()
}

/// p-th percentile (0–100) of an unsorted sample.
fn percentile(values: &mut [f64], p: usize) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(f64::total_cmp);
    values[(values.len() * p / 100).min(values.len() - 1)]
}

fn variant_report(
    combining: bool,
    walls: &[f64],
    metrics: &JobMetrics,
    task_secs: &mut [f64],
    bytes_per_pair: f64,
) -> VariantReport {
    let wall = Summary::of(walls);
    VariantReport {
        combining,
        wall_secs_mean: wall.mean,
        wall_secs_min: wall.min,
        records_per_sec: metrics.total_records as f64 / wall.mean,
        emitted_pairs: metrics.emitted_pairs,
        shuffled_pairs: metrics.shuffled_pairs,
        approx_shuffled_bytes: (metrics.shuffled_pairs as f64 * bytes_per_pair) as u64,
        map_p50_secs: percentile(task_secs, 50),
        map_p99_secs: percentile(task_secs, 99),
    }
}

/// Runs one workload `reps` times per variant via `run(combining, seed)`
/// and assembles the comparison row.
fn bench_workload<O: PartialEq>(
    name: &str,
    bytes_per_pair: f64,
    mut run: impl FnMut(bool, u64) -> (f64, JobMetrics, Vec<O>),
) -> WorkloadReport {
    let mut variants = Vec::new();
    let mut outputs: Vec<Vec<O>> = Vec::new();
    for combining in [false, true] {
        let mut walls = Vec::new();
        let mut task_secs = Vec::new();
        let mut last = None;
        for seed in 0..reps() as u64 {
            let (secs, metrics, out) = run(combining, seed);
            walls.push(secs);
            task_secs.extend(metrics.map_stats.iter().map(|s| s.duration_secs));
            last = Some((metrics, out));
        }
        let (metrics, out) = last.expect("at least one rep");
        variants.push(variant_report(
            combining,
            &walls,
            &metrics,
            &mut task_secs,
            bytes_per_pair,
        ));
        outputs.push(out);
    }
    let (uncombined, combined) = (variants[0], variants[1]);
    WorkloadReport {
        name: name.to_string(),
        records: run(true, 0).1.total_records,
        uncombined,
        combined,
        pair_reduction: combined.emitted_pairs as f64 / combined.shuffled_pairs.max(1) as f64,
        speedup: uncombined.wall_secs_mean / combined.wall_secs_mean,
        outputs_match: outputs[0] == outputs[1],
    }
}

fn run_wordcount(
    blocks: &[Vec<String>],
    combining: bool,
    seed: u64,
) -> (f64, JobMetrics, Vec<(String, u64)>) {
    let input = VecSource::new(blocks.to_vec());
    let mapper = Combined::new(
        FnMapper::new(|line: &String, emit: &mut dyn FnMut(String, u64)| {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        }),
        SumCombiner,
    );
    let (secs, result) = timed(|| {
        run_job(
            &input,
            &mapper,
            |_| {
                GroupedReducer::new(|k: &String, vs: &[u64]| {
                    Some((k.clone(), vs.iter().sum::<u64>()))
                })
            },
            JobConfig {
                combining,
                reduce_tasks: 4,
                seed,
                ..Default::default()
            },
        )
        .expect("wordcount job")
    });
    let mut outputs = result.outputs;
    outputs.sort();
    (secs, result.metrics, outputs)
}

/// One log-ratio output row: `(server, (Σbytes, Σreqs))`, rounded to
/// integers so the float fold order (which combining legitimately
/// changes) cannot fail the equality check.
type RatioRow = (u32, (u64, u64));

fn run_logratio(
    blocks: &[Vec<(u32, f64)>],
    combining: bool,
    seed: u64,
) -> (f64, JobMetrics, Vec<RatioRow>) {
    let input = VecSource::new(blocks.to_vec());
    let mapper = Combined::new(
        FnMapper::new(|r: &(u32, f64), emit: &mut dyn FnMut(u32, (f64, f64))| {
            emit(r.0, (r.1, 1.0));
        }),
        PairSumCombiner,
    );
    let (secs, result) = timed(|| {
        run_job(
            &input,
            &mapper,
            |_| {
                GroupedReducer::new(|k: &u32, vs: &[(f64, f64)]| {
                    let y: f64 = vs.iter().map(|p| p.0).sum();
                    let x: f64 = vs.iter().map(|p| p.1).sum();
                    Some((*k, (y.round() as u64, x.round() as u64)))
                })
            },
            JobConfig {
                combining,
                reduce_tasks: 4,
                seed,
                ..Default::default()
            },
        )
        .expect("log-ratio job")
    });
    let mut outputs = result.outputs;
    outputs.sort();
    (secs, result.metrics, outputs)
}

fn print_row(name: &str, v: &VariantReport) {
    println!(
        "{:>10} {:>9} | {:>9.3} | {:>11.0} | {:>12} | {:>12} | {:>9.4} | {:>9.4}",
        name,
        if v.combining { "+combine" } else { "-combine" },
        v.wall_secs_mean,
        v.records_per_sec,
        v.emitted_pairs,
        v.shuffled_pairs,
        v.map_p50_secs,
        v.map_p99_secs,
    );
}

fn main() {
    let mut smoke = false;
    let mut check = false;
    let mut out = "BENCH_shuffle.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("error: missing value for --out");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown option `{other}` (expected --smoke/--check/--out)");
                std::process::exit(2);
            }
        }
    }

    header(
        "Shuffle",
        "Map-side combining: shuffle volume and throughput, combining off vs on",
    );
    let (wc_blocks, wc_lines, lr_blocks, lr_entries) = if smoke {
        (8, 150, 8, 300)
    } else {
        (32, 6000, 32, 20_000)
    };

    let corpus = wordcount_corpus(wc_blocks, wc_lines, 42);
    let word_bytes: usize = corpus
        .iter()
        .flatten()
        .map(|l| l.split_whitespace().map(str::len).sum::<usize>())
        .sum();
    let words: usize = corpus
        .iter()
        .flatten()
        .map(|l| l.split_whitespace().count())
        .sum();
    // Approximate wire size: key bytes + 8-byte count.
    let wc_pair_bytes = word_bytes as f64 / words.max(1) as f64 + 8.0;
    let logs = log_corpus(lr_blocks, lr_entries, 43);

    println!(
        "{:>10} {:>9} | {:>9} | {:>11} | {:>12} | {:>12} | {:>9} | {:>9}",
        "workload", "variant", "wall(s)", "records/s", "emitted", "shuffled", "p50 map", "p99 map"
    );
    let reports = vec![
        bench_workload("wordcount", wc_pair_bytes, |combining, seed| {
            run_wordcount(&corpus, combining, seed)
        }),
        // Key (4 B) + two f64 components.
        bench_workload("log-ratio", 20.0, |combining, seed| {
            run_logratio(&logs, combining, seed)
        }),
    ];
    for w in &reports {
        print_row(&w.name, &w.uncombined);
        print_row(&w.name, &w.combined);
        println!(
            "{:>20} | pairs ÷{:.1}, bytes ÷{:.1}, speedup {:.2}x, outputs match: {}",
            w.name,
            w.pair_reduction,
            w.uncombined.approx_shuffled_bytes as f64
                / w.combined.approx_shuffled_bytes.max(1) as f64,
            w.speedup,
            w.outputs_match,
        );
    }

    let report = Report {
        reps: reps(),
        smoke,
        workloads: reports,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write benchmark report");
    println!("wrote {out}");

    if check {
        let mut failures = Vec::new();
        for w in &report.workloads {
            if !w.outputs_match {
                failures.push(format!(
                    "{}: combined and uncombined outputs differ",
                    w.name
                ));
            }
            if w.combined.shuffled_pairs >= w.uncombined.shuffled_pairs {
                failures.push(format!(
                    "{}: combining did not shrink the shuffle ({} vs {})",
                    w.name, w.combined.shuffled_pairs, w.uncombined.shuffled_pairs
                ));
            }
        }
        // The ≥10× gate needs the full-size corpus; smoke blocks are
        // too small for per-task key collapse to reach it.
        let wc = &report.workloads[0];
        if !report.smoke && wc.pair_reduction < 10.0 {
            failures.push(format!(
                "wordcount pair reduction {:.1}x below the 10x gate",
                wc.pair_reduction
            ));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        println!("all checks passed");
    }
}
