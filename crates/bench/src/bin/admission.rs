//! Admission-controller hot-path micro-benchmark.
//!
//! The controller recomputes p99 over its latency window under a mutex
//! on **every** job completion. The original implementation cloned and
//! sorted the whole window each time (O(n log n) per completion); the
//! controller now maintains an incrementally sorted mirror
//! (binary-search insert/remove, O(n) memmove worst case, O(1) reads).
//! This bench measures both strategies head to head across window
//! sizes, plus the full `on_job_complete` update through the real
//! controller, and emits one JSON document.
//!
//! ```text
//! admission [--smoke] [--check] [--out PATH]
//! ```
//!
//! * `--smoke` shrinks the sample count for CI;
//! * `--check` exits non-zero unless the incremental window beats
//!   clone-and-sort at every window size.

use std::collections::VecDeque;

use approxhadoop_bench::{header, timed};
use approxhadoop_server::admission::{percentile, AdmissionConfig, AdmissionController};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One strategy's cost at one window size.
#[derive(Debug, Clone, Copy, serde::Serialize)]
struct StrategyReport {
    window: usize,
    ns_per_completion: f64,
    /// p99 after the full stream (equality across strategies is the
    /// correctness check).
    final_p99: f64,
}

#[derive(Debug, Clone, serde::Serialize)]
struct SizeReport {
    window: usize,
    clone_sort: StrategyReport,
    incremental: StrategyReport,
    /// Full controller update (lock + window + feedback law + degrade).
    controller_update: StrategyReport,
    /// `clone_sort / incremental` time ratio.
    speedup: f64,
}

#[derive(Debug, Clone, serde::Serialize)]
struct Report {
    samples: usize,
    smoke: bool,
    sizes: Vec<SizeReport>,
}

fn latency_stream(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let base: f64 = rng.gen::<f64>() * 0.4;
            // Occasional tail samples keep the upper ranks moving.
            if i % 37 == 0 {
                base + rng.gen::<f64>() * 4.0
            } else {
                base
            }
        })
        .collect()
}

/// The original hot path: clone + sort the whole window per completion.
fn run_clone_sort(stream: &[f64], window: usize) -> StrategyReport {
    let mut fifo: VecDeque<f64> = VecDeque::with_capacity(window + 1);
    let mut last = 0.0;
    let (secs, ()) = timed(|| {
        for &v in stream {
            fifo.push_back(v);
            while fifo.len() > window {
                fifo.pop_front();
            }
            last = percentile(fifo.make_contiguous(), 0.99).unwrap_or(0.0);
        }
    });
    StrategyReport {
        window,
        ns_per_completion: secs * 1e9 / stream.len() as f64,
        final_p99: last,
    }
}

/// The new hot path: FIFO plus an incrementally maintained sorted
/// mirror (the same structure `AdmissionController` uses internally).
fn run_incremental(stream: &[f64], window: usize) -> StrategyReport {
    let mut fifo: VecDeque<f64> = VecDeque::with_capacity(window + 1);
    let mut sorted: Vec<f64> = Vec::with_capacity(window + 1);
    let mut last = 0.0;
    let (secs, ()) = timed(|| {
        for &v in stream {
            fifo.push_back(v);
            let at = sorted.partition_point(|x| *x < v);
            sorted.insert(at, v);
            while fifo.len() > window {
                let old = fifo.pop_front().expect("non-empty");
                let at = sorted.partition_point(|x| *x < old);
                sorted.remove(at);
            }
            let rank = ((0.99 * sorted.len() as f64).ceil() as usize).max(1);
            last = sorted[rank - 1];
        }
    });
    StrategyReport {
        window,
        ns_per_completion: secs * 1e9 / stream.len() as f64,
        final_p99: last,
    }
}

/// The real controller end to end (mutex, window, feedback law).
fn run_controller(stream: &[f64], window: usize) -> StrategyReport {
    let c = AdmissionController::new(AdmissionConfig {
        window,
        p99_target_secs: 0.5,
        ..Default::default()
    });
    let (secs, ()) = timed(|| {
        for &v in stream {
            c.on_job_complete(v, 0);
        }
    });
    StrategyReport {
        window,
        ns_per_completion: secs * 1e9 / stream.len() as f64,
        final_p99: c.p99().unwrap_or(0.0),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_admission.json".to_string());

    let samples = if smoke { 20_000 } else { 200_000 };
    let stream = latency_stream(samples, 42);

    header(
        "admission",
        "p99-window maintenance: clone-and-sort vs incrementally sorted",
    );
    println!(
        "{:>8} {:>16} {:>16} {:>16} {:>9}",
        "window", "clone+sort ns", "incremental ns", "controller ns", "speedup"
    );

    let mut sizes = Vec::new();
    let mut all_faster = true;
    for window in [64usize, 256, 1024] {
        let clone_sort = run_clone_sort(&stream, window);
        let incremental = run_incremental(&stream, window);
        let controller_update = run_controller(&stream, window);
        assert_eq!(
            clone_sort.final_p99, incremental.final_p99,
            "strategies disagree on p99 at window {window}"
        );
        let speedup = clone_sort.ns_per_completion / incremental.ns_per_completion.max(1e-9);
        all_faster &= speedup > 1.0;
        println!(
            "{:>8} {:>16.1} {:>16.1} {:>16.1} {:>8.2}x",
            window,
            clone_sort.ns_per_completion,
            incremental.ns_per_completion,
            controller_update.ns_per_completion,
            speedup
        );
        sizes.push(SizeReport {
            window,
            clone_sort,
            incremental,
            controller_update,
            speedup,
        });
    }

    let report = Report {
        samples,
        smoke,
        sizes,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write report");
    println!("wrote {out}");
    if check && !all_faster {
        eprintln!("FAIL: incremental window slower than clone-and-sort");
        std::process::exit(1);
    }
}
