//! Load-generator harness over the multi-tenant job service.
//!
//! Fires a Poisson open-loop arrival stream of aggregation jobs at a
//! [`approxhadoop_server::JobService`] twice — admission controller off
//! (baseline) then on — and emits one JSON document comparing the two:
//! throughput, p50/p99 latency, peak concurrency, per-job achieved
//! error bounds, and every degradation decision.
//!
//! With `--find-max-tps` the harness searches instead of replaying: a
//! saturation-seeking hill-climb of the arrival rate to the maximum
//! sustainable TPS at a stated SLO (see
//! [`approxhadoop_server::loadgen::find_max_tps`]), emitting a
//! `SaturationReport` JSON document and exiting 1 if no stable
//! operating point exists.
//!
//! ```text
//! loadgen [--slots N] [--jobs N] [--rate JOBS_PER_SEC]
//!         [--blocks N] [--entries N] [--max-drop R] [--min-sample R]
//!         [--p99-target SECS] [--controller aimd|slo] [--slo-bound B]
//!         [--seed N]
//!         [--find-max-tps [--slo-p99 SECS] [--slo-tolerance F]
//!          [--start-rate R] [--jobs-per-step N] [--max-steps N]
//!          [--precision F] [--smoke]]
//! ```

use approxhadoop_server::loadgen::{find_max_tps, run, LoadConfig, SatConfig};

struct SearchArgs {
    enabled: bool,
    smoke: bool,
    slo_p99: Option<f64>,
    slo_tolerance: Option<f64>,
    start_rate: Option<f64>,
    jobs_per_step: Option<usize>,
    max_steps: Option<usize>,
    precision: Option<f64>,
}

fn parse_args(config: &mut LoadConfig, search: &mut SearchArgs) -> Result<(), String> {
    let mut it = std::env::args().skip(1);
    while let Some(key) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("missing value for {key}"));
        match key.as_str() {
            "--slots" => config.slots = value()?.parse().map_err(|e| format!("--slots: {e}"))?,
            "--jobs" => config.jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--rate" => {
                config.arrival_rate = value()?.parse().map_err(|e| format!("--rate: {e}"))?
            }
            "--blocks" => {
                config.blocks_per_job = value()?.parse().map_err(|e| format!("--blocks: {e}"))?
            }
            "--entries" => {
                config.entries_per_block =
                    value()?.parse().map_err(|e| format!("--entries: {e}"))?
            }
            "--max-drop" => {
                config.max_drop_ratio = value()?.parse().map_err(|e| format!("--max-drop: {e}"))?
            }
            "--min-sample" => {
                config.min_sampling_ratio =
                    value()?.parse().map_err(|e| format!("--min-sample: {e}"))?
            }
            "--p99-target" => {
                config.p99_target_secs =
                    value()?.parse().map_err(|e| format!("--p99-target: {e}"))?
            }
            "--controller" => {
                config.mode = value()?.parse()?;
            }
            "--slo-bound" => {
                config.max_relative_bound =
                    Some(value()?.parse().map_err(|e| format!("--slo-bound: {e}"))?)
            }
            "--seed" => config.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--find-max-tps" => search.enabled = true,
            "--smoke" => search.smoke = true,
            "--slo-p99" => {
                search.slo_p99 = Some(value()?.parse().map_err(|e| format!("--slo-p99: {e}"))?)
            }
            "--slo-tolerance" => {
                search.slo_tolerance = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--slo-tolerance: {e}"))?,
                )
            }
            "--start-rate" => {
                search.start_rate =
                    Some(value()?.parse().map_err(|e| format!("--start-rate: {e}"))?)
            }
            "--jobs-per-step" => {
                search.jobs_per_step = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--jobs-per-step: {e}"))?,
                )
            }
            "--max-steps" => {
                search.max_steps = Some(value()?.parse().map_err(|e| format!("--max-steps: {e}"))?)
            }
            "--precision" => {
                search.precision = Some(value()?.parse().map_err(|e| format!("--precision: {e}"))?)
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(())
}

fn saturation_search(config: LoadConfig, search: &SearchArgs) -> ! {
    let mut sat = SatConfig {
        base: config,
        ..Default::default()
    };
    if search.smoke {
        sat.base.blocks_per_job = 6;
        sat.base.entries_per_block = 200;
        sat.jobs_per_step = 6;
        sat.max_steps = 7;
    }
    sat.slo.p99_secs = search.slo_p99.unwrap_or(sat.base.p99_target_secs);
    sat.slo.max_relative_bound = sat.base.max_relative_bound;
    if let Some(v) = search.slo_tolerance {
        sat.slo.violation_tolerance = v;
    }
    if let Some(v) = search.start_rate {
        sat.start_rate = v;
    }
    if let Some(v) = search.jobs_per_step {
        sat.jobs_per_step = v;
    }
    if let Some(v) = search.max_steps {
        sat.max_steps = v;
    }
    if let Some(v) = search.precision {
        sat.precision = v;
    }
    eprintln!(
        "# Saturation search: SLO p99<={}s, ramp from {}/s, {} jobs/step, {} steps max",
        sat.slo.p99_secs, sat.start_rate, sat.jobs_per_step, sat.max_steps
    );
    let report = find_max_tps(&sat);
    for step in &report.steps {
        eprintln!(
            "# [{:?}] offered {:.2}/s achieved {:.2}/s p99 {:.3}s -> {}",
            step.phase,
            step.offered_rate,
            step.achieved_rate,
            step.p99_latency_secs,
            if step.slo_met { "PASS" } else { "FAIL" }
        );
    }
    eprintln!(
        "# knee {:.2} jobs/s (max sustainable TPS {:.2}), converged={}, generator_saturated={}",
        report.knee_rate, report.max_sustainable_tps, report.converged, report.generator_saturated
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    std::process::exit(if report.converged { 0 } else { 1 });
}

fn main() {
    let mut config = LoadConfig::default();
    let mut search = SearchArgs {
        enabled: false,
        smoke: false,
        slo_p99: None,
        slo_tolerance: None,
        start_rate: None,
        jobs_per_step: None,
        max_steps: None,
        precision: None,
    };
    if let Err(e) = parse_args(&mut config, &mut search) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    if search.enabled {
        saturation_search(config, &search);
    }
    // Narration goes to stderr; stdout carries exactly one JSON document.
    eprintln!(
        "# Loadgen: open-loop Poisson load on the shared-pool job service, controller off vs on"
    );
    eprintln!(
        "# {} jobs at {}/s over {} slots; {} maps x {} entries per job",
        config.jobs,
        config.arrival_rate,
        config.slots,
        config.blocks_per_job,
        config.entries_per_block,
    );
    let report = run(&config);
    eprintln!(
        "# baseline : p50 {:.3}s  p99 {:.3}s  thru {:.2}/s  peak {} in flight",
        report.baseline.p50_latency_secs,
        report.baseline.p99_latency_secs,
        report.baseline.throughput_jobs_per_sec,
        report.baseline.peak_concurrency,
    );
    eprintln!(
        "# controlled: p50 {:.3}s  p99 {:.3}s  thru {:.2}/s  peak {} in flight  ({} degradations)",
        report.controlled.p50_latency_secs,
        report.controlled.p99_latency_secs,
        report.controlled.throughput_jobs_per_sec,
        report.controlled.peak_concurrency,
        report
            .controlled
            .decisions
            .iter()
            .filter(|d| d.degrade > 0.0)
            .count(),
    );
    eprintln!(
        "# p99 improvement: {:.3}s ({:.2}x)",
        report.p99_improvement_secs, report.p99_speedup
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
}
