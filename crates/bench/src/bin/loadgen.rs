//! Load-generator harness over the multi-tenant job service.
//!
//! Fires a Poisson open-loop arrival stream of aggregation jobs at a
//! [`approxhadoop_server::JobService`] twice — admission controller off
//! (baseline) then on — and emits one JSON document comparing the two:
//! throughput, p50/p99 latency, peak concurrency, per-job achieved
//! error bounds, and every degradation decision.
//!
//! ```text
//! loadgen [--slots N] [--jobs N] [--rate JOBS_PER_SEC]
//!         [--blocks N] [--entries N] [--max-drop R] [--min-sample R]
//!         [--p99-target SECS] [--seed N]
//! ```

use approxhadoop_server::loadgen::{run, LoadConfig};

fn parse_args(config: &mut LoadConfig) -> Result<(), String> {
    let mut it = std::env::args().skip(1);
    while let Some(key) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("missing value for {key}"));
        match key.as_str() {
            "--slots" => config.slots = value()?.parse().map_err(|e| format!("--slots: {e}"))?,
            "--jobs" => config.jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--rate" => {
                config.arrival_rate = value()?.parse().map_err(|e| format!("--rate: {e}"))?
            }
            "--blocks" => {
                config.blocks_per_job = value()?.parse().map_err(|e| format!("--blocks: {e}"))?
            }
            "--entries" => {
                config.entries_per_block =
                    value()?.parse().map_err(|e| format!("--entries: {e}"))?
            }
            "--max-drop" => {
                config.max_drop_ratio = value()?.parse().map_err(|e| format!("--max-drop: {e}"))?
            }
            "--min-sample" => {
                config.min_sampling_ratio =
                    value()?.parse().map_err(|e| format!("--min-sample: {e}"))?
            }
            "--p99-target" => {
                config.p99_target_secs =
                    value()?.parse().map_err(|e| format!("--p99-target: {e}"))?
            }
            "--seed" => config.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(())
}

fn main() {
    let mut config = LoadConfig::default();
    if let Err(e) = parse_args(&mut config) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    // Narration goes to stderr; stdout carries exactly one JSON document.
    eprintln!(
        "# Loadgen: open-loop Poisson load on the shared-pool job service, controller off vs on"
    );
    eprintln!(
        "# {} jobs at {}/s over {} slots; {} maps x {} entries per job",
        config.jobs,
        config.arrival_rate,
        config.slots,
        config.blocks_per_job,
        config.entries_per_block,
    );
    let report = run(&config);
    eprintln!(
        "# baseline : p50 {:.3}s  p99 {:.3}s  thru {:.2}/s  peak {} in flight",
        report.baseline.p50_latency_secs,
        report.baseline.p99_latency_secs,
        report.baseline.throughput_jobs_per_sec,
        report.baseline.peak_concurrency,
    );
    eprintln!(
        "# controlled: p50 {:.3}s  p99 {:.3}s  thru {:.2}/s  peak {} in flight  ({} degradations)",
        report.controlled.p50_latency_secs,
        report.controlled.p99_latency_secs,
        report.controlled.throughput_jobs_per_sec,
        report.controlled.peak_concurrency,
        report
            .controlled
            .decisions
            .iter()
            .filter(|d| d.degrade > 0.0)
            .count(),
    );
    eprintln!(
        "# p99 improvement: {:.3}s ({:.2}x)",
        report.p99_improvement_secs, report.p99_speedup
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
}
