//! Hot-path throughput benchmark: records/s on the map/shuffle/reduce
//! per-record path, across input scales.
//!
//! Runs the wordcount workload through the real engine at three input
//! scales, crossing `{raw, combined}` (map-side combining off/on) with
//! `{precise, sampled}` (sampling ratio 1.0 / 0.25), and reports
//! records/s per cell. This is the regression harness for the raw-speed
//! work on the per-record path: the Fx partitioner, the hash-fold
//! combine table, the reused map buffers, and the parallel reduce
//! drain all show up here or nowhere.
//!
//! Human-readable narration goes to stdout; one JSON document lands in
//! `BENCH_hotpath.json` (or `--out PATH`).
//!
//! ```text
//! hotpath [--smoke] [--check] [--out PATH] [--baseline PATH]
//! ```
//!
//! * `--smoke` shrinks the datasets for CI;
//! * `--check` exits non-zero unless raw/combined outputs agree on
//!   every scale and combining shrinks the shuffle;
//! * `--baseline PATH` compares each scale's aggregate best-of-reps
//!   records/s against a previously written report and exits non-zero
//!   on any scale more than 20% slower than the baseline.

use approxhadoop_bench::{header, reps, timed, Summary};
use approxhadoop_runtime::combine::{Combined, SumCombiner};
use approxhadoop_runtime::engine::{run_job, JobConfig};
use approxhadoop_runtime::input::VecSource;
use approxhadoop_runtime::mapper::FnMapper;
use approxhadoop_runtime::reducer::GroupedReducer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fractional slowdown per cell tolerated against the baseline.
const BASELINE_TOLERANCE: f64 = 0.20;

/// One (combining × sampling) cell of a scale.
#[derive(Debug, Clone, Copy, serde::Serialize)]
struct CellReport {
    combining: bool,
    sampling_ratio: f64,
    wall_secs_mean: f64,
    wall_secs_min: f64,
    /// Input records the maps actually processed (= total records at
    /// ratio 1.0; the sampled subset otherwise).
    processed_records: u64,
    /// `processed_records / wall_secs_mean`.
    records_per_sec: f64,
    /// `processed_records / wall_secs_min` — best of the reps. The
    /// baseline gate compares this, not the mean: the best rep tracks
    /// the code's actual speed, while the mean also absorbs scheduler
    /// noise that would make a 20% gate flaky.
    records_per_sec_best: f64,
    emitted_pairs: u64,
    shuffled_pairs: u64,
}

/// All four cells of one input scale.
#[derive(Debug, Clone, serde::Serialize)]
struct ScaleReport {
    name: String,
    blocks: usize,
    lines_per_block: usize,
    total_records: u64,
    cells: Vec<CellReport>,
    /// Records processed across all four cells over the summed
    /// best-rep walls — the value the baseline gate compares. One cell
    /// of a one-core box is a few milliseconds of multi-threaded work
    /// and can swing past any sane tolerance on scheduler noise alone;
    /// the per-scale aggregate is stable, and a real per-record
    /// regression slows every cell, so the aggregate still catches it.
    aggregate_records_per_sec_best: f64,
    /// Raw and combined precise runs produced identical reduce outputs.
    outputs_match: bool,
}

#[derive(Debug, Clone, serde::Serialize)]
struct Report {
    reps: usize,
    smoke: bool,
    scales: Vec<ScaleReport>,
}

/// Zipf-ish text corpus (same generator shape as the shuffle bench):
/// frequent words dominate, so combining has keys to collapse.
fn wordcount_corpus(blocks: usize, lines: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..blocks)
        .map(|_| {
            (0..lines)
                .map(|_| {
                    let n = rng.gen_range(6..12);
                    (0..n)
                        .map(|_| {
                            let u: f64 = rng.gen();
                            format!("w{}", (u * u * 800.0) as u32)
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect()
        })
        .collect()
}

/// One wordcount run; returns `(wall, processed, emitted, shuffled,
/// sorted outputs)`.
fn run_wordcount(
    input: &VecSource<String>,
    combining: bool,
    sampling_ratio: f64,
    seed: u64,
) -> (f64, u64, u64, u64, Vec<(String, u64)>) {
    let mapper = Combined::new(
        FnMapper::new(|line: &String, emit: &mut dyn FnMut(String, u64)| {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        }),
        SumCombiner,
    );
    let (secs, result) = timed(|| {
        run_job(
            input,
            &mapper,
            |_| {
                GroupedReducer::new(|k: &String, vs: &[u64]| {
                    Some((k.clone(), vs.iter().sum::<u64>()))
                })
            },
            JobConfig {
                combining,
                sampling_ratio,
                reduce_tasks: 4,
                seed,
                ..Default::default()
            },
        )
        .expect("wordcount job")
    });
    let processed: u64 = result
        .metrics
        .map_stats
        .iter()
        .map(|s| s.sampled_records)
        .sum();
    let mut outputs = result.outputs;
    outputs.sort();
    (
        secs,
        processed,
        result.metrics.emitted_pairs,
        result.metrics.shuffled_pairs,
        outputs,
    )
}

fn bench_cell(
    input: &VecSource<String>,
    combining: bool,
    ratio: f64,
) -> (CellReport, Vec<(String, u64)>) {
    let mut walls = Vec::new();
    let mut last = None;
    for seed in 0..reps() as u64 {
        let (secs, processed, emitted, shuffled, out) =
            run_wordcount(input, combining, ratio, seed);
        walls.push(secs);
        last = Some((processed, emitted, shuffled, out));
    }
    let (processed, emitted, shuffled, out) = last.expect("at least one rep");
    let wall = Summary::of(&walls);
    (
        CellReport {
            combining,
            sampling_ratio: ratio,
            wall_secs_mean: wall.mean,
            wall_secs_min: wall.min,
            processed_records: processed,
            records_per_sec: processed as f64 / wall.mean,
            records_per_sec_best: processed as f64 / wall.min,
            emitted_pairs: emitted,
            shuffled_pairs: shuffled,
        },
        out,
    )
}

fn bench_scale(name: &str, blocks: usize, lines: usize) -> ScaleReport {
    let corpus = wordcount_corpus(blocks, lines, 42);
    let total_records: u64 = corpus.iter().map(|b| b.len() as u64).sum();
    let input = VecSource::new(corpus);
    let mut cells = Vec::new();
    let mut precise_outputs: Vec<Vec<(String, u64)>> = Vec::new();
    for combining in [false, true] {
        for ratio in [1.0, 0.25] {
            let (cell, out) = bench_cell(&input, combining, ratio);
            print_cell(name, &cell);
            if ratio >= 1.0 {
                precise_outputs.push(out);
            }
            cells.push(cell);
        }
    }
    let processed: u64 = cells.iter().map(|c| c.processed_records).sum();
    let best_walls: f64 = cells.iter().map(|c| c.wall_secs_min).sum();
    ScaleReport {
        name: name.to_string(),
        blocks,
        lines_per_block: lines,
        total_records,
        cells,
        aggregate_records_per_sec_best: processed as f64 / best_walls,
        outputs_match: precise_outputs[0] == precise_outputs[1],
    }
}

fn print_cell(scale: &str, c: &CellReport) {
    println!(
        "{:>8} {:>9} {:>8} | {:>9.3} | {:>11.0} | {:>12} | {:>12}",
        scale,
        if c.combining { "+combine" } else { "-combine" },
        if c.sampling_ratio >= 1.0 {
            "precise"
        } else {
            "sampled"
        },
        c.wall_secs_mean,
        c.records_per_sec,
        c.emitted_pairs,
        c.shuffled_pairs,
    );
}

/// Extracts every `(scale key, aggregate records/s)` pair from a
/// previously written report, parsed with the in-tree JSON reader (the
/// serde shim is write-only).
fn baseline_scales(
    doc: &approxhadoop_obs::json::Value,
) -> Option<std::collections::BTreeMap<(String, usize, usize), f64>> {
    let mut scales = std::collections::BTreeMap::new();
    for scale in doc.get("scales")?.as_array()? {
        let name = scale.get("name")?.as_str()?.to_string();
        let blocks = scale.get("blocks")?.as_f64()? as usize;
        let lines = scale.get("lines_per_block")?.as_f64()? as usize;
        let rps = scale.get("aggregate_records_per_sec_best")?.as_f64()?;
        scales.insert((name, blocks, lines), rps);
    }
    Some(scales)
}

/// Compares `report` against the baseline at `path`; returns the list
/// of regressions (empty = pass). Scales are matched by name *and*
/// geometry, so a smoke run silently skips a full baseline's scales
/// (and an all-skip comparison is an error, not a pass).
fn compare_baseline(report: &Report, path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = approxhadoop_obs::json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let base_scales =
        baseline_scales(&doc).ok_or_else(|| format!("{path} is not a hotpath report"))?;
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for s in &report.scales {
        let key = (s.name.clone(), s.blocks, s.lines_per_block);
        let Some(&base) = base_scales.get(&key) else {
            continue;
        };
        compared += 1;
        let floor = base * (1.0 - BASELINE_TOLERANCE);
        if s.aggregate_records_per_sec_best < floor {
            failures.push(format!(
                "{}: {:.0} records/s aggregate is >{:.0}% below baseline {:.0}",
                s.name,
                s.aggregate_records_per_sec_best,
                BASELINE_TOLERANCE * 100.0,
                base,
            ));
        }
    }
    if compared == 0 {
        return Err(format!(
            "baseline {path} has no scales matching this run \
             (smoke vs full mismatch?)"
        ));
    }
    Ok(failures)
}

fn main() {
    let mut smoke = false;
    let mut check = false;
    let mut out = "BENCH_hotpath.json".to_string();
    let mut baseline: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("error: missing value for --out");
                    std::process::exit(2);
                }
            },
            "--baseline" => match it.next() {
                Some(path) => baseline = Some(path),
                None => {
                    eprintln!("error: missing value for --baseline");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "error: unknown option `{other}` (expected --smoke/--check/--out/--baseline)"
                );
                std::process::exit(2);
            }
        }
    }

    header(
        "Hot path",
        "Per-record throughput across scales: {raw, combined} x {precise, sampled 0.25}",
    );
    // Smoke scales are sized so the slowest cell still takes tens of
    // milliseconds — long enough that the baseline gate measures code
    // speed, not timer granularity.
    let scales: &[(&str, usize, usize)] = if smoke {
        &[
            ("small", 16, 4000),
            ("medium", 24, 5000),
            ("large", 32, 6000),
        ]
    } else {
        &[
            ("small", 8, 1500),
            ("medium", 16, 6000),
            ("large", 32, 12_000),
        ]
    };

    println!(
        "{:>8} {:>9} {:>8} | {:>9} | {:>11} | {:>12} | {:>12}",
        "scale", "variant", "mode", "wall(s)", "records/s", "emitted", "shuffled"
    );
    let reports: Vec<ScaleReport> = scales
        .iter()
        .map(|&(name, blocks, lines)| bench_scale(name, blocks, lines))
        .collect();
    for s in &reports {
        let raw = s
            .cells
            .iter()
            .find(|c| !c.combining && c.sampling_ratio >= 1.0);
        let comb = s
            .cells
            .iter()
            .find(|c| c.combining && c.sampling_ratio >= 1.0);
        if let (Some(raw), Some(comb)) = (raw, comb) {
            println!(
                "{:>8} | {} records, combine speedup {:.2}x, outputs match: {}",
                s.name,
                s.total_records,
                raw.wall_secs_mean / comb.wall_secs_mean,
                s.outputs_match,
            );
        }
    }

    let report = Report {
        reps: reps(),
        smoke,
        scales: reports,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write benchmark report");
    println!("wrote {out}");

    let mut failures = Vec::new();
    if check {
        for s in &report.scales {
            if !s.outputs_match {
                failures.push(format!("{}: raw and combined outputs differ", s.name));
            }
            let raw = s
                .cells
                .iter()
                .find(|c| !c.combining && c.sampling_ratio >= 1.0);
            let comb = s
                .cells
                .iter()
                .find(|c| c.combining && c.sampling_ratio >= 1.0);
            if let (Some(raw), Some(comb)) = (raw, comb) {
                if comb.shuffled_pairs >= raw.shuffled_pairs {
                    failures.push(format!(
                        "{}: combining did not shrink the shuffle ({} vs {})",
                        s.name, comb.shuffled_pairs, raw.shuffled_pairs
                    ));
                }
            }
            for c in &s.cells {
                if c.sampling_ratio < 1.0 && c.processed_records >= s.total_records {
                    failures.push(format!(
                        "{}: sampled cell processed every record ({})",
                        s.name, c.processed_records
                    ));
                }
            }
        }
    }
    if let Some(path) = baseline {
        match compare_baseline(&report, &path) {
            Ok(regressions) => failures.extend(regressions),
            Err(e) => failures.push(e),
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("CHECK FAILED: {f}");
        }
        std::process::exit(1);
    }
    if check {
        println!("all checks passed");
    }
}
