//! Figure 6: WikiLength performance and accuracy for different
//! dropping/sampling ratios — (a) no dropping, (b) 25% dropped,
//! (c) 50% dropped, each sweeping the input sampling ratio.

use approxhadoop_bench::{header, ratio_sweep, worst_key_metrics, Outcome};
use approxhadoop_cluster::{ClusterSpec, SimJobSpec};
use approxhadoop_core::spec::ApproxSpec;
use approxhadoop_runtime::engine::JobConfig;
use approxhadoop_workloads::apps;
use approxhadoop_workloads::wikidump::WikiDump;

fn main() {
    header(
        "Figure 6",
        "WikiLength runtime & accuracy vs sampling ratio at 0/25/50% map dropping \
         (real = laptop-scale engine; sim = paper's 161-map job on 10 Xeons)",
    );
    let dump = WikiDump {
        articles: 100_000,
        articles_per_block: 1_000,
        seed: 6,
    };
    let config = JobConfig {
        reduce_tasks: 2,
        ..Default::default()
    };
    let truth = apps::wiki_length(&dump, ApproxSpec::Precise, config.clone())
        .unwrap()
        .outputs;

    // Cluster-scale analogue: the paper's 161 maps of the 9.8 GB dump.
    let cluster = ClusterSpec::xeon(10);
    let sim_job = SimJobSpec::data_analysis(161, 90_000);

    ratio_sweep(
        &[0.0, 0.25, 0.5],
        &[0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.0],
        Some((&cluster, &sim_job)),
        |spec, seed| {
            let mut cfg = config.clone();
            cfg.seed = seed;
            let (wall, r) = approxhadoop_bench::timed(|| {
                apps::wiki_length(&dump, spec, cfg).expect("wiki_length job")
            });
            let (bound, actual) = worst_key_metrics(&r.outputs, &truth);
            Outcome {
                wall_secs: wall,
                bound_rel: bound,
                actual_rel: actual,
            }
        },
    );
    println!(
        "\nShape check (paper): sampling alone trims runtime modestly (read cost remains);\n\
         dropping cuts runtime sharply but widens the confidence intervals."
    );
}
