//! Figure 8: DC Placement performance and accuracy for different
//! dropping ratios (GEV error estimation, 50 ms max latency).

use approxhadoop_bench::{header, reps, timed, Summary};
use approxhadoop_core::spec::ApproxSpec;
use approxhadoop_runtime::engine::JobConfig;
use approxhadoop_workloads::apps;
use approxhadoop_workloads::dcgrid::{AnnealConfig, Grid};

fn main() {
    header(
        "Figure 8",
        "DC Placement runtime & accuracy vs executed maps \
         (paper: 800 maps; here 80 maps of 2 searches, 50ms max latency)",
    );
    let grid = Grid::us_like(16, 8);
    let anneal = AnnealConfig {
        datacenters: 4,
        max_latency_ms: 50.0,
        iterations: 1_000,
    };
    let num_maps = 80;
    let config = JobConfig::default();

    // Ground truth: best cost over the full (precise) search.
    let full = apps::dc_placement(
        &grid,
        &anneal,
        num_maps,
        2,
        ApproxSpec::Precise,
        config.clone(),
    )
    .expect("full search");
    let best_known = full.outputs[0].observed;
    println!("best cost over all {num_maps} maps: {best_known:.2}\n");

    println!(
        "{:>10} | {:>9} | {:>10} | {:>9} | {:>9}",
        "executed%", "real(s)", "best found", "95%CI", "actual%"
    );
    for executed_pct in [100.0, 87.5, 75.0, 62.5, 50.0, 37.5, 25.0, 12.5] {
        let drop = 1.0 - executed_pct / 100.0;
        let spec = if drop <= 0.0 {
            ApproxSpec::Precise
        } else {
            ApproxSpec::ratios(drop, 1.0)
        };
        let mut walls = Vec::new();
        let mut bounds = Vec::new();
        let mut actuals = Vec::new();
        let mut observed = f64::NAN;
        for seed in 0..reps() as u64 {
            let mut cfg = config.clone();
            cfg.seed = seed;
            let (wall, r) = timed(|| {
                apps::dc_placement(&grid, &anneal, num_maps, 2, spec, cfg)
                    .expect("dc placement job")
            });
            let out = &r.outputs[0];
            observed = out.observed;
            walls.push(wall);
            if let Some(iv) = out.estimated {
                bounds.push(iv.relative_error());
                actuals.push(iv.actual_error(best_known));
            }
        }
        let fmt = |v: &Vec<f64>| {
            if v.is_empty() {
                "n/a".to_string()
            } else {
                format!("{:.2}%", Summary::of(v).mean * 100.0)
            }
        };
        println!(
            "{:>9.1}% | {:>9.3} | {:>10.2} | {:>9} | {:>9}",
            executed_pct,
            Summary::of(&walls).mean,
            observed,
            fmt(&bounds),
            fmt(&actuals)
        );
    }
    println!(
        "\nShape check (paper Fig. 8): runtime falls roughly linearly with executed maps\n\
         (whole waves disappear in steps); error bounds grow slowly until ~50% dropped."
    );
}
