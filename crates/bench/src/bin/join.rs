//! Join scale benchmark: the two-input access-log × page-catalogue
//! equi-join across input scales, precise vs sampled.
//!
//! Runs [`approxhadoop_workloads::join`] through the real engine at
//! several log-volume scales, once precisely and once under cluster
//! sampling (sample 0.5, drop 0.25 on the log side; the catalogue side
//! is always precise), and reports log records/s per cell plus the
//! Bloom pre-filter's discard fraction. This is the regression harness
//! for the multi-input path: the tagged source, the per-dataset
//! coordinator, the map-side Bloom filter and the per-stratum
//! estimators all sit on this wall clock.
//!
//! Human-readable narration goes to stdout; one JSON document lands in
//! `BENCH_join.json` (or `--out PATH`).
//!
//! ```text
//! join [--smoke] [--check] [--out PATH] [--baseline PATH]
//! ```
//!
//! * `--smoke` shrinks the log volumes for CI;
//! * `--check` exits non-zero unless the precise run matches the
//!   directly computed ground truth, sampled per-stratum intervals
//!   cover it comfortably often (a loose floor that only a collapsed
//!   estimator misses — the strict validation is the `join_e2e` test),
//!   and the Bloom filter both passed and discarded traffic;
//! * `--baseline PATH` compares each scale's aggregate best-of-reps log
//!   records/s against a previously written report and exits non-zero
//!   on any scale more than 20% slower than the baseline.

use std::sync::Arc;

use approxhadoop_bench::{header, reps, timed, Summary};
use approxhadoop_obs::Obs;
use approxhadoop_runtime::engine::JobConfig;
use approxhadoop_runtime::DatasetRatios;
use approxhadoop_workloads::join::{join_category_traffic, JoinOutcome, JoinWorkload};

/// Fractional slowdown per scale tolerated against the baseline.
const BASELINE_TOLERANCE: f64 = 0.20;

/// The sampled cell's log-side ratios.
const SAMPLE_RATIO: f64 = 0.5;
const DROP_RATIO: f64 = 0.25;

/// One (precise | sampled) cell of a scale.
#[derive(Debug, Clone, Copy, serde::Serialize)]
struct CellReport {
    sampled: bool,
    wall_secs_mean: f64,
    wall_secs_min: f64,
    /// Log records the maps actually read (the sampled subset under
    /// approximation; every record when precise).
    processed_log_records: u64,
    /// `processed_log_records / wall_secs_mean`.
    records_per_sec: f64,
    /// Best of the reps — the value the baseline gate aggregates (the
    /// mean also absorbs scheduler noise; the best rep tracks the
    /// code's speed).
    records_per_sec_best: f64,
    /// Fraction of processed log records the Bloom pre-filter discarded
    /// before the shuffle.
    discard_fraction: f64,
    /// Whole-join relative half-width (0 when precise).
    combined_rel_error: f64,
    /// Fraction of per-category 95% intervals (across all reps) that
    /// covered the directly computed truth. Each interval covers with
    /// ~95% probability, so demanding *every* one cover would fail a
    /// multi-rep run by design; the gate checks this rate instead.
    stratum_coverage: f64,
}

/// Both cells of one log-volume scale.
#[derive(Debug, Clone, serde::Serialize)]
struct ScaleReport {
    name: String,
    /// `JoinWorkload::demo` log-volume multiplier.
    mult: u64,
    /// Total log records in the input (before sampling).
    total_log_records: u64,
    cells: Vec<CellReport>,
    /// Processed log records across both cells over the summed best-rep
    /// walls — the value the baseline gate compares (see the hotpath
    /// bench for why the per-scale aggregate, not per-cell numbers).
    aggregate_records_per_sec_best: f64,
}

#[derive(Debug, Clone, serde::Serialize)]
struct Report {
    reps: usize,
    smoke: bool,
    sample_ratio: f64,
    drop_ratio: f64,
    scales: Vec<ScaleReport>,
}

/// One join run; returns `(wall, outcome, processed log records,
/// discard fraction)`.
fn run_join(w: &JoinWorkload, ratios: DatasetRatios, seed: u64) -> (f64, JoinOutcome, u64, f64) {
    // Fresh observability context per run, so the Bloom counters
    // measure this run alone.
    let obs = Arc::new(Obs::default());
    let config = JobConfig {
        reduce_tasks: 4,
        seed,
        obs: Some(obs.clone()),
        ..Default::default()
    };
    let (secs, outcome) =
        timed(|| join_category_traffic(w, ratios, config, 0.95).expect("join job"));
    let n_log = w.log_clusters() as usize;
    let processed: u64 = outcome
        .metrics
        .map_stats
        .iter()
        .filter(|s| s.task.0 < n_log)
        .map(|s| s.sampled_records)
        .sum();
    let snap = obs.registry.snapshot();
    let discarded = snap.counter_total("join_filter_discarded_total") as f64;
    let passed = snap.counter_total("join_filter_passed_total") as f64;
    let discard_fraction = if discarded + passed > 0.0 {
        discarded / (discarded + passed)
    } else {
        0.0
    };
    (secs, outcome, processed, discard_fraction)
}

/// Counts `(covered, total)` per-category intervals against the
/// directly computed precise aggregate. A category missing from the
/// outcome (or truth) counts as uncovered.
fn strata_coverage(w: &JoinWorkload, outcome: &JoinOutcome) -> (usize, usize) {
    let truth = w.precise_by_category();
    let covered = outcome
        .categories
        .iter()
        .filter(|(cat, iv)| {
            truth
                .get(cat)
                .is_some_and(|&t| (iv.estimate - t).abs() <= iv.half_width + 1e-6)
        })
        .count();
    (covered, truth.len().max(outcome.categories.len()))
}

fn bench_cell(mult: u64, sampled: bool) -> CellReport {
    let ratios = if sampled {
        DatasetRatios {
            sampling_ratio: SAMPLE_RATIO,
            drop_ratio: DROP_RATIO,
        }
    } else {
        DatasetRatios::precise()
    };
    let mut walls = Vec::new();
    let mut last = None;
    let (mut covered, mut total) = (0usize, 0usize);
    for seed in 0..reps() as u64 {
        let w = JoinWorkload::demo(mult, seed);
        let (secs, outcome, processed, discard) = run_join(&w, ratios, seed);
        let (c, t) = strata_coverage(&w, &outcome);
        covered += c;
        total += t;
        walls.push(secs);
        last = Some((outcome, processed, discard));
    }
    let (outcome, processed, discard) = last.expect("at least one rep");
    let wall = Summary::of(&walls);
    CellReport {
        sampled,
        wall_secs_mean: wall.mean,
        wall_secs_min: wall.min,
        processed_log_records: processed,
        records_per_sec: processed as f64 / wall.mean,
        records_per_sec_best: processed as f64 / wall.min,
        discard_fraction: discard,
        combined_rel_error: outcome.combined.relative_error(),
        stratum_coverage: if total > 0 {
            covered as f64 / total as f64
        } else {
            0.0
        },
    }
}

fn bench_scale(name: &str, mult: u64) -> ScaleReport {
    let w = JoinWorkload::demo(mult, 0);
    let total_log_records = w.log_clusters() * w.log.entries_per_block;
    let mut cells = Vec::new();
    for sampled in [false, true] {
        let cell = bench_cell(mult, sampled);
        print_cell(name, &cell);
        cells.push(cell);
    }
    let processed: u64 = cells.iter().map(|c| c.processed_log_records).sum();
    let best_walls: f64 = cells.iter().map(|c| c.wall_secs_min).sum();
    ScaleReport {
        name: name.to_string(),
        mult,
        total_log_records,
        cells,
        aggregate_records_per_sec_best: processed as f64 / best_walls,
    }
}

fn print_cell(scale: &str, c: &CellReport) {
    println!(
        "{:>8} {:>8} | {:>9.3} | {:>11.0} | {:>8.1}% | {:>8.2}% | {:>6.0}%",
        scale,
        if c.sampled { "sampled" } else { "precise" },
        c.wall_secs_mean,
        c.records_per_sec,
        c.discard_fraction * 100.0,
        c.combined_rel_error * 100.0,
        c.stratum_coverage * 100.0,
    );
}

/// Extracts every `(scale key, aggregate records/s)` pair from a
/// previously written report, parsed with the in-tree JSON reader (the
/// serde shim is write-only).
fn baseline_scales(
    doc: &approxhadoop_obs::json::Value,
) -> Option<std::collections::BTreeMap<(String, u64), f64>> {
    let mut scales = std::collections::BTreeMap::new();
    for scale in doc.get("scales")?.as_array()? {
        let name = scale.get("name")?.as_str()?.to_string();
        let mult = scale.get("mult")?.as_f64()? as u64;
        let rps = scale.get("aggregate_records_per_sec_best")?.as_f64()?;
        scales.insert((name, mult), rps);
    }
    Some(scales)
}

/// Compares `report` against the baseline at `path`; returns the list
/// of regressions (empty = pass). Scales are matched by name *and*
/// multiplier, so a smoke run silently skips a full baseline's scales
/// (and an all-skip comparison is an error, not a pass).
fn compare_baseline(report: &Report, path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = approxhadoop_obs::json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let base_scales =
        baseline_scales(&doc).ok_or_else(|| format!("{path} is not a join report"))?;
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for s in &report.scales {
        let key = (s.name.clone(), s.mult);
        let Some(&base) = base_scales.get(&key) else {
            continue;
        };
        compared += 1;
        let floor = base * (1.0 - BASELINE_TOLERANCE);
        if s.aggregate_records_per_sec_best < floor {
            failures.push(format!(
                "{}: {:.0} records/s aggregate is >{:.0}% below baseline {:.0}",
                s.name,
                s.aggregate_records_per_sec_best,
                BASELINE_TOLERANCE * 100.0,
                base,
            ));
        }
    }
    if compared == 0 {
        return Err(format!(
            "baseline {path} has no scales matching this run \
             (smoke vs full mismatch?)"
        ));
    }
    Ok(failures)
}

fn main() {
    let mut smoke = false;
    let mut check = false;
    let mut out = "BENCH_join.json".to_string();
    let mut baseline: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("error: missing value for --out");
                    std::process::exit(2);
                }
            },
            "--baseline" => match it.next() {
                Some(path) => baseline = Some(path),
                None => {
                    eprintln!("error: missing value for --baseline");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "error: unknown option `{other}` (expected --smoke/--check/--out/--baseline)"
                );
                std::process::exit(2);
            }
        }
    }

    header(
        "Join",
        "Two-input Bloom-filtered join across log volumes: {precise, sampled 0.5/drop 0.25}",
    );
    // Smoke scales are sized so the fastest cell still takes tens of
    // milliseconds — small enough for CI, large enough that the
    // baseline gate measures code speed, not timer granularity.
    let scales: &[(&str, u64)] = if smoke {
        &[("small", 2), ("medium", 4)]
    } else {
        &[("small", 2), ("medium", 4), ("large", 8)]
    };

    println!(
        "{:>8} {:>8} | {:>9} | {:>11} | {:>9} | {:>9} | {:>6}",
        "scale", "mode", "wall(s)", "records/s", "discard", "±95%", "covers"
    );
    let reports: Vec<ScaleReport> = scales
        .iter()
        .map(|&(name, mult)| bench_scale(name, mult))
        .collect();

    let report = Report {
        reps: reps(),
        smoke,
        sample_ratio: SAMPLE_RATIO,
        drop_ratio: DROP_RATIO,
        scales: reports,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write benchmark report");
    println!("wrote {out}");

    let mut failures = Vec::new();
    if check {
        for s in &report.scales {
            for c in &s.cells {
                // Precise runs must cover everywhere. Sampled 95%
                // intervals get a deliberately loose 50% floor: with
                // `APPROX_REPS=1` a cell holds only ~8 intervals, so a
                // tight floor would fail on ordinary 5% misses. This
                // gate only catches estimator collapse; the strict
                // per-stratum statistical validation is the `join_e2e`
                // seed-matrix test.
                let floor = if c.sampled { 0.5 } else { 1.0 };
                if c.stratum_coverage < floor {
                    failures.push(format!(
                        "{}: {} stratum coverage {:.0}% is below {:.0}%",
                        s.name,
                        if c.sampled { "sampled" } else { "precise" },
                        c.stratum_coverage * 100.0,
                        floor * 100.0
                    ));
                }
                if c.discard_fraction <= 0.0 || c.discard_fraction >= 1.0 {
                    failures.push(format!(
                        "{}: Bloom filter did no useful work (discard fraction {:.3})",
                        s.name, c.discard_fraction
                    ));
                }
            }
            let precise = s.cells.iter().find(|c| !c.sampled);
            let sampled = s.cells.iter().find(|c| c.sampled);
            if let (Some(p), Some(a)) = (precise, sampled) {
                if p.combined_rel_error != 0.0 {
                    failures.push(format!(
                        "{}: precise run reported a nonzero error bound ({:.4})",
                        s.name, p.combined_rel_error
                    ));
                }
                if a.processed_log_records >= p.processed_log_records {
                    failures.push(format!(
                        "{}: sampling processed every log record ({} vs {})",
                        s.name, a.processed_log_records, p.processed_log_records
                    ));
                }
            }
        }
    }
    if let Some(path) = baseline {
        match compare_baseline(&report, &path) {
            Ok(regressions) => failures.extend(regressions),
            Err(e) => failures.push(e),
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("CHECK FAILED: {f}");
        }
        std::process::exit(1);
    }
    if check {
        println!("all checks passed");
    }
}
