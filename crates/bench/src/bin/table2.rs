//! Table 2: sizes of the Wikipedia access log for different periods and
//! the resulting map-task counts (one per 64 MB compressed block).

use approxhadoop_bench::header;
use approxhadoop_workloads::wikilog::LOG_PERIODS;

fn main() {
    header(
        "Table 2",
        "Wikipedia access log sizes per period (starting Jan 1 2013)",
    );
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>8}",
        "Period", "Accesses", "Compress", "Uncompress", "#Maps"
    );
    for p in LOG_PERIODS {
        let accesses = if p.accesses_millions >= 1000.0 {
            format!("{:.1}G", p.accesses_millions / 1000.0)
        } else {
            format!("{:.0}M", p.accesses_millions)
        };
        let fmt_size = |gb: f64| {
            if gb >= 1024.0 {
                format!("{:.1} TB", gb / 1024.0)
            } else {
                format!("{:.1} GB", gb)
            }
        };
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>8}",
            p.name,
            accesses,
            fmt_size(p.compressed_gb),
            fmt_size(p.uncompressed_gb),
            p.num_maps()
        );
    }
}
