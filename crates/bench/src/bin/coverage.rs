//! Empirical coverage validation: do the 95% confidence intervals of
//! every estimator class actually contain the truth ~95% of the time?
//!
//! This is the repo's statistical acceptance test at larger sample
//! sizes than the unit tests run: two-stage sums, ratio estimates,
//! three-stage totals, and GEV extreme estimates, each over hundreds of
//! resampled executions of a known synthetic population.

use approxhadoop_bench::header;
use approxhadoop_stats::gev::MinEstimator;
use approxhadoop_stats::multistage::{
    ClusterObservation, PairedClusterObservation, RatioEstimator, SecondaryObservation,
    ThreeStageCluster, ThreeStageEstimator, TwoStageEstimator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const REPS: usize = 400;
const CONFIDENCE: f64 = 0.95;

fn sample_indices(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k.min(n) {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k.min(n));
    idx
}

fn report(name: &str, covered: usize, width_rel: f64) {
    println!(
        "{:>22} | {:>9.1}% | {:>12.2}%",
        name,
        covered as f64 / REPS as f64 * 100.0,
        width_rel * 100.0
    );
}

fn two_stage_coverage(rng: &mut StdRng) {
    // Population: 60 blocks × 150 items with locality.
    let blocks: Vec<Vec<f64>> = (0..60)
        .map(|_| {
            let base = 20.0 + rng.gen_range(-4.0..4.0);
            (0..150)
                .map(|_| base + rng.gen_range(-10.0..10.0))
                .collect()
        })
        .collect();
    let truth: f64 = blocks.iter().flatten().sum();
    let mut covered = 0;
    let mut width = 0.0;
    for _ in 0..REPS {
        let mut est = TwoStageEstimator::new(60);
        for b in sample_indices(rng, 60, 20) {
            let items = sample_indices(rng, 150, 40);
            let vals: Vec<f64> = items.iter().map(|&i| blocks[b][i]).collect();
            est.push(ClusterObservation {
                cluster_id: b as u64,
                total_units: 150,
                sampled_units: 40,
                sum: vals.iter().sum(),
                sum_sq: vals.iter().map(|v| v * v).sum(),
            });
        }
        let iv = est.estimate(CONFIDENCE).unwrap();
        if iv.contains(truth) {
            covered += 1;
        }
        width += iv.relative_error() / REPS as f64;
    }
    report("two-stage sum", covered, width);
}

fn ratio_coverage(rng: &mut StdRng) {
    // y ≈ 8x with noise; ratio ≈ 8.
    let blocks: Vec<Vec<(f64, f64)>> = (0..50)
        .map(|_| {
            (0..100)
                .map(|_| {
                    let x = rng.gen_range(1.0..5.0);
                    (8.0 * x + rng.gen_range(-2.0..2.0), x)
                })
                .collect()
        })
        .collect();
    let ty: f64 = blocks.iter().flatten().map(|(y, _)| y).sum();
    let tx: f64 = blocks.iter().flatten().map(|(_, x)| x).sum();
    let truth = ty / tx;
    let mut covered = 0;
    let mut width = 0.0;
    for _ in 0..REPS {
        let mut est = RatioEstimator::new(50);
        for b in sample_indices(rng, 50, 15) {
            let items = sample_indices(rng, 100, 30);
            let mut o = PairedClusterObservation {
                cluster_id: b as u64,
                total_units: 100,
                sampled_units: 30,
                sum_y: 0.0,
                sum_y_sq: 0.0,
                sum_x: 0.0,
                sum_x_sq: 0.0,
                sum_xy: 0.0,
            };
            for &i in &items {
                let (y, x) = blocks[b][i];
                o.sum_y += y;
                o.sum_y_sq += y * y;
                o.sum_x += x;
                o.sum_x_sq += x * x;
                o.sum_xy += x * y;
            }
            est.push(o);
        }
        let iv = est.estimate(CONFIDENCE).unwrap();
        if iv.contains(truth) {
            covered += 1;
        }
        width += iv.relative_error() / REPS as f64;
    }
    report("two-stage ratio", covered, width);
}

fn three_stage_coverage(rng: &mut StdRng) {
    // 30 blocks × 20 items × 10 tertiary values.
    let pop: Vec<Vec<Vec<f64>>> = (0..30)
        .map(|_| {
            (0..20)
                .map(|_| (0..10).map(|_| rng.gen_range(2.0..8.0)).collect())
                .collect()
        })
        .collect();
    let truth: f64 = pop.iter().flatten().flatten().sum();
    let mut covered = 0;
    let mut width = 0.0;
    for _ in 0..REPS {
        let mut est = ThreeStageEstimator::new(30);
        for b in sample_indices(rng, 30, 10) {
            let items = sample_indices(rng, 20, 8);
            let secondaries = items
                .iter()
                .map(|&i| {
                    let ters = sample_indices(rng, 10, 5);
                    let vals: Vec<f64> = ters.iter().map(|&t| pop[b][i][t]).collect();
                    SecondaryObservation {
                        total_tertiary: 10,
                        sampled_tertiary: 5,
                        sum: vals.iter().sum(),
                        sum_sq: vals.iter().map(|v| v * v).sum(),
                    }
                })
                .collect();
            est.push(ThreeStageCluster {
                cluster_id: b as u64,
                total_units: 20,
                secondaries,
            });
        }
        let iv = est.estimate(CONFIDENCE).unwrap();
        if iv.contains(truth) {
            covered += 1;
        }
        width += iv.relative_error() / REPS as f64;
    }
    report("three-stage sum", covered, width);
}

fn gev_coverage(rng: &mut StdRng) {
    // True minimum of a uniform(100, 300) population; per-map minima over
    // 500 draws each. The "truth" for coverage is the support endpoint.
    let truth = 100.0;
    let mut covered = 0;
    let mut width = 0.0;
    for _ in 0..REPS {
        let minima: Vec<f64> = (0..50)
            .map(|_| {
                (0..500)
                    .map(|_| rng.gen_range(100.0..300.0))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        if let Ok(iv) = MinEstimator::new().estimate(&minima, CONFIDENCE) {
            if iv.contains(truth) {
                covered += 1;
            }
            width += (iv.half_width / truth) / REPS as f64;
        }
    }
    report("GEV minimum", covered, width);
}

fn main() {
    header(
        "Coverage",
        "Empirical 95% CI coverage of every estimator class (target ≈ 95%; \
         GEV is an asymptotic fit, so its coverage is approximate)",
    );
    println!(
        "{:>22} | {:>10} | {:>13}",
        "estimator", "coverage", "mean CI width"
    );
    let mut rng = StdRng::seed_from_u64(2026);
    two_stage_coverage(&mut rng);
    ratio_coverage(&mut rng);
    three_stage_coverage(&mut rng);
    gev_coverage(&mut rng);
}
