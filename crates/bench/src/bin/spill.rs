//! Process-backend shuffle benchmark: in-memory vs spilling budgets.
//!
//! Runs the `wide-pairs` job (each `u32` becomes a 100-byte string
//! keyed mod 16) on the multi-process backend under a sweep of
//! per-worker shuffle memory budgets, from far below the map output
//! volume (every partition spills sorted runs to disk and merges on
//! drain) up to the 64 MiB default (everything stays in memory), and
//! reports wall time, spill runs/bytes from the observability
//! counters, and whether every budget produced bit-identical outputs.
//!
//! Requires the `approx-worker-rt` worker binary next to this one
//! (`cargo build --release -p approxhadoop-runtime --bin
//! approx-worker-rt` puts it there).
//!
//! Human-readable narration goes to stdout; one JSON document lands in
//! `BENCH_spill.json` (or `--out PATH`).
//!
//! ```text
//! spill [--smoke] [--check] [--workers N] [--out PATH]
//! ```
//!
//! * `--smoke` shrinks the dataset for CI;
//! * `--check` exits non-zero unless the tight budgets spilled, the
//!   ample budget did not, and all budgets agreed on every output.

use std::sync::Arc;

use approxhadoop_bench::{header, reps, timed, Summary};
use approxhadoop_obs::Obs;
use approxhadoop_runtime::engine::{run_job_process, JobConfig, WorkerSpec};
use approxhadoop_runtime::input::VecSource;
use approxhadoop_runtime::reducer::GroupedReducer;
use approxhadoop_runtime::{FixedCoordinator, JobId, JobSession};

/// Measurements for one shuffle memory budget.
#[derive(Debug, Clone, Copy, serde::Serialize)]
struct BudgetReport {
    budget_bytes: usize,
    wall_secs_mean: f64,
    wall_secs_min: f64,
    spill_runs: u64,
    spill_bytes: u64,
    /// Outputs bit-identical to the ample-budget reference run.
    outputs_match: bool,
}

#[derive(Debug, Clone, serde::Serialize)]
struct Report {
    reps: usize,
    smoke: bool,
    workers: usize,
    blocks: usize,
    entries_per_block: usize,
    budgets: Vec<BudgetReport>,
}

fn corpus(blocks: usize, entries: usize) -> Vec<Vec<u32>> {
    (0..blocks as u32)
        .map(|b| {
            (0..entries as u32)
                .map(|i| b * entries as u32 + i)
                .collect()
        })
        .collect()
}

/// One process-backend run of `wide-pairs` under `budget` bytes of
/// shuffle memory; returns the wall time, sorted outputs, and the
/// spill counters the run recorded.
fn run_budget(
    spec: &WorkerSpec,
    blocks: &[Vec<u32>],
    workers: usize,
    budget: usize,
    spill_dir: &std::path::Path,
) -> (f64, Vec<(u32, u64, String)>, u64, u64) {
    let obs = Obs::shared();
    let input = VecSource::new(blocks.to_vec());
    let config = JobConfig {
        workers,
        reduce_tasks: 4,
        shuffle_mem_bytes: budget,
        spill_dir: Some(spill_dir.to_path_buf()),
        obs: Some(Arc::clone(&obs)),
        ..Default::default()
    };
    let mut coordinator = FixedCoordinator::new(blocks.len(), 1.0, 0.0, 0);
    let session = JobSession::new(JobId(1));
    let (secs, result) = timed(|| {
        run_job_process(
            &input,
            spec,
            |_| {
                GroupedReducer::new(|k: &u32, vs: &[String]| {
                    Some((
                        *k,
                        vs.len() as u64,
                        vs.iter().max().cloned().unwrap_or_default(),
                    ))
                })
            },
            config,
            &mut coordinator,
            &session,
        )
        .expect("wide-pairs process job")
    });
    let snapshot = obs.registry.snapshot();
    let mut outputs = result.outputs;
    outputs.sort();
    (
        secs,
        outputs,
        snapshot.counter_total("approx_process_spill_runs_total"),
        snapshot.counter_total("approx_process_spill_bytes_total"),
    )
}

fn main() {
    let mut smoke = false;
    let mut check = false;
    let mut workers = 2usize;
    let mut out = "BENCH_spill.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => workers = n,
                _ => {
                    eprintln!("error: --workers needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("error: missing value for --out");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "error: unknown option `{other}` (expected --smoke/--check/--workers/--out)"
                );
                std::process::exit(2);
            }
        }
    }

    let spec = match WorkerSpec::sibling("approx-worker-rt", "wide-pairs") {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!(
                "error: {e}\nbuild it first: cargo build --release -p approxhadoop-runtime \
                 --bin approx-worker-rt"
            );
            std::process::exit(2);
        }
    };

    header(
        "Spill",
        "Process-backend shuffle: spilling budgets vs in-memory, same outputs",
    );
    let (blocks, entries) = if smoke { (8, 400) } else { (24, 4000) };
    let data = corpus(blocks, entries);
    // ~108 B per encoded pair; the tight budgets sit well below one
    // block's output, the ample one above the whole job's.
    let budgets: Vec<usize> = if smoke {
        vec![4 << 10, 16 << 10, 64 << 20]
    } else {
        vec![16 << 10, 256 << 10, 64 << 20]
    };

    let spill_root =
        std::env::temp_dir().join(format!("approx-bench-spill-{}", std::process::id()));
    std::fs::create_dir_all(&spill_root).expect("create spill scratch dir");

    println!(
        "{:>12} | {:>9} | {:>9} | {:>10} | {:>12} | {:>7}",
        "budget", "wall(s)", "min(s)", "spill runs", "spill bytes", "match"
    );
    let mut reference: Option<Vec<(u32, u64, String)>> = None;
    let mut rows = Vec::new();
    // Sweep largest budget first so the in-memory run is the reference.
    for &budget in budgets.iter().rev() {
        let mut walls = Vec::new();
        let mut last = None;
        for _ in 0..reps() {
            let (secs, outputs, runs, bytes) =
                run_budget(&spec, &data, workers, budget, &spill_root);
            walls.push(secs);
            last = Some((outputs, runs, bytes));
        }
        let (outputs, spill_runs, spill_bytes) = last.expect("at least one rep");
        let outputs_match = match &reference {
            Some(r) => *r == outputs,
            None => {
                reference = Some(outputs);
                true
            }
        };
        let wall = Summary::of(&walls);
        rows.push(BudgetReport {
            budget_bytes: budget,
            wall_secs_mean: wall.mean,
            wall_secs_min: wall.min,
            spill_runs,
            spill_bytes,
            outputs_match,
        });
    }
    rows.reverse();
    for r in &rows {
        println!(
            "{:>10}Ki | {:>9.3} | {:>9.3} | {:>10} | {:>12} | {:>7}",
            r.budget_bytes >> 10,
            r.wall_secs_mean,
            r.wall_secs_min,
            r.spill_runs,
            r.spill_bytes,
            r.outputs_match,
        );
    }
    let _ = std::fs::remove_dir_all(&spill_root);

    let report = Report {
        reps: reps(),
        smoke,
        workers,
        blocks,
        entries_per_block: entries,
        budgets: rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write benchmark report");
    println!("wrote {out}");

    if check {
        let mut failures = Vec::new();
        let ample = report.budgets.last().expect("budget sweep is non-empty");
        if ample.spill_runs != 0 {
            failures.push(format!(
                "ample {} B budget spilled {} runs; expected none",
                ample.budget_bytes, ample.spill_runs
            ));
        }
        for b in &report.budgets[..report.budgets.len() - 1] {
            if b.spill_runs == 0 {
                failures.push(format!(
                    "tight {} B budget never spilled; sweep is not exercising the spill path",
                    b.budget_bytes
                ));
            }
        }
        for b in &report.budgets {
            if !b.outputs_match {
                failures.push(format!(
                    "{} B budget outputs differ from the in-memory reference",
                    b.budget_bytes
                ));
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        println!("all checks passed");
    }
}
