//! Figure 13: performance of Page and Project Popularity for different
//! log sizes (1 day … 1 year of Wikipedia access logs), precise vs a
//! 1% target error bound, on the 60-server Atom cluster.

use approxhadoop_bench::header;
use approxhadoop_cluster::{simulate, ClusterSpec, SimApprox, SimJobSpec};
use approxhadoop_core::spec::PilotSpec;
use approxhadoop_workloads::wikilog::LOG_PERIODS;

fn main() {
    header(
        "Figure 13",
        "Runtime vs log size (60 Atom servers; both axes log-scale in the paper)",
    );
    let atom = ClusterSpec::atom(60);
    println!(
        "{:>9} | {:>7} | {:>12} | {:>12} | {:>13} | {:>8} | {:>8}",
        "period", "maps", "precise(s)", "project(s)", "page+pilot(s)", "spd-proj", "spd-page"
    );
    for period in LOG_PERIODS {
        let job = SimJobSpec::log_processing(period.num_maps() as usize, period.records_per_map());
        let precise = simulate(&atom, &job, SimApprox::Precise, 13).expect("precise sim");
        // Project Popularity: plain 1% target.
        let project = simulate(
            &atom,
            &job,
            SimApprox::Target {
                relative_error: 0.01,
            },
            13,
        )
        .expect("project sim");
        // Page Popularity: 1% target with a 1% pilot wave (the paper's
        // configuration — page-level state doesn't fit in memory
        // without sampling, so a pilot replaces the precise first wave).
        let page = simulate(
            &atom,
            &job,
            SimApprox::TargetWithPilot {
                relative_error: 0.01,
                pilot: PilotSpec {
                    tasks: 24,
                    sampling_ratio: 0.01,
                },
            },
            13,
        )
        .expect("page sim");
        println!(
            "{:>9} | {:>7} | {:>12.0} | {:>12.0} | {:>13.0} | {:>7.1}x | {:>7.1}x",
            period.name,
            period.num_maps(),
            precise.wall_secs,
            project.wall_secs,
            page.wall_secs,
            precise.wall_secs / project.wall_secs,
            precise.wall_secs / page.wall_secs,
        );
    }
    println!(
        "\nShape check (paper Fig. 13): precise runtime scales linearly with input;\n\
         approximate runtime stays nearly flat, so the speedup grows with input size\n\
         (paper: >32x for Project and >20x for Page Popularity at one year)."
    );
}
