//! Figure 5: precise vs 10%-sampled results with confidence intervals
//! for (a) WikiLength, (b) WikiPageRank, (c) Project Popularity and
//! (d) Page Popularity.

use approxhadoop_bench::header;
use approxhadoop_core::spec::ApproxSpec;
use approxhadoop_runtime::engine::JobConfig;
use approxhadoop_stats::Interval;
use approxhadoop_workloads::apps;
use approxhadoop_workloads::wikidump::WikiDump;
use approxhadoop_workloads::wikilog::WikiLog;

fn config() -> JobConfig {
    JobConfig {
        reduce_tasks: 2,
        ..Default::default()
    }
}

/// Prints the top rows of a precise/approx output pair.
fn compare<K: std::fmt::Display + PartialEq>(
    title: &str,
    precise: &[(K, Interval)],
    approx: &[(K, Interval)],
    top: usize,
) {
    println!("\n--- {title}: top {top} keys, precise vs 10% sampling ---");
    println!(
        "{:>12} | {:>12} | {:>22} | {:>8}",
        "key", "precise", "approximate (95% CI)", "err%"
    );
    let mut rows: Vec<&(K, Interval)> = precise.iter().collect();
    rows.sort_by(|a, b| b.1.estimate.total_cmp(&a.1.estimate));
    for (k, truth) in rows.into_iter().take(top) {
        match approx.iter().find(|(ak, _)| ak == k) {
            Some((_, iv)) => println!(
                "{:>12} | {:>12.0} | {:>12.0} ± {:>7.0} | {:>7.2}%",
                k,
                truth.estimate,
                iv.estimate,
                iv.half_width,
                iv.actual_error(truth.estimate) * 100.0
            ),
            None => println!(
                "{:>12} | {:>12.0} | {:>22} |      n/a",
                k, truth.estimate, "(missed by sampling)"
            ),
        }
    }
}

fn main() {
    header(
        "Figure 5",
        "Data/log analysis results with 10% input sampling (error bars = 95% CIs)",
    );
    let spec = ApproxSpec::ratios(0.0, 0.10);

    // (a) WikiLength + (b) WikiPageRank on the synthetic dump.
    let dump = WikiDump {
        articles: 100_000,
        articles_per_block: 2_000,
        seed: 1,
    };
    let precise = apps::wiki_length(&dump, ApproxSpec::Precise, config()).unwrap();
    let approx = apps::wiki_length(&dump, spec, config()).unwrap();
    compare(
        "(a) WikiLength (articles per size bin)",
        &precise.outputs,
        &approx.outputs,
        8,
    );
    let missed = precise.outputs.len().saturating_sub(approx.outputs.len());
    println!(
        "    bins: precise {}, approximate {} ({} rare bins missed — Section 3.1 limitation)",
        precise.outputs.len(),
        approx.outputs.len(),
        missed
    );
    if let Some(est) = approx.distinct_keys_estimate {
        println!(
            "    Chao1 extrapolation of total bins from the sample: {est:.1} \
             (the paper's §3.1 extension, after Haas et al.)"
        );
    }

    let precise = apps::wiki_page_rank(&dump, ApproxSpec::Precise, config()).unwrap();
    let approx = apps::wiki_page_rank(&dump, spec, config()).unwrap();
    compare(
        "(b) WikiPageRank (in-links per article)",
        &precise.outputs,
        &approx.outputs,
        8,
    );

    // (c) Project Popularity + (d) Page Popularity on the synthetic log.
    let log = WikiLog {
        days: 7,
        entries_per_block: 5_000,
        blocks_per_day: 10,
        pages: 100_000,
        projects: 500,
        seed: 2,
    };
    let precise = apps::project_popularity(&log, ApproxSpec::Precise, config()).unwrap();
    let approx = apps::project_popularity(&log, spec, config()).unwrap();
    compare(
        "(c) Project Popularity (accesses per project)",
        &precise.outputs,
        &approx.outputs,
        8,
    );

    let precise = apps::page_popularity(&log, ApproxSpec::Precise, config()).unwrap();
    let approx = apps::page_popularity(&log, spec, config()).unwrap();
    compare(
        "(d) Page Popularity (accesses per page)",
        &precise.outputs,
        &approx.outputs,
        8,
    );
    println!(
        "    pages: precise {}, approximate {} ({} rare pages missed)",
        precise.outputs.len(),
        approx.outputs.len(),
        precise.outputs.len().saturating_sub(approx.outputs.len())
    );
    if let Some(est) = approx.distinct_keys_estimate {
        println!(
            "    Chao1 extrapolation of total pages from the sample: {est:.0} (precise saw {}; the §3.1 extension recovers most of the gap)",
            precise.outputs.len()
        );
    }
}
