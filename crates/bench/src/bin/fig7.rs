//! Figure 7: Project Popularity (Wikipedia log processing) performance
//! and accuracy for different dropping/sampling ratios.

use approxhadoop_bench::{header, ratio_sweep, worst_key_metrics, Outcome};
use approxhadoop_cluster::{ClusterSpec, SimJobSpec};
use approxhadoop_core::spec::ApproxSpec;
use approxhadoop_runtime::engine::JobConfig;
use approxhadoop_workloads::apps;
use approxhadoop_workloads::wikilog::WikiLog;

fn main() {
    header(
        "Figure 7",
        "Project Popularity runtime & accuracy vs sampling ratio at 0/25/50% dropping \
         (real = laptop-scale engine; sim = paper's 740-map week on 10 Xeons)",
    );
    let log = WikiLog {
        days: 7,
        entries_per_block: 5_000,
        blocks_per_day: 10,
        pages: 100_000,
        projects: 500,
        seed: 7,
    };
    let config = JobConfig {
        reduce_tasks: 2,
        ..Default::default()
    };
    let truth = apps::project_popularity(&log, ApproxSpec::Precise, config.clone())
        .unwrap()
        .outputs;

    let cluster = ClusterSpec::xeon(10);
    let sim_job = SimJobSpec::log_processing(740, 2_600_000);

    ratio_sweep(
        &[0.0, 0.25, 0.5],
        &[0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.0],
        Some((&cluster, &sim_job)),
        |spec, seed| {
            let mut cfg = config.clone();
            cfg.seed = seed;
            let (wall, r) = approxhadoop_bench::timed(|| {
                apps::project_popularity(&log, spec, cfg).expect("project popularity job")
            });
            let (bound, actual) = worst_key_metrics(&r.outputs, &truth);
            Outcome {
                wall_secs: wall,
                bound_rel: bound,
                actual_rel: actual,
            }
        },
    );
    println!(
        "\nShape check (paper Fig. 7): same trends as WikiLength; actual errors can\n\
         occasionally exceed the CI — only 95% of estimations fall inside it."
    );
}
