//! Figure 9: performance and accuracy when the user specifies a target
//! error bound — (a) Project Popularity, (b) Page Popularity with a
//! pilot wave, (c) DC Placement.

use approxhadoop_bench::{header, reps, timed, Summary};
use approxhadoop_cluster::{simulate, ClusterSpec, SimApprox, SimJobSpec};
use approxhadoop_core::spec::{ApproxSpec, PilotSpec};
use approxhadoop_runtime::engine::JobConfig;
use approxhadoop_workloads::apps;
use approxhadoop_workloads::dcgrid::{AnnealConfig, Grid};
use approxhadoop_workloads::wikilog::WikiLog;

fn config() -> JobConfig {
    JobConfig {
        map_slots: 8,
        reduce_tasks: 2,
        ..Default::default()
    }
}

fn wiki_log() -> WikiLog {
    WikiLog {
        days: 7,
        entries_per_block: 5_000,
        blocks_per_day: 12,
        pages: 100_000,
        projects: 500,
        seed: 9,
    }
}

const TARGETS: [f64; 7] = [0.0005, 0.001, 0.005, 0.01, 0.02, 0.05, 0.10];

/// Runs a target-mode sweep of Project or Page Popularity.
fn popularity_sweep(name: &str, page_level: bool, pilot: Option<PilotSpec>) {
    // Page Popularity uses a larger block count so the pilot wave is a
    // small fraction of the job (the pilot's coarse blocks put a floor
    // under the achievable bound, exactly as the paper observes: "we
    // cannot target errors lower than 0.2%").
    let log = if page_level {
        WikiLog {
            days: 8,
            entries_per_block: 3_000,
            blocks_per_day: 20,
            pages: 20_000,
            projects: 500,
            seed: 9,
        }
    } else {
        wiki_log()
    };
    let run = |spec: ApproxSpec, seed: u64| {
        let mut cfg = config();
        cfg.seed = seed;
        if page_level {
            apps::page_popularity(&log, spec, cfg)
        } else {
            apps::project_popularity(&log, spec, cfg)
        }
    };
    let truth = run(ApproxSpec::Precise, 0).unwrap();
    let (precise_wall, _) = timed(|| run(ApproxSpec::Precise, 1).unwrap());
    println!("\n--- {name}: precise runtime {precise_wall:.3}s ---");
    println!(
        "{:>8} | {:>9} | {:>6} | {:>8} | {:>9} | {:>9} | {:>9}",
        "target%", "real(s)", "maps", "sample%", "bound%", "actual%", "sim(s)"
    );

    // Paper-scale simulation: 740-map week on 10 Xeons.
    let cluster = ClusterSpec::xeon(10);
    let sim_job = SimJobSpec::log_processing(740, 2_600_000);

    for target in TARGETS {
        let mut walls = Vec::new();
        let mut bounds = Vec::new();
        let mut actuals = Vec::new();
        let mut maps = 0;
        let mut sample = 1.0;
        for seed in 0..reps() as u64 {
            let spec = match pilot {
                Some(p) => ApproxSpec::target(target, 0.95).with_pilot(p),
                None => ApproxSpec::target(target, 0.95),
            };
            let (wall, r) = timed(|| run(spec, seed).expect("target job"));
            walls.push(wall);
            maps = r.metrics.executed_maps;
            sample = r.metrics.effective_sampling_ratio();
            let (bound, actual) = approxhadoop_bench::worst_key_metrics(&r.outputs, &truth.outputs);
            bounds.push(bound);
            actuals.push(actual);
        }
        let sim_approx = match pilot {
            Some(p) => SimApprox::TargetWithPilot {
                relative_error: target,
                pilot: p,
            },
            None => SimApprox::Target {
                relative_error: target,
            },
        };
        let sim_secs = simulate(&cluster, &sim_job, sim_approx, 9)
            .map(|r| r.wall_secs)
            .unwrap_or(f64::NAN);
        println!(
            "{:>7.2}% | {:>9.3} | {:>6} | {:>7.1}% | {:>8.3}% | {:>8.3}% | {:>9.0}",
            target * 100.0,
            Summary::of(&walls).mean,
            maps,
            sample * 100.0,
            Summary::of(&bounds).mean * 100.0,
            Summary::of(&actuals).mean * 100.0,
            sim_secs
        );
    }
}

fn main() {
    header(
        "Figure 9",
        "Runtime & accuracy vs user-specified target error bound (95% confidence)",
    );

    // (a) Project Popularity, no pilot.
    popularity_sweep("(a) Project Popularity", false, None);

    // (b) Page Popularity with a 1% pilot wave.
    popularity_sweep(
        "(b) Page Popularity (pilot wave: 4 maps @ 5% sampling)",
        true,
        Some(PilotSpec {
            tasks: 4,
            sampling_ratio: 0.05,
        }),
    );

    // (c) DC Placement with target bounds (GEV).
    let grid = Grid::us_like(16, 19);
    let anneal = AnnealConfig {
        datacenters: 4,
        max_latency_ms: 50.0,
        iterations: 300,
    };
    let num_maps = 320;
    let full = apps::dc_placement(&grid, &anneal, num_maps, 1, ApproxSpec::Precise, config())
        .expect("full search");
    let best_known = full.outputs[0].observed;
    println!("\n--- (c) DC Placement ({num_maps} maps): best cost {best_known:.2} ---");
    println!(
        "{:>8} | {:>9} | {:>6} | {:>9} | {:>9}",
        "target%", "real(s)", "maps", "bound%", "actual%"
    );
    for target in [0.01, 0.02, 0.04, 0.06, 0.08, 0.10] {
        let mut walls = Vec::new();
        let mut maps = 0;
        let mut bound = f64::NAN;
        let mut actual = f64::NAN;
        for seed in 0..reps() as u64 {
            let mut cfg = config();
            cfg.seed = seed;
            let (wall, r) = timed(|| {
                apps::dc_placement(
                    &grid,
                    &anneal,
                    num_maps,
                    1,
                    ApproxSpec::target(target, 0.95),
                    cfg,
                )
                .expect("dc target job")
            });
            walls.push(wall);
            maps = r.metrics.executed_maps;
            if let Some(iv) = r.outputs[0].estimated {
                bound = iv.relative_error();
                actual = iv.actual_error(best_known);
            }
        }
        println!(
            "{:>7.1}% | {:>9.3} | {:>6} | {:>8.2}% | {:>8.2}%",
            target * 100.0,
            Summary::of(&walls).mean,
            maps,
            bound * 100.0,
            actual * 100.0
        );
    }
    println!(
        "\nShape check (paper Fig. 9): tiny targets force precise execution; from ~0.5%\n\
         upward the controller saves increasing work while always meeting the bound;\n\
         the pilot wave keeps even the first wave cheap."
    );
}
