//! Figure 12: energy consumed processing the web-server log for
//! multiple dropping/sampling ratios — (a) Request Rate,
//! (b) Attack Frequencies.
//!
//! The key effect: the 80 weekly files run in a single wave on the
//! cluster, so dropping maps barely changes the runtime — but servers
//! whose maps were dropped go to ACPI-S3, so dropping still saves
//! energy (the paper's point that approximation can save energy
//! independently of time).

use approxhadoop_bench::header;
use approxhadoop_cluster::KeyStatModel;
use approxhadoop_cluster::{simulate, ClusterSpec, SimApprox, SimJobSpec};
use approxhadoop_core::target::TimingModel;

fn dept_log_job() -> SimJobSpec {
    // 80 weekly files, 500k requests each, read-dominated parsing.
    SimJobSpec {
        num_maps: 80,
        records_per_map: 500_000,
        timing: TimingModel {
            t0: 1.5,
            tr: 4.0e-5,
            tp: 6.0e-5,
        },
        straggler_std: 0.06,
        reduce_tail_secs: 8.0,
        stats: KeyStatModel {
            item_mean: 0.01,
            item_std: 0.0995,
            block_std: 0.0005,
        },
        confidence: 0.95,
    }
}

fn main() {
    header(
        "Figure 12",
        "Energy (Wh) for web-server log processing on 10 Xeons with ACPI-S3 \
         (80 maps = one wave on 80 slots; dropping saves energy, not time)",
    );
    let cluster = ClusterSpec::xeon(10).with_s3();
    let job = dept_log_job();

    for (label, seed) in [
        ("(a) Request Rate", 12u64),
        ("(b) Attack Frequencies", 13u64),
    ] {
        println!("\n--- {label} ---");
        println!(
            "{:>7} | {:>9} | {:>9} | {:>9} | {:>9}",
            "maps", "100%smpl", "50%smpl", "10%smpl", "1%smpl"
        );
        for drop in [0.0, 0.25, 0.5, 0.75] {
            let mut row = format!("{:>6.0}% |", (1.0 - drop) * 100.0);
            for sample in [1.0, 0.5, 0.1, 0.01] {
                let approx = if drop == 0.0 && sample >= 1.0 {
                    SimApprox::Precise
                } else {
                    SimApprox::Ratios {
                        drop_ratio: drop,
                        sampling_ratio: sample,
                    }
                };
                let r = simulate(&cluster, &job, approx, seed).expect("simulation");
                row.push_str(&format!(" {:>6.1}Wh |", r.energy_wh));
            }
            println!("{}", row.trim_end_matches('|'));
        }
        // Also show that runtime is flat in the dropping dimension.
        let precise = simulate(&cluster, &job, SimApprox::Precise, seed).unwrap();
        let dropped = simulate(
            &cluster,
            &job,
            SimApprox::Ratios {
                drop_ratio: 0.5,
                sampling_ratio: 1.0,
            },
            seed,
        )
        .unwrap();
        println!(
            "    runtime: precise {:.0}s vs 50% dropped {:.0}s (single wave — no speedup),\n\
             energy: {:.1}Wh vs {:.1}Wh (S3 savings from idle servers)",
            precise.wall_secs, dropped.wall_secs, precise.energy_wh, dropped.energy_wh
        );
    }
    println!(
        "\nShape check (paper Fig. 12): energy falls along BOTH axes — sampling\n\
         shortens the run; dropping parks whole servers in S3."
    );
}
