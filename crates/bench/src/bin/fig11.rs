//! Figure 11: performance and accuracy of web-server log processing —
//! (a) Request Rate, (b) Attack Frequencies — sweeping the input
//! sampling ratio (and dropping, which the paper shows saves little time
//! for this single-wave-per-file job).

use approxhadoop_bench::{header, ratio_sweep, worst_key_metrics, Outcome};
use approxhadoop_core::spec::ApproxSpec;
use approxhadoop_runtime::engine::JobConfig;
use approxhadoop_workloads::apps;
use approxhadoop_workloads::deptlog::DeptLog;

fn main() {
    header(
        "Figure 11",
        "Web-server log processing: runtime & accuracy vs sampling ratio",
    );
    let log = DeptLog {
        weeks: 80,
        requests_per_week: 5_000,
        clients: 20_000,
        attack_fraction: 1e-3,
        seed: 11,
    };
    let config = JobConfig {
        reduce_tasks: 2,
        ..Default::default()
    };

    println!("\n--- (a) Request Rate ---");
    let truth = apps::dept_request_rate(&log, ApproxSpec::Precise, config.clone())
        .unwrap()
        .outputs;
    ratio_sweep(
        &[0.0],
        &[0.01, 0.05, 0.10, 0.25, 0.50, 1.0],
        None,
        |spec, seed| {
            let mut cfg = config.clone();
            cfg.seed = seed;
            let (wall, r) = approxhadoop_bench::timed(|| {
                apps::dept_request_rate(&log, spec, cfg).expect("request rate job")
            });
            let (bound, actual) = worst_key_metrics(&r.outputs, &truth);
            Outcome {
                wall_secs: wall,
                bound_rel: bound,
                actual_rel: actual,
            }
        },
    );

    println!("\n--- (b) Attack Frequencies ---");
    let truth = apps::attack_frequencies(&log, ApproxSpec::Precise, config.clone())
        .unwrap()
        .outputs;
    ratio_sweep(
        &[0.0],
        &[0.01, 0.05, 0.10, 0.25, 0.50, 1.0],
        None,
        |spec, seed| {
            let mut cfg = config.clone();
            cfg.seed = seed;
            let (wall, r) = approxhadoop_bench::timed(|| {
                apps::attack_frequencies(&log, spec, cfg).expect("attack freq job")
            });
            let (bound, actual) = worst_key_metrics(&r.outputs, &truth);
            Outcome {
                wall_secs: wall,
                bound_rel: bound,
                actual_rel: actual,
            }
        },
    );
    println!(
        "\nShape check (paper Fig. 11): Request Rate behaves like the Wikipedia jobs;\n\
         Attack Frequencies (rare values) shows much larger errors at the same ratios."
    );
}
