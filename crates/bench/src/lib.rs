//! Shared helpers for the experiment binaries that regenerate every
//! table and figure of the ApproxHadoop paper.
//!
//! Each binary (`table1`, `fig5` … `fig13`, `table2`) prints the same
//! rows/series the paper reports, using the laptop-scale synthetic
//! datasets for real-engine measurements and the cluster simulator for
//! paper-scale timing and energy. `EXPERIMENTS.md` records paper-vs-
//! measured values for each.
//!
//! Environment knobs:
//!
//! * `APPROX_REPS` — repetitions per configuration (default 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Repetitions per configuration (`APPROX_REPS`, default 3).
pub fn reps() -> usize {
    std::env::var("APPROX_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Measures the wall time of `f` in seconds, returning `(secs, value)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let v = f();
    (start.elapsed().as_secs_f64(), v)
}

/// Aggregate of repeated scalar measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean value.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Summarises a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarise zero measurements");
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        Summary {
            mean,
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} [{:.3}, {:.3}]", self.mean, self.min, self.max)
    }
}

/// Prints a figure/table header in a consistent style.
pub fn header(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(s.to_string().contains("2.000"));
    }

    #[test]
    #[should_panic]
    fn summary_rejects_empty() {
        Summary::of(&[]);
    }

    #[test]
    fn timed_returns_value() {
        let (secs, v) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}

use approxhadoop_cluster::{simulate, ClusterSpec, SimApprox, SimJobSpec};
use approxhadoop_core::spec::ApproxSpec;
use approxhadoop_stats::Interval;

/// Outcome of one real-engine run used by the ratio sweeps.
#[derive(Debug, Clone, Copy)]
pub struct Outcome {
    /// Wall-clock seconds of the real laptop-scale run.
    pub wall_secs: f64,
    /// Worst-key 95% relative confidence half-width.
    pub bound_rel: f64,
    /// Actual relative error of the worst key against ground truth.
    pub actual_rel: f64,
}

/// Picks the key with the maximum predicted absolute error (the paper's
/// reporting rule) and returns `(relative bound, actual relative error)`
/// against the precise run.
pub fn worst_key_metrics<K: PartialEq>(
    outputs: &[(K, Interval)],
    truth: &[(K, Interval)],
) -> (f64, f64) {
    let worst = outputs
        .iter()
        .max_by(|a, b| a.1.half_width.total_cmp(&b.1.half_width));
    match worst {
        Some((k, iv)) => {
            let t = truth
                .iter()
                .find(|(tk, _)| tk == k)
                .map(|(_, tiv)| tiv.estimate)
                .unwrap_or(0.0);
            (iv.relative_error(), iv.actual_error(t))
        }
        None => (f64::INFINITY, f64::INFINITY),
    }
}

/// Runs the paper's dropping × sampling ratio sweep (Figures 6, 7, 11):
/// for each combination, repeats the real-engine run `reps()` times and
/// optionally simulates the same ratios at cluster scale.
pub fn ratio_sweep(
    drops: &[f64],
    samples: &[f64],
    sim: Option<(&ClusterSpec, &SimJobSpec)>,
    mut run: impl FnMut(ApproxSpec, u64) -> Outcome,
) {
    println!(
        "{:>6} | {:>8} | {:>10} | {:>10} | {:>9} | {:>9}",
        "drop%", "sample%", "real(s)", "sim(s)", "95%CI", "actual%"
    );
    for &drop in drops {
        for &sample in samples {
            let spec = if drop == 0.0 && sample >= 1.0 {
                ApproxSpec::Precise
            } else {
                ApproxSpec::ratios(drop, sample)
            };
            let mut walls = Vec::new();
            let mut bounds = Vec::new();
            let mut actuals = Vec::new();
            for seed in 0..reps() as u64 {
                let o = run(spec, seed);
                walls.push(o.wall_secs);
                bounds.push(o.bound_rel);
                actuals.push(o.actual_rel);
            }
            let sim_secs = sim
                .map(|(cluster, job)| {
                    let approx = if drop == 0.0 && sample >= 1.0 {
                        SimApprox::Precise
                    } else {
                        SimApprox::Ratios {
                            drop_ratio: drop,
                            sampling_ratio: sample,
                        }
                    };
                    simulate(cluster, job, approx, 7)
                        .map(|r| r.wall_secs)
                        .unwrap_or(f64::NAN)
                })
                .unwrap_or(f64::NAN);
            println!(
                "{:>5.0}% | {:>7.0}% | {:>10.3} | {:>10.0} | {:>8.2}% | {:>8.2}%",
                drop * 100.0,
                sample * 100.0,
                Summary::of(&walls).mean,
                sim_secs,
                Summary::of(&bounds).mean * 100.0,
                Summary::of(&actuals).mean * 100.0
            );
        }
    }
}
