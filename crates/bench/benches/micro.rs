//! Criterion micro-benchmarks for the performance-critical pieces:
//! estimator updates, statistical fits, the planner, sampling, and the
//! end-to-end engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use approxhadoop_core::job::AggregationJob;
use approxhadoop_core::spec::{ApproxSpec, ErrorTarget};
use approxhadoop_core::target::{plan, TimingModel};
use approxhadoop_runtime::engine::JobConfig;
use approxhadoop_runtime::input::VecSource;
use approxhadoop_stats::dist::{ContinuousDistribution, StudentT};
use approxhadoop_stats::gev::fit_gev_maxima;
use approxhadoop_stats::multistage::{ClusterObservation, TwoStageEstimator, WaveStatistics};
use approxhadoop_stats::sampling::Zipf;

fn bench_two_stage_estimator(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let observations: Vec<ClusterObservation> = (0..1_000)
        .map(|i| ClusterObservation {
            cluster_id: i,
            total_units: 10_000,
            sampled_units: 1_000,
            sum: rng.gen_range(400.0..600.0),
            sum_sq: rng.gen_range(400.0..700.0),
        })
        .collect();
    c.bench_function("two_stage_estimate_1000_clusters", |b| {
        b.iter(|| {
            let mut est = TwoStageEstimator::new(2_000);
            for obs in &observations {
                est.push(*obs);
            }
            black_box(est.estimate(0.95).unwrap())
        })
    });
}

fn bench_student_t_quantile(c: &mut Criterion) {
    c.bench_function("student_t_quantile", |b| {
        let t = StudentT::new(29.0);
        b.iter(|| black_box(t.quantile(black_box(0.975))))
    });
}

fn bench_gev_fit(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let maxima: Vec<f64> = (0..100)
        .map(|_| {
            (0..200)
                .map(|_| rng.gen_range(0.0..100.0))
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    c.bench_function("gev_mle_fit_100_maxima", |b| {
        b.iter(|| black_box(fit_gev_maxima(black_box(&maxima)).unwrap()))
    });
}

fn bench_planner(c: &mut Criterion) {
    // The year-scale planning problem: 37k remaining tasks.
    let wave = WaveStatistics {
        total_clusters: 37_684,
        completed_clusters: 240,
        inter_cluster_var: 4.0e9,
        mean_cluster_size: 6_200_000.0,
        mean_within_var: 0.25,
        completed_within_term: 0.0,
        estimate: 1.17e11,
    };
    let timing = TimingModel {
        t0: 2.0,
        tr: 1.5e-5,
        tp: 2.5e-5,
    };
    c.bench_function("planner_year_scale", |b| {
        b.iter(|| {
            black_box(plan(
                black_box(&wave),
                &timing,
                ErrorTarget::Relative(0.01),
                0.95,
                37_444,
            ))
        })
    });
}

fn bench_zipf_sampling(c: &mut Criterion) {
    let z = Zipf::new(1_000_000, 1.01);
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("zipf_sample_1m_catalogue", |b| {
        b.iter(|| black_box(z.sample(&mut rng)))
    });
}

fn bench_engine_word_count(c: &mut Criterion) {
    let blocks: Vec<Vec<String>> = (0..16)
        .map(|b| {
            (0..500)
                .map(|i| format!("w{} w{} w{}", (b + i) % 50, i % 20, i % 7))
                .collect()
        })
        .collect();
    let input = VecSource::new(blocks);
    c.bench_function("engine_word_count_8000_lines", |b| {
        b.iter(|| {
            let r = AggregationJob::count(|line: &String, emit: &mut dyn FnMut(String, f64)| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1.0);
                }
            })
            .spec(ApproxSpec::Precise)
            .config(JobConfig {
                map_slots: 4,
                ..Default::default()
            })
            .run(&input)
            .unwrap();
            black_box(r.outputs.len())
        })
    });
}

fn bench_sampled_read(c: &mut Criterion) {
    use approxhadoop_runtime::input::{InputSource, VecSource};
    let src = VecSource::new(vec![(0..100_000).collect::<Vec<u32>>()]);
    c.bench_function("systematic_sample_100k_at_1pct", |b| {
        b.iter(|| black_box(src.read_split(0, 0.01, 42).unwrap().sampled))
    });
}

fn bench_obs_registry(c: &mut Criterion) {
    use approxhadoop_obs::Registry;
    // Hot path: a pre-resolved handle, as the engine holds them.
    let reg = Registry::new();
    let counter = reg.counter("bench_counter", &[("k", "v")]);
    c.bench_function("obs_counter_inc", |b| b.iter(|| counter.inc()));
    let hist = reg.histogram("bench_hist", &[]);
    c.bench_function("obs_histogram_observe", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 0.013) % 12.0;
            hist.observe(black_box(x));
        })
    });
    // Cold path: lookup through the registry's mutex each time.
    c.bench_function("obs_counter_lookup_and_inc", |b| {
        b.iter(|| reg.counter(black_box("bench_counter"), &[("k", "v")]).inc())
    });
    // Exposition over a realistically sized registry.
    let reg = Registry::new();
    for i in 0..50 {
        reg.counter("c", &[("i", &i.to_string())]).add(i);
        reg.histogram("h", &[("i", &i.to_string())])
            .observe(i as f64 * 0.01);
    }
    c.bench_function("obs_render_prometheus_100_series", |b| {
        b.iter(|| black_box(reg.render_prometheus().len()))
    });
}

fn bench_obs_tracer(c: &mut Criterion) {
    use approxhadoop_obs::Tracer;
    let t = Tracer::new(65_536);
    c.bench_function("obs_trace_complete_span", |b| {
        b.iter(|| {
            black_box(t.complete("map 1", "task", 0, 100, 1, 1, None, vec![]));
        })
    });
}

fn bench_obs_http_endpoint(c: &mut Criterion) {
    use std::io::{Read, Write};

    use approxhadoop_obs::{serve_metrics, BoundSample, Obs};

    // A scrape-sized context: 100 counter series, a few job series —
    // what a live `/metrics` poll pays per request (accept + render +
    // write, both sides on loopback).
    let obs = Obs::shared();
    for i in 0..100 {
        obs.registry
            .counter(
                "approx_worker_records_total",
                &[("job", &format!("job_{i:04}"))],
            )
            .add(i);
    }
    for j in 0..4 {
        for p in 0..64 {
            obs.jobs.record(
                &format!("job_{j:04}"),
                BoundSample {
                    t_secs: p as f64 * 0.01,
                    reducer: 0,
                    maps_processed: p,
                    relative_bound: 1.0 / (p + 1) as f64,
                },
            );
        }
    }
    let server = serve_metrics("127.0.0.1:0", std::sync::Arc::clone(&obs)).unwrap();
    let addr = server.local_addr();
    let scrape = |path: &str| {
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        write!(conn, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").unwrap();
        let mut body = Vec::new();
        conn.read_to_end(&mut body).unwrap();
        body.len()
    };
    c.bench_function("obs_http_metrics_scrape_100_series", |b| {
        b.iter(|| black_box(scrape("/metrics")))
    });
    c.bench_function("obs_http_jobs_scrape_4x64_points", |b| {
        b.iter(|| black_box(scrape("/jobs")))
    });
}

criterion_group!(
    benches,
    bench_two_stage_estimator,
    bench_student_t_quantile,
    bench_gev_fit,
    bench_planner,
    bench_zipf_sampling,
    bench_engine_word_count,
    bench_sampled_read,
    bench_obs_registry,
    bench_obs_tracer,
    bench_obs_http_endpoint,
);
criterion_main!(benches);
